# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-serve chaos fuzz load opt table1 table2 examples coverage lint serve clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench: bench-serve
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-serve:
	$(PYTHON) -m repro.bench.emit --out BENCH_serve.json

chaos:
	$(PYTHON) -m repro.bench.chaos --out BENCH_chaos.json

fuzz:
	$(PYTHON) -m repro.fuzz --seed 42 --count 200 --out BENCH_fuzz.json

load:
	$(PYTHON) -m repro.bench.load --out BENCH_load.json

opt:
	$(PYTHON) -m repro.bench.opt --out BENCH_opt.json --repeats 5

table1:
	$(PYTHON) -m repro.bench.table1

table2:
	$(PYTHON) -m repro.bench.table2

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/paper_example.py
	$(PYTHON) examples/parallelize.py
	$(PYTHON) examples/optimize_with_analysis.py
	$(PYTHON) examples/compare_analyzers.py
	$(PYTHON) examples/analyze_benchmarks.py tak nreverse

lint:
	$(PYTHON) -m repro.lint examples/nrev.pl "nrev(glist, var)"
	$(PYTHON) -m repro.lint examples/lint_demo.pl "main" "wrapper(g)"

serve:
	$(PYTHON) -m repro.serve --batch examples/nrev.pl --entry "nrev(glist, var)"

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
