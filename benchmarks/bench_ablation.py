"""Ablations for the design choices DESIGN.md calls out.

* **environment trimming** — the paper: "the environment trimming
  technique ... appears to be overkill in this abstract WAM."  We measure
  analysis time with trimming on and off, and report how few slots
  trimming would actually reclaim during analysis.
* **term-depth limit k** — the paper fixes k = 4; the sweep shows the
  time/precision knob.
* **first-argument indexing** — irrelevant to the abstract machine (it
  bypasses indexing code) but measurable on the concrete machine.

Run:  pytest benchmarks/bench_ablation.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.analysis import Analyzer
from repro.bench import get_benchmark
from repro.prolog import Program, parse_term
from repro.wam import CompilerOptions, Machine, compile_program

SUBJECTS = ["qsort", "serialise", "zebra"]


@pytest.mark.parametrize("name", SUBJECTS)
@pytest.mark.parametrize("trimming", [True, False], ids=["trim", "notrim"])
@pytest.mark.benchmark(group="ablation-trimming")
def test_analysis_trimming(benchmark, name, trimming):
    bench = get_benchmark(name)
    compiled = compile_program(
        Program.from_text(bench.source),
        CompilerOptions(environment_trimming=trimming),
    )
    analyzer = Analyzer(compiled)
    result = benchmark(lambda: analyzer.analyze([bench.entry]))
    assert result.instructions_executed > 0


@pytest.mark.benchmark(group="ablation-trimming-accounting")
def test_trimming_is_overkill_for_analysis(benchmark, capsys):
    """The paper's observation, quantified: during analysis the trimmed
    slot counts are tiny relative to the instructions executed."""
    from repro.analysis.machine import AbstractMachine
    from repro.analysis.driver import parse_entry_spec

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for name in SUBJECTS:
        bench = get_benchmark(name)
        compiled = compile_program(Program.from_text(bench.source))
        machine = AbstractMachine(compiled)
        spec = parse_entry_spec(bench.entry)
        for _ in range(4):
            machine.run_pattern(spec.indicator, spec.pattern)
        ratio = machine.trimmed_slots / max(machine.instruction_count, 1)
        lines.append(
            f"  {name:10s} trimmed slots {machine.trimmed_slots:5d} over "
            f"{machine.instruction_count:6d} instructions "
            f"({100 * ratio:.1f}%)"
        )
        assert ratio < 0.25
    with capsys.disabled():
        print()
        print("environment trimming during analysis (paper: 'overkill'):")
        for line in lines:
            print(line)


@pytest.mark.parametrize("depth", [1, 2, 4, 8], ids=lambda d: f"k{d}")
@pytest.mark.benchmark(group="ablation-depth")
def test_analysis_depth_sweep(benchmark, depth):
    bench = get_benchmark("serialise")
    compiled = compile_program(Program.from_text(bench.source))
    analyzer = Analyzer(compiled, depth=depth)
    result = benchmark(lambda: analyzer.analyze([bench.entry]))
    assert result.iterations >= 1


@pytest.mark.parametrize("indexing", [True, False], ids=["index", "noindex"])
@pytest.mark.benchmark(group="ablation-indexing-concrete")
def test_concrete_indexing(benchmark, indexing):
    bench = get_benchmark("query")
    compiled = compile_program(
        Program.from_text(bench.source), CompilerOptions(indexing=indexing)
    )
    goal = parse_term("density(uk, D)")

    def run():
        machine = Machine(compiled)
        return machine.run_once(goal)

    assert benchmark(run) is not None


@pytest.mark.parametrize("name", ["nreverse", "qsort", "serialise"])
@pytest.mark.parametrize("aware", [True, False], ids=["lists", "nolists"])
@pytest.mark.benchmark(group="ablation-list-awareness")
def test_analysis_list_awareness(benchmark, name, aware):
    """The α-list type ablation: paper §3, 'list-awareness is usually
    very useful'.  Without it, list-heavy programs lose their list types
    (precision) — the timing shows what the extra precision costs."""
    bench = get_benchmark(name)
    compiled = compile_program(Program.from_text(bench.source))
    analyzer = Analyzer(compiled, list_aware=aware)
    result = benchmark(lambda: analyzer.analyze([bench.entry]))
    assert result.iterations >= 1


@pytest.mark.parametrize("name", ["zebra", "serialise", "query"])
@pytest.mark.parametrize(
    "subsumption", [False, True], ids=["exact", "subsume"]
)
@pytest.mark.benchmark(group="ablation-subsumption")
def test_analysis_subsumption(benchmark, name, subsumption):
    """Subsumption-based table reuse (OLDT refinement, not in the paper):
    coarser summaries, fewer explorations, smaller tables."""
    bench = get_benchmark(name)
    compiled = compile_program(Program.from_text(bench.source))
    analyzer = Analyzer(compiled, subsumption=subsumption)
    result = benchmark(lambda: analyzer.analyze([bench.entry]))
    assert result.iterations >= 1


@pytest.mark.parametrize("name", ["serialise", "qsort"])
@pytest.mark.benchmark(group="ablation-depth0-simple-domain")
def test_simple_domain_via_depth_zero(benchmark, name):
    """k = 0 collapses the domain to the simple sorts — roughly the
    Aquarius analyzer's much simpler domain the paper contrasts with."""
    bench = get_benchmark(name)
    compiled = compile_program(Program.from_text(bench.source))
    analyzer = Analyzer(compiled, depth=0, list_aware=False)
    result = benchmark(lambda: analyzer.analyze([bench.entry]))
    assert result.iterations >= 1
