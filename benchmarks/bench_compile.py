"""Compilation time per benchmark — the paper's PLM column.

The paper reports PLM compile times (1.2s–7.5s on a Sun 3/60) alongside
the analysis times to show preprocessing cost; these benches measure our
clause-to-WAM compiler on the same programs, plus parsing separately.

Run:  pytest benchmarks/bench_compile.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.prolog import Program
from repro.wam import compile_program


@pytest.mark.benchmark(group="compile")
def test_compile(benchmark, bench_program):
    program = Program.from_text(bench_program.source)
    compiled = benchmark(lambda: compile_program(program))
    assert compiled.total_size() > 0


@pytest.mark.benchmark(group="parse")
def test_parse(benchmark, bench_program):
    program = benchmark(lambda: Program.from_text(bench_program.source))
    assert program.clause_count() > 0
