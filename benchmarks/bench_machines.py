"""Concrete execution: the WAM against the SLD solver.

Not a paper table, but the substrate claim behind Figure 1: compiled
execution beats interpretation on the concrete domain too (Warren's
original ~30x).  We measure both engines on classic concrete workloads.

Run:  pytest benchmarks/bench_machines.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench import get_benchmark
from repro.prolog import Program, Solver, parse_term
from repro.wam import Machine, compile_program

WORKLOADS = [
    ("nreverse", "nreverse([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15], R)"),
    ("qsort", "qsort([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99], S, [])"),
    ("tak", "tak(10, 6, 2, A)"),
    ("serialise", 'serialise("ABLE WAS I", R)'),
]


@pytest.mark.parametrize("name,goal", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.benchmark(group="concrete-wam")
def test_wam(benchmark, name, goal):
    compiled = compile_program(Program.from_text(get_benchmark(name).source))
    goal_term = parse_term(goal)

    def run():
        return Machine(compiled).run_once(goal_term)

    assert benchmark(run) is not None


@pytest.mark.parametrize("name,goal", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.benchmark(group="concrete-solver")
def test_solver(benchmark, name, goal):
    program = Program.from_text(get_benchmark(name).source)
    goal_term = parse_term(goal)

    def run():
        return Solver(program).solve_once(goal_term)

    assert benchmark(run) is not None
