"""Table 1: "The Efficiency of Dataflow Analyzers".

``test_ours`` times the compiled abstract WAM on each benchmark (the
paper's *Ours* column); ``test_baseline_prolog`` times the Prolog-hosted
analyzer (the *Aquarius* column's stand-in); ``test_baseline_transform``
the Section 5 transformation.  The speed-up factors are the ratios between
the ``ours``/``baseline`` groups in the pytest-benchmark report; the exact
paper-style table (with Args/Preds/Size/Exec columns and the average row)
is printed by ``test_print_table1``.

Run:  pytest benchmarks/bench_table1.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.baselines import PrologAnalyzer, TransformAnalyzer
from repro.bench.table1 import format_table1, run_table1


@pytest.mark.benchmark(group="table1-ours")
def test_ours(benchmark, compiled_analyzer):
    analyzer, entry = compiled_analyzer
    result = benchmark(lambda: analyzer.analyze([entry]))
    assert result.instructions_executed > 0


@pytest.mark.benchmark(group="table1-baseline-prolog")
def test_baseline_prolog(benchmark, bench_program):
    analyzer = PrologAnalyzer(bench_program.source)
    result = benchmark.pedantic(
        lambda: analyzer.__class__(bench_program.source).analyze(
            [bench_program.entry]
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.resolution_steps > 0


@pytest.mark.benchmark(group="table1-baseline-transform")
def test_baseline_transform(benchmark, bench_program):
    result = benchmark.pedantic(
        lambda: TransformAnalyzer(bench_program.source).analyze(
            [bench_program.entry]
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.resolution_steps > 0


@pytest.mark.benchmark(group="table1-full-regeneration")
def test_print_table1(benchmark, capsys):
    """Regenerate the complete Table 1 next to the paper's values."""
    rows = benchmark.pedantic(
        lambda: run_table1(repeats=2, baseline="prolog"),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table1(rows))
    speedups = [row.speedup for row in rows]
    # The headline claim's shape: the compiled analyzer wins everywhere,
    # by a large factor on average.
    assert all(speedup > 5 for speedup in speedups)
    assert sum(speedups) / len(speedups) > 20
