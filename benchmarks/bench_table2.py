"""Table 2: "Speed Ratios on Various Platforms".

The per-platform ratio table is a projection of the measured speed-ups
through the paper's published platform indexes (the substitution is
documented in DESIGN.md).  ``test_print_table2`` regenerates and checks
the table's shape: ratios grow with the platform index, ``zebra`` is the
slowest row and the small arithmetic programs the fastest.

Run:  pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench.paper_data import PLATFORM_INDEXES
from repro.bench.table1 import run_table1
from repro.bench.table2 import format_table2, project_table2


@pytest.mark.benchmark(group="table2-regeneration")
def test_table2_regeneration_cost(benchmark):
    """Time of regenerating the measured side of Table 2 (fast path only,
    meta baseline keeps this bench quick)."""
    rows = benchmark.pedantic(
        lambda: run_table1(["tak", "nreverse", "qsort"], repeats=1,
                           baseline="meta"),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 3


@pytest.mark.benchmark(group="table2-full-regeneration")
def test_print_table2(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: run_table1(repeats=2, baseline="prolog"),
        rounds=1,
        iterations=1,
    )
    projected = project_table2(rows)
    with capsys.disabled():
        print()
        print(format_table2(projected))

    by_name = {row.name: row.ratios for row in projected}
    indexes = [idx for label, idx in PLATFORM_INDEXES if label != "Aquarius 3/60"]
    # Columns scale with the platform index.
    for ratios in by_name.values():
        for position in range(1, len(ratios)):
            expected = ratios[0] * indexes[position] / indexes[0]
            assert ratios[position] == pytest.approx(expected)
    # Row shape: with the same domain on both sides the speed-up profile
    # is flat (see EXPERIMENTS.md — the paper's own estimate for the
    # same-domain case), and every row shows a solid compiled-side win.
    base_column = {name: ratios[0] for name, ratios in by_name.items()}
    assert all(value > 5 for value in base_column.values())
    assert max(base_column.values()) / min(base_column.values()) < 20
