"""Shared fixtures for the benchmark suite (pytest-benchmark)."""

from __future__ import annotations

import pytest

from repro.analysis import Analyzer
from repro.bench import BENCHMARKS
from repro.prolog import Program
from repro.wam import compile_program

BENCH_IDS = [bench.name for bench in BENCHMARKS]


@pytest.fixture(params=BENCHMARKS, ids=BENCH_IDS)
def bench_program(request):
    """One Table 1 benchmark."""
    return request.param


@pytest.fixture
def compiled_analyzer(bench_program):
    """An Analyzer with compilation done up front (timings exclude it)."""
    compiled = compile_program(Program.from_text(bench_program.source))
    return Analyzer(compiled), bench_program.entry
