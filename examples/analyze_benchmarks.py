"""Analyze the paper's benchmark suite and print every analysis report.

This is the per-benchmark view behind Table 1: for each of the 11 Van Roy
programs, the inferred modes, types, aliasing, code size, abstract
instructions executed and analysis time.

Run:  python examples/analyze_benchmarks.py [benchmark ...]
"""

import sys

from repro.analysis import Analyzer
from repro.bench import BENCHMARKS, get_benchmark
from repro.prolog import Program
from repro.wam import compile_program


def main() -> None:
    names = sys.argv[1:]
    benchmarks = [get_benchmark(n) for n in names] if names else BENCHMARKS
    for bench in benchmarks:
        compiled = compile_program(Program.from_text(bench.source))
        result = Analyzer(compiled).analyze([bench.entry])
        print("=" * 72)
        print(
            f"{bench.name}: size {compiled.total_size()} instructions, "
            f"exec {result.instructions_executed}, "
            f"{result.iterations} iteration(s), "
            f"{result.seconds * 1000:.2f} ms"
        )
        print("-" * 72)
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
