"""Compare the four analyzer implementations on one benchmark.

Runs the same analysis with:

* the compiled abstract WAM (the paper's contribution),
* the Python meta-interpreter (same tables, interpretive substrate),
* the Section-5 program transformation on the SLD solver,
* the Prolog-hosted meta-interpreter on the SLD solver (the Table 1
  baseline: an analyzer "implemented on top of Prolog").

Prints each analyzer's time and the resulting table, demonstrating the
paper's claim: compiling the analysis removes the interpretive and
transforming overhead.

Run:  python examples/compare_analyzers.py [benchmark]
"""

import sys

from repro.analysis import Analyzer
from repro.baselines import MetaAnalyzer, PrologAnalyzer, TransformAnalyzer
from repro.bench import get_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "nreverse"
    bench = get_benchmark(name)

    fast = Analyzer(bench.source).analyze([bench.entry])
    meta = MetaAnalyzer(bench.source).analyze([bench.entry])
    transform = TransformAnalyzer(bench.source).analyze([bench.entry])
    prolog = PrologAnalyzer(bench.source).analyze([bench.entry])

    rows = [
        ("abstract WAM (compiled)", fast.seconds,
         f"{fast.instructions_executed} abstract instructions"),
        ("Python meta-interpreter", meta.seconds,
         f"{meta.store_copies} store copies"),
        ("transformed program on SLD solver", transform.seconds,
         f"{transform.resolution_steps} resolution steps"),
        ("Prolog-hosted analyzer on SLD solver", prolog.seconds,
         f"{prolog.resolution_steps} resolution steps"),
    ]
    print(f"benchmark: {name} (entry {bench.entry})\n")
    for label, seconds, detail in rows:
        speedup = seconds / fast.seconds
        print(f"  {label:38s} {seconds * 1000:9.2f} ms  "
              f"({speedup:6.1f}x, {detail})")

    print("\nfixpoint table (identical across implementations, the")
    print("Prolog-hosted ones modulo aliasing precision):\n")
    print(fast.table_text())


if __name__ == "__main__":
    main()
