"""A DCG grammar: parse, generate, and analyze.

Definite clause grammars are the classic "realistic Prolog workload":
this example builds a small natural-language grammar, parses a sentence
on the WAM, enumerates the language, and runs the dataflow analysis over
the translated grammar — the analyzer infers that every nonterminal
threads an atom-list difference pair and returns a ground parse tree.

Run:  python examples/dcg_grammar.py
"""

from repro import Machine, Program, analyze, compile_program, parse_term, term_to_text

GRAMMAR = """
sentence(s(NP, VP)) --> noun_phrase(NP), verb_phrase(VP).
noun_phrase(np(D, N)) --> det(D), noun(N).
verb_phrase(vp(V, NP)) --> verb(V), noun_phrase(NP).
verb_phrase(vp(V)) --> verb(V).
det(d(the)) --> [the].
det(d(a)) --> [a].
noun(n(cat)) --> [cat].
noun(n(dog)) --> [dog].
verb(v(sees)) --> [sees].
verb(v(sleeps)) --> [sleeps].
"""


def main() -> None:
    program = Program.from_text(GRAMMAR)
    print("translated clauses (difference-list threading):\n")
    for line in program.to_text().splitlines()[:6]:
        if line:
            print("    " + line)

    machine = Machine(compile_program(program))
    goal = parse_term("sentence(T, [the, cat, sees, a, dog], [])")
    tree = machine.run_once(goal)["T"]
    print("\nparse of 'the cat sees a dog':")
    print("    " + term_to_text(tree))

    sentences = list(machine.run(parse_term("sentence(_, Words, [])")))
    print(f"\nthe grammar generates {len(sentences)} sentences; first three:")
    for solution in sentences[:3]:
        print("    " + term_to_text(solution["Words"]))

    result = analyze(GRAMMAR, "sentence(var, list(atom), [])")
    print("\ndataflow analysis of the grammar:")
    print(result.to_text())


if __name__ == "__main__":
    main()
