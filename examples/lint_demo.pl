% A tour of the linter's warnings (docs/lint.md catalogues the codes).
%
%   repro-lint examples/lint_demo.pl "main" "wrapper(g)"
%
% Every finding here is warning- or info-level, so the exit status is 0;
% errors (E0xx/E1xx) would make it 1.

main :- len([1, 2, 3], N, Extra), report(N).

% W002: 'Extra' above is a singleton variable.
len([], 0, ok).
len([_|T], N, ok) :- len(T, M, _), N is M + 1.

report(N) :- write(N), nl.

% W003: never called from the entry points.
orphan(left, right).

% W005 at the definition of impossible/1, W007 at its call site.
wrapper(X) :- impossible(X).
impossible(_) :- fail.

% W009: helper/1 calls an undefined predicate.
helper(X) :- missing_predicate(X).
