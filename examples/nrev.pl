% Naive reverse, the paper's running example.
% Lint it with:
%
%   repro-lint examples/nrev.pl "nrev(glist, var)"
%
% This file is clean: the bytecode verifier and every source rule stay
% silent (the CI smoke job depends on that).

nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).

app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
