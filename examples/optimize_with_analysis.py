"""Use analysis results to specialize WAM code — why the analysis matters.

The paper motivates the analyzer with the "substantial optimizations" that
need global modes/types/aliasing.  This example runs the analysis on the
qsort benchmark and annotates its WAM code: instructions that can drop
dereferencing, trailing or their read/write tag dispatch, and predicates
proven choice-point-free.

Run:  python examples/optimize_with_analysis.py [benchmark]
"""

import sys

from repro.analysis import Analyzer
from repro.bench import get_benchmark
from repro.optimize import specialize
from repro.prolog import Program
from repro.wam import compile_program, disassemble


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "qsort"
    bench = get_benchmark(name)
    compiled = compile_program(Program.from_text(bench.source))
    result = Analyzer(compiled).analyze([bench.entry])

    print(f"analysis of {name} (entry {bench.entry}):")
    print(result.to_text())
    print()

    report = specialize(compiled, result)
    print(report.to_text())
    print()
    fraction = (
        100.0 * len(report.annotations) / max(report.instructions_seen, 1)
    )
    print(
        f"{fraction:.0f}% of the analyzed instructions can be specialized;"
        f" estimated {report.total_saving} cost units saved per pass over"
        " the code."
    )

    from repro.optimize import find_dead_code
    from repro.prolog import Program as _Program

    print()
    print(find_dead_code(_Program.from_text(bench.source), result).to_text())


if __name__ == "__main__":
    main()
