"""The paper's worked example: Figures 2 and 3.

Compiles the clause head ``p(a, [f(V)|L])`` to WAM code (Figure 2) and
then reinterprets it over the calling pattern ``p(atom, glist)``
(Figure 3), printing the code, the resulting extension-table entry, and
the inferred success pattern.

Run:  python examples/paper_example.py
"""

from repro import Program, analyze, compile_program
from repro.prolog import Clause, parse_term
from repro.wam import compile_clause
from repro.wam.listing import format_instruction


def main() -> None:
    clause = Clause.from_term(parse_term("p(a, [f(V)|L]) :- true"))

    print("Figure 2 — the WAM code for the head of p(a, [f(V)|L]):\n")
    for instruction in compile_clause(clause):
        print("    " + format_instruction(instruction, arity=2))

    print("\nFigure 3 — the same code reinterpreted over p(atom, glist):\n")
    from repro.analysis import AbstractMachine
    from repro.analysis.driver import parse_entry_spec
    from repro.wam import Tracer

    compiled = compile_program(Program.from_text("p(a, [f(V)|L])."))
    machine = AbstractMachine(compiled)
    machine.tracer = Tracer()
    spec = parse_entry_spec("p(atom, glist)")
    machine.run_pattern(spec.indicator, spec.pattern)
    print("  annotated execution trace (one analysis pass):")
    for line in machine.tracer.to_text().splitlines():
        print("    " + line)
    print()

    result = analyze("p(a, [f(V)|L]).", "p(atom, glist)")
    print("  extension table after the fixpoint:")
    for line in result.table_text().splitlines():
        print("    " + line)
    print()
    print("  derived report:")
    for line in result.to_text().splitlines():
        print("    " + line)

    print(
        "\n  Reading: the first argument stayed 'atom' (step 1 of the\n"
        "  paper: a ~ atom); the second instantiated glist to a cons cell\n"
        "  [g|glist] whose car then instantiated g to f(g) (steps 2.1 and\n"
        "  2.2) — the success abstraction re-summarizes it as g-list."
    )


if __name__ == "__main__":
    main()
