"""Independent And-Parallelism from the analysis — the paper's motivation.

The paper's introduction: global dataflow information "paves the way for
efficient implementation of ... Independent And-Parallelism".  This
example analyzes a program and prints, for every clause body, which goal
pairs can run in parallel — unconditionally, or under run-time
ground/indep checks (the conditions of &-Prolog's Conditional Graph
Expressions).

Run:  python examples/parallelize.py [benchmark]
"""

import sys

from repro.analysis import Analyzer
from repro.bench import get_benchmark
from repro.optimize import annotate_parallelism
from repro.prolog import Program

FIB_MATRIX = """
main :- work(4, _).
work(0, leaf) :- !.
work(N, node(L, R)) :-
    M is N - 1,
    work(M, L),
    work(M, R).
"""


def main() -> None:
    if len(sys.argv) > 1:
        bench = get_benchmark(sys.argv[1])
        source, entry, label = bench.source, bench.entry, bench.name
    else:
        source, entry, label = FIB_MATRIX, "main", "divide-and-conquer demo"
    program = Program.from_text(source)
    result = Analyzer(program).analyze([entry])
    print(f"and-parallelism annotation of {label} (entry {entry}):\n")
    print(annotate_parallelism(program, result).to_text())


if __name__ == "__main__":
    main()
