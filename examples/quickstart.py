"""Quickstart: compile a Prolog program, run it, and analyze its dataflow.

Run:  python examples/quickstart.py
"""

from repro import Machine, Program, analyze, compile_program, parse_term, term_to_text

PROGRAM = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).

nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
"""


def main() -> None:
    program = Program.from_text(PROGRAM)

    # 1. Run the program on the concrete WAM.
    machine = Machine(compile_program(program))
    goal = parse_term("nrev([1, 2, 3, 4, 5], R)")
    for solution in machine.run(goal):
        print("concrete run:   R =", term_to_text(solution["R"]))

    # 2. Analyze it with the compiled abstract WAM: what are the modes and
    #    types of nrev/2 when called with a ground list and a fresh var?
    result = analyze(PROGRAM, "nrev(glist, var)")
    print("\ndataflow analysis report:")
    print(result.to_text())

    # 3. The raw extension table: calling pattern -> success pattern.
    print("\nextension table:")
    print(result.table_text())

    # 4. Derived facts, programmatically.
    print("\nmodes of app/3:", result.modes(("app", 3)))


if __name__ == "__main__":
    main()
