"""Regenerate the paper's Table 1 and Table 2 (see also benchmarks/).

Run:  python examples/reproduce_table1.py [--baseline prolog|transform|meta]
                                          [--repeats N] [benchmark ...]

Prints the measured tables next to the paper's published ones.  The
``Baseline`` column is the Prolog-hosted analyzer by default — the
implementation style the paper's Aquarius/Quintus baseline used.
"""

import argparse

from repro.bench.table1 import format_table1, run_table1
from repro.bench.table2 import format_table2, project_table2


def main() -> None:
    parser = argparse.ArgumentParser(description="Regenerate Tables 1 and 2")
    parser.add_argument("names", nargs="*", help="benchmark subset")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--baseline", default="prolog", choices=["prolog", "transform", "meta"]
    )
    parser.add_argument("--no-paper", action="store_true")
    arguments = parser.parse_args()

    rows = run_table1(
        arguments.names or None,
        repeats=arguments.repeats,
        baseline=arguments.baseline,
        progress=lambda name: print(f"measuring {name} ...", flush=True),
    )
    print()
    print("Table 1 — the efficiency of dataflow analyzers")
    print()
    print(format_table1(rows, show_paper=not arguments.no_paper))
    print()
    print("Table 2 — speed ratios on various platforms (projected)")
    print()
    print(format_table2(project_table2(rows), show_paper=not arguments.no_paper))


if __name__ == "__main__":
    main()
