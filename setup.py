"""Legacy setup shim.

The environment has no `wheel` package and no network access, so PEP 660
editable installs (which build a wheel) fail.  `pip install -e . --no-use-pep517
--no-build-isolation` uses this file via `setup.py develop` instead.
"""

from setuptools import setup

setup()
