"""repro — compiled dataflow analysis of logic programs.

A complete reproduction of Tan & Lin, "Compiling Dataflow Analysis of
Logic Programs" (PLDI 1992): a Prolog front-end and SLD solver, a
Prolog-to-WAM compiler, a concrete WAM, and the paper's abstract WAM —
the WAM instruction set reinterpreted over a mode/type/aliasing domain
with the extension-table control scheme — plus the baseline analyzer
styles the paper compares against and the benchmark harnesses that
regenerate its tables.

Quick start::

    from repro import analyze

    result = analyze('''
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ''', "app(glist, glist, var)")
    print(result.to_text())
"""

from .analysis import AbstractMachine, AnalysisResult, Analyzer, analyze
from .errors import (
    AnalysisError,
    BudgetExceeded,
    CompileError,
    InjectedFault,
    MachineError,
    PrologError,
    PrologSyntaxError,
    ReproError,
)
from .prolog import Program, Solver, parse_term, read_terms, term_to_text
from .robust import Budget, FaultPlan
from .wam import CompilerOptions, Machine, compile_program, disassemble

__version__ = "1.0.0"

__all__ = [
    "AbstractMachine",
    "AnalysisError",
    "AnalysisResult",
    "Analyzer",
    "Budget",
    "BudgetExceeded",
    "CompileError",
    "CompilerOptions",
    "FaultPlan",
    "InjectedFault",
    "Machine",
    "MachineError",
    "Program",
    "PrologError",
    "PrologSyntaxError",
    "ReproError",
    "Solver",
    "__version__",
    "analyze",
    "compile_program",
    "disassemble",
    "parse_term",
    "read_terms",
    "term_to_text",
]
