"""The compiled dataflow analyzer: the paper's primary contribution.

The abstract WAM (:mod:`.machine`) reinterprets compiled WAM code over the
abstract domain with the extension-table control scheme (:mod:`.table`);
:mod:`.driver` wraps compilation and the fixpoint loop behind one call::

    from repro.analysis import analyze
    result = analyze(program_text, "main(g, var)")
    print(result.to_text())
"""

from .aheap import ABS, cell_summary, deref, make_abs, materialize
from .aunify import complex_term_inst, s_unify
from .driver import Analyzer, EntryReport, EntrySpec, analyze, parse_entry_spec
from .machine import AbstractMachine, ExplorationFrame
from .patterns import (
    Pattern,
    abstract_cells,
    materialize_pattern,
    pattern_leq,
    pattern_lub,
    pattern_to_text,
    share_pairs,
    tree_of_cell,
)
from .results import AnalysisResult, ArgumentInfo, PredicateInfo
from .table import ExtensionTable, TableEntry

__all__ = [
    "ABS",
    "AbstractMachine",
    "AnalysisResult",
    "Analyzer",
    "ArgumentInfo",
    "EntryReport",
    "EntrySpec",
    "ExplorationFrame",
    "ExtensionTable",
    "Pattern",
    "PredicateInfo",
    "TableEntry",
    "abstract_cells",
    "analyze",
    "cell_summary",
    "complex_term_inst",
    "deref",
    "make_abs",
    "materialize",
    "materialize_pattern",
    "parse_entry_spec",
    "pattern_leq",
    "pattern_lub",
    "pattern_to_text",
    "s_unify",
    "share_pairs",
    "tree_of_cell",
]
