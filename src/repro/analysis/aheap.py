"""Abstract heap cells (paper Section 4.1).

Abstract terms are represented *like variables*: each instance of ``any``,
``g``, ``nv``, ``α-list`` ... is a heap cell tagged ``abs`` that can later
be instantiated — overwritten with a more specific cell — through abstract
unification.  Instantiations go through the value trail of
:class:`repro.wam.cells.Heap`, so backtracking restores them, and aliasing
falls out of the representation: every holder of a reference to the cell
sees the instantiation.

Cell forms added on top of the concrete ones:

* ``('abs', (sort, None))`` — an instance of a simple sort;
* ``('abs', (AbsSort.LIST, elem_tree))`` — an instance of an α-list.

Registers and structure slots never hold a bare ``abs`` cell: they hold a
``('ref', addr)`` to it, so instantiation is visible everywhere.  The
helpers here enforce that invariant.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..domain.lattice import (
    EMPTY_T,
    NIL_T,
    Tree,
    tree_is_ground,
)
from ..domain.sorts import AbsSort
from ..errors import AnalysisError
from ..prolog.terms import NIL, Atom, Float, Int
from ..wam.cells import CON, FUN, LIS, REF, STR, Cell, Heap

#: Tag of abstract cells.
ABS = "abs"

AbsVal = Tuple[AbsSort, Optional[Tree]]


def make_abs(heap: Heap, sort: AbsSort, elem: Optional[Tree] = None) -> Cell:
    """Allocate an abstract cell; returns a ``ref`` to it."""
    if sort == AbsSort.LIST and elem is None:
        raise AnalysisError("list abstract cell needs an element tree")
    address = heap.push((ABS, (sort, elem)))
    return (REF, address)


def deref(heap: Heap, cell: Cell) -> Tuple[Cell, Optional[int]]:
    """Follow reference chains; returns (cell, address-of-cell-or-None).

    For an unbound variable the address is the variable's own; for a bound
    chain it is the address holding the final non-ref cell, so abstract
    cells can be instantiated in place.  Constants and structure pointers
    reached without any ref hop have no address (they are immutable).
    """
    address: Optional[int] = None
    while cell[0] == REF:
        target_address = cell[1]
        target = heap.cells[target_address]  # type: ignore[index]
        if target == cell:
            return cell, target_address  # type: ignore[return-value]
        address = target_address  # type: ignore[assignment]
        cell = target
    return cell, address


def abs_tree(value: AbsVal) -> Tree:
    """The type tree of an abstract cell's value."""
    sort, elem = value
    if sort == AbsSort.LIST:
        assert elem is not None
        return ("l", elem)
    return ("s", sort)


def materialize(heap: Heap, tree: Tree) -> Cell:
    """Build a fresh term shaped like ``tree`` on the heap.

    Instantiable leaves become fresh cells; structure skeletons become
    real ``lis``/``str`` cells whose argument positions hold the
    materialized children.
    """
    kind = tree[0]
    if kind == "s":
        sort = tree[1]
        if sort == AbsSort.VAR:
            return heap.new_var()
        if sort == AbsSort.EMPTY:
            raise AnalysisError("cannot materialize the empty type")
        return make_abs(heap, sort)
    if kind == "l":
        if tree[1] == EMPTY_T:
            return (CON, NIL)
        return make_abs(heap, AbsSort.LIST, tree[1])
    name, arity, args = tree[1], tree[2], tree[3]
    child_cells = [materialize(heap, argument) for argument in args]
    if name == "." and arity == 2:
        address = heap.top
        heap.cells.extend(child_cells)
        return (LIS, address)
    functor_address = heap.push((FUN, (name, arity)))
    heap.cells.extend(child_cells)
    return (STR, functor_address)


def constant_tree(constant) -> Tree:
    """The type tree a constant belongs to (``[]`` is the nil list)."""
    if constant == NIL:
        return NIL_T
    if isinstance(constant, Atom):
        return ("s", AbsSort.ATOM)
    if isinstance(constant, Int):
        return ("s", AbsSort.INTEGER)
    if isinstance(constant, Float):
        return ("s", AbsSort.CONST)
    raise AnalysisError(f"not a constant: {constant!r}")


def cell_summary(heap: Heap, cell: Cell, _visiting: Optional[set] = None) -> AbsSort:
    """The most precise simple sort containing the term rooted at ``cell``.

    Used by the depth restriction to summarize deep subterms, and by the
    abstract builtins for type tests.  Cyclic heap terms (created by
    occurs-check-free unification) summarize to ``nv``.
    """
    if _visiting is None:
        _visiting = set()
    cell, address = deref(heap, cell)
    if address is not None:
        if address in _visiting:
            return AbsSort.NV
        _visiting = _visiting | {address}
    tag = cell[0]
    if tag == REF:
        return AbsSort.VAR
    if tag == ABS:
        sort, elem = cell[1]  # type: ignore[misc]
        if sort == AbsSort.LIST:
            assert elem is not None
            return AbsSort.GROUND if tree_is_ground(elem) else AbsSort.NV
        return sort
    if tag == CON:
        constant = cell[1]
        if constant == NIL:
            return AbsSort.ATOM
        if isinstance(constant, Atom):
            return AbsSort.ATOM
        if isinstance(constant, Int):
            return AbsSort.INTEGER
        return AbsSort.CONST
    if tag == LIS:
        address = cell[1]
        parts = [
            cell_summary(heap, heap.cells[address], _visiting),  # type: ignore[index]
            cell_summary(heap, heap.cells[address + 1], _visiting),  # type: ignore[index]
        ]
        return _compound_summary(parts)
    if tag == STR:
        functor_address = cell[1]
        arity = heap.cells[functor_address][1][1]  # type: ignore[index]
        parts = [
            cell_summary(heap, heap.cells[functor_address + 1 + i], _visiting)  # type: ignore[index]
            for i in range(arity)
        ]
        return _compound_summary(parts)
    raise AnalysisError(f"cannot summarize cell {cell}")


def _compound_summary(part_sorts) -> AbsSort:
    from ..domain.sorts import sort_is_ground

    if all(sort_is_ground(sort) for sort in part_sorts):
        return AbsSort.GROUND
    return AbsSort.NV
