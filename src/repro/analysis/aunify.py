"""Abstract (set) unification over heap cells — ``s_unify`` of Section 4.

The operational rules, mirroring the paper's primitives:

* *primary approximation* (``AbsType``) is the cell tag plus, for abstract
  cells, the stored sort;
* *approximate unifiability* is checked by :func:`~repro.domain.lattice.tree_unify`
  on the shallow types;
* *complex-term instantiation* materializes the subterm cells an abstract
  instance must grow when it meets a list or structure skeleton, per the
  table in :func:`complex_term_inst`.

Instantiations are destructive cell updates through the value trail;
aliasing between instances is represented by rebinding both cells to a
shared fresh cell, so later refinements are seen by every holder.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..domain.lattice import (
    ANY_T,
    GROUND_T,
    Tree,
    tree_unify,
)
from ..domain.sorts import AbsSort
from ..errors import AnalysisError
from ..prolog.terms import NIL, Indicator
from ..wam.cells import CON, FUN, LIS, REF, STR, Cell, Heap
from .aheap import ABS, abs_tree, constant_tree, deref, make_abs


def complex_term_inst(
    heap: Heap, sort: AbsSort, elem: Optional[Tree], functor: Indicator
) -> Optional[Cell]:
    """Materialize the instance an abstract term grows when it meets a
    ``functor`` skeleton; returns the complete ``lis``/``str`` cell.

    The component types follow the set semantics: an instance of ``ground``
    only has ground arguments, ``any``/``nv`` instances have ``any``
    arguments, and a ``list(α)`` instance growing a cons cell has an ``α``
    car and a ``list(α)`` cdr.  Returns None when the sort cannot contain a
    ``functor`` term at all.
    """
    from .aheap import materialize

    name, arity = functor
    if sort == AbsSort.LIST:
        if name != "." or arity != 2:
            return None
        assert elem is not None
        from ..domain.lattice import tree_is_empty

        if tree_is_empty(elem):
            # list(empty) is exactly []; it cannot grow a cons cell.
            return None
        car = materialize(heap, elem)
        cdr = make_abs(heap, AbsSort.LIST, elem)
        address = heap.top
        heap.push(car)
        heap.push(cdr)
        return (LIS, address)
    if sort in (AbsSort.ANY, AbsSort.NV):
        component: Tree = ANY_T
    elif sort == AbsSort.GROUND:
        component = GROUND_T
    else:
        return None
    components = [materialize(heap, component) for _ in range(arity)]
    if name == "." and arity == 2:
        address = heap.top
        heap.cells.extend(components)
        return (LIS, address)
    functor_address = heap.push((FUN, functor))
    heap.cells.extend(components)
    return (STR, functor_address)


def _functor_of(heap: Heap, cell: Cell) -> Indicator:
    if cell[0] == LIS:
        return (".", 2)
    assert cell[0] == STR
    return heap.cells[cell[1]][1]  # type: ignore[index]


def _slot_cell(heap: Heap, address: int) -> Cell:
    """The cell stored at ``address``, by reference when it is mutable."""
    cell = heap.cells[address]
    if cell[0] == ABS:
        return (REF, address)
    return cell


def _struct_args(heap: Heap, cell: Cell) -> List[Cell]:
    _, arity = _functor_of(heap, cell)
    base = cell[1] if cell[0] == LIS else cell[1] + 1  # type: ignore[operator]
    return [_slot_cell(heap, base + i) for i in range(arity)]


def s_unify(heap: Heap, left: Cell, right: Cell) -> bool:
    """Abstract unification; instantiates cells, False on sure failure.

    On failure, partially made bindings remain on the trail; the caller is
    expected to unwind to its own mark (exactly as the machine does on
    backtracking).
    """
    stack: List[Tuple[Cell, Cell]] = [(left, right)]
    cells = heap.cells
    while stack:
        a, b = stack.pop()
        # Inlined deref (this is the hottest loop of the analysis).
        addr_a = None
        while a[0] == REF:
            target_address = a[1]
            target = cells[target_address]
            if target == a:
                addr_a = target_address
                break
            addr_a = target_address
            a = target
        addr_b = None
        while b[0] == REF:
            target_address = b[1]
            target = cells[target_address]
            if target == b:
                addr_b = target_address
                break
            addr_b = target_address
            b = target
        if addr_a is not None and addr_a == addr_b:
            continue
        tag_a, tag_b = a[0], b[0]
        # Free (concrete) variables absorb the other side.
        if tag_a == REF and tag_b == REF:
            if addr_a < addr_b:  # type: ignore[operator]
                heap.set_cell(addr_b, (REF, addr_a))  # type: ignore[arg-type]
            else:
                heap.set_cell(addr_a, (REF, addr_b))  # type: ignore[arg-type]
            continue
        if tag_a == REF:
            heap.set_cell(addr_a, _reference_to(b, addr_b))  # type: ignore[arg-type]
            continue
        if tag_b == REF:
            heap.set_cell(addr_b, _reference_to(a, addr_a))  # type: ignore[arg-type]
            continue
        if tag_a == ABS and tag_b == ABS:
            if not _unify_abs_abs(heap, a, addr_a, b, addr_b):
                return False
            continue
        if tag_a == ABS or tag_b == ABS:
            abs_cell, abs_addr, other, other_addr = (
                (a, addr_a, b, addr_b) if tag_a == ABS else (b, addr_b, a, addr_a)
            )
            if not _unify_abs_concrete(heap, abs_cell, abs_addr, other, stack):
                return False
            continue
        # Both concrete-shaped.
        if tag_a == CON and tag_b == CON:
            if a[1] != b[1]:
                return False
            continue
        if tag_a in (LIS, STR) and tag_b in (LIS, STR):
            if _functor_of(heap, a) != _functor_of(heap, b):
                return False
            stack.extend(zip(_struct_args(heap, a), _struct_args(heap, b)))
            continue
        return False
    return True


def _reference_to(cell: Cell, address: Optional[int]) -> Cell:
    """The cell to store when binding a variable to ``cell``.

    Abstract cells must be referenced by address (so instantiation is
    shared); immutable cells can be copied.
    """
    if cell[0] == ABS:
        assert address is not None, "abs cell reached without an address"
        return (REF, address)
    return cell


def _unify_abs_abs(
    heap: Heap, a: Cell, addr_a: Optional[int], b: Cell, addr_b: Optional[int]
) -> bool:
    """Unify two abstract instances: glb-with-absorption plus aliasing."""
    assert addr_a is not None and addr_b is not None
    combined = tree_unify(abs_tree(a[1]), abs_tree(b[1]))  # type: ignore[arg-type]
    if combined is None:
        return False
    if combined[0] == "s":
        value = (combined[1], None)
    elif combined[0] == "l":
        if combined[1][0] == "s" and combined[1][1] == AbsSort.EMPTY:
            # list(empty) is exactly [].
            heap.set_cell(addr_a, (CON, NIL))
            heap.set_cell(addr_b, (REF, addr_a))
            return True
        value = (AbsSort.LIST, combined[1])
    else:  # pragma: no cover - sort/list unify never yields a struct
        raise AnalysisError(f"unexpected unify result {combined}")
    shared = heap.push((ABS, value))
    heap.set_cell(addr_a, (REF, shared))
    heap.set_cell(addr_b, (REF, shared))
    # Preserve sharing-class continuity across the rebinding.
    heap.share_union(addr_a, shared)
    heap.share_union(addr_b, shared)
    return True


def _unify_abs_concrete(
    heap: Heap,
    abs_cell: Cell,
    abs_addr: Optional[int],
    other: Cell,
    stack: List[Tuple[Cell, Cell]],
) -> bool:
    """Unify an abstract instance with a constant, list or structure."""
    assert abs_addr is not None
    sort, elem = abs_cell[1]  # type: ignore[misc]
    if other[0] == CON:
        if tree_unify(abs_tree((sort, elem)), constant_tree(other[1])) is None:
            return False
        # The result set is the singleton constant: instantiate precisely.
        heap.set_cell(abs_addr, other)
        return True
    functor = _functor_of(heap, other)
    new_cell = complex_term_inst(heap, sort, elem, functor)
    if new_cell is None:
        return False
    heap.set_cell(abs_addr, new_cell)
    if _growth_can_share(sort, elem):
        register_growth_sharing(heap, abs_addr, new_cell)
    stack.extend(zip(_struct_args(heap, new_cell), _struct_args(heap, other)))
    return True


def _growth_can_share(sort: AbsSort, elem) -> bool:
    """Can components grown from this instance ever be non-ground?"""
    from ..domain.lattice import tree_is_ground

    if sort in (AbsSort.ANY, AbsSort.NV):
        return True
    if sort == AbsSort.LIST:
        return not tree_is_ground(elem)
    return False  # ground growths have no bindable components


def register_growth_sharing(heap: Heap, source_address: int, instance: Cell) -> None:
    """Record that components grown from a summarized instance may alias.

    When an abstract instance at ``source_address`` grows a skeleton, the
    fresh component cells stand for subterms the summary had collapsed:
    different growths of the same instance (successive list elements, or
    the copies materialized at different call sites of one success
    pattern) may alias each other at run time.  Putting every non-ground
    component into the source's sharing class makes that possibility
    visible to :func:`repro.analysis.patterns.cell_share_pairs`.
    """
    from .patterns import collect_share_points  # circular at module load

    points: set = set()
    for slot in _struct_args(heap, instance):
        collect_share_points(heap, slot, points)
    for point in points:
        heap.share_union(point, source_address)
