"""Abstract semantics of the inline builtins.

Each entry mirrors a concrete machine builtin: ``fn(machine) -> bool``
over the argument registers, but computing over the abstract domain.  The
guiding rule of a may-analysis: a builtin *succeeds* abstractly unless its
failure is certain, and its output bindings are applied with ``s_unify``
so they over-approximate every concrete outcome.

Type tests use the shallow sort to fail only when provably impossible
(e.g. ``atom(X)`` with ``X`` known to be an integer); arithmetic requires
arguments that could still be numbers and produces ``integer`` instances.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..domain.lattice import ANY_T, INTEGER_T, Tree, tree_unify
from ..domain.sorts import AbsSort
from ..prolog.terms import Indicator
from ..wam.cells import CON, LIS, REF, STR, Cell
from .aheap import cell_summary, deref, make_abs
from .aunify import s_unify

AbstractBuiltinFn = Callable[[object], bool]


def _arg(machine, position: int) -> Cell:
    return machine.get_x(position)


def _bind_sort(machine, position: int, sort: AbsSort, elem: Tree = None) -> bool:
    cell = make_abs(machine.heap, sort, elem)
    return s_unify(machine.heap, _arg(machine, position), cell)


def _summary(machine, position: int) -> AbsSort:
    return cell_summary(machine.heap, _arg(machine, position))


# ----------------------------------------------------------------------
# Control and unification.

def _ab_true(machine) -> bool:
    return True


def _ab_fail(machine) -> bool:
    return False


def _ab_unify(machine) -> bool:
    return s_unify(machine.heap, _arg(machine, 1), _arg(machine, 2))


def _ab_succeed_no_bindings(machine) -> bool:
    """Tests that never bind: ``\\=``, ``==``, ordering, ``compare`` ..."""
    return True


# ----------------------------------------------------------------------
# Type tests: fail only on certain mismatch.

def _ab_type_test(target: AbsSort) -> AbstractBuiltinFn:
    def builtin(machine) -> bool:
        from ..domain.sorts import sort_glb

        # A definite variable fails every type test; otherwise succeed
        # unless the sorts are provably disjoint.
        return sort_glb(_summary(machine, 1), target) != AbsSort.EMPTY

    return builtin


def _ab_var(machine) -> bool:
    # var(X) fails only when X is certainly instantiated.
    cell, _ = deref(machine.heap, _arg(machine, 1))
    if cell[0] == REF:
        return True
    if cell[0] in (CON, LIS, STR):
        return False
    sort = cell[1][0]  # type: ignore[index]
    return sort == AbsSort.ANY  # any may still be a variable


def _ab_nonvar(machine) -> bool:
    cell, _ = deref(machine.heap, _arg(machine, 1))
    # Fails only for a certain variable; an unbound ref may be aliased to
    # a run-time-instantiated term only if abstract, so REF means var.
    return cell[0] != REF


def _ab_compound(machine) -> bool:
    cell, _ = deref(machine.heap, _arg(machine, 1))
    if cell[0] in (LIS, STR):
        return True
    if cell[0] in (CON, REF):
        # A constant, or a definite variable: the test fails now.
        return False
    sort = cell[1][0]  # type: ignore[index]
    return sort in (AbsSort.ANY, AbsSort.NV, AbsSort.GROUND, AbsSort.LIST)


# ----------------------------------------------------------------------
# Arithmetic.

def _could_be_numeric(machine, position: int) -> bool:
    """A definitely-unbound argument raises an instantiation error in
    every concrete run (so: no success to account for); anything else may
    evaluate."""
    return _summary(machine, position) != AbsSort.VAR


def _ab_is(machine) -> bool:
    # The expression must still be evaluable; the result is an integer
    # instance (float results are folded into integer for the domain).
    if not _could_be_numeric(machine, 2):
        return False
    return _bind_sort(machine, 1, AbsSort.INTEGER)


def _ab_arith_compare(machine) -> bool:
    return _could_be_numeric(machine, 1) and _could_be_numeric(machine, 2)


# ----------------------------------------------------------------------
# Term construction and inspection.

def _ab_functor(machine) -> bool:
    return _bind_sort(machine, 2, AbsSort.CONST) and _bind_sort(
        machine, 3, AbsSort.INTEGER
    )


def _ab_arg(machine) -> bool:
    # arg(N, T, A): N must be numeric; A gains no information (any).
    return _could_be_numeric(machine, 1)


def _ab_univ(machine) -> bool:
    # T =.. L: L is always a proper list.
    return _bind_sort(machine, 2, AbsSort.LIST, ANY_T)


def _ab_copy_term(machine) -> bool:
    from .patterns import tree_of_cell
    from .aheap import materialize

    tree = tree_of_cell(machine.heap, _arg(machine, 1), machine.depth)
    copy_cell = materialize(machine.heap, tree)
    return s_unify(machine.heap, _arg(machine, 2), copy_cell)


def _ab_compare(machine) -> bool:
    return _bind_sort(machine, 1, AbsSort.ATOM)


# ----------------------------------------------------------------------
# Output and atom utilities.

def _ab_output(machine) -> bool:
    return True


def _ab_atom_length(machine) -> bool:
    summary = _summary(machine, 1)
    from ..domain.sorts import sort_unify

    if sort_unify(summary, AbsSort.ATOM) == AbsSort.EMPTY:
        return False
    return _bind_sort(machine, 2, AbsSort.INTEGER)


def _ab_name(machine) -> bool:
    if not _bind_sort(machine, 1, AbsSort.CONST):
        return False
    return _bind_sort(machine, 2, AbsSort.LIST, INTEGER_T)


ABSTRACT_BUILTINS: Dict[Indicator, AbstractBuiltinFn] = {
    ("true", 0): _ab_true,
    ("fail", 0): _ab_fail,
    ("false", 0): _ab_fail,
    ("=", 2): _ab_unify,
    ("\\=", 2): _ab_succeed_no_bindings,
    ("==", 2): _ab_succeed_no_bindings,
    ("\\==", 2): _ab_succeed_no_bindings,
    ("@<", 2): _ab_succeed_no_bindings,
    ("@>", 2): _ab_succeed_no_bindings,
    ("@=<", 2): _ab_succeed_no_bindings,
    ("@>=", 2): _ab_succeed_no_bindings,
    ("compare", 3): _ab_compare,
    ("var", 1): _ab_var,
    ("nonvar", 1): _ab_nonvar,
    ("atom", 1): _ab_type_test(AbsSort.ATOM),
    ("number", 1): _ab_type_test(AbsSort.CONST),
    ("integer", 1): _ab_type_test(AbsSort.INTEGER),
    ("float", 1): _ab_type_test(AbsSort.CONST),
    ("atomic", 1): _ab_type_test(AbsSort.CONST),
    ("compound", 1): _ab_compound,
    ("callable", 1): _ab_type_test(AbsSort.NV),
    ("is", 2): _ab_is,
    ("=:=", 2): _ab_arith_compare,
    ("=\\=", 2): _ab_arith_compare,
    ("<", 2): _ab_arith_compare,
    (">", 2): _ab_arith_compare,
    ("=<", 2): _ab_arith_compare,
    (">=", 2): _ab_arith_compare,
    ("functor", 3): _ab_functor,
    ("arg", 3): _ab_arg,
    ("=..", 2): _ab_univ,
    ("copy_term", 2): _ab_copy_term,
    ("write", 1): _ab_output,
    ("writeq", 1): _ab_output,
    ("print", 1): _ab_output,
    ("nl", 0): _ab_output,
    ("tab", 1): _ab_output,
    ("atom_length", 2): _ab_atom_length,
    ("name", 2): _ab_name,
}
