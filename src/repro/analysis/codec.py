"""JSON round-trip of trees, nodes, patterns and table entries.

One canonical, ``PYTHONHASHSEED``-independent serialization shared by
every layer that persists analysis facts: the result store
(:mod:`repro.serve.store`), the checkpoint snapshots
(:mod:`repro.robust.checkpoint`) and the wire protocol.  Living under
``repro.analysis`` keeps it import-cycle-free — the robustness layer
may depend on it without pulling in the serve package.

Nothing here is process-specific: patterns round-trip through plain
JSON lists (no pickling), sort names travel as their enum names, and
:func:`table_to_json` sorts its output so two runs that reached the
same fixpoint serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import FrozenSet, List, Optional, Tuple

from ..domain.sorts import AbsSort
from ..errors import AnalysisError
from ..prolog.terms import Indicator, format_indicator
from .patterns import Pattern, canonicalize
from .table import ExtensionTable, TableEntry


def tree_to_json(tree) -> list:
    kind = tree[0]
    if kind == "s":
        return ["s", AbsSort(tree[1]).name]
    if kind == "l":
        return ["l", tree_to_json(tree[1])]
    assert kind == "f"
    return ["f", tree[1], tree[2], [tree_to_json(arg) for arg in tree[3]]]


def tree_from_json(data) -> tuple:
    kind = data[0]
    if kind == "s":
        return ("s", AbsSort[data[1]])
    if kind == "l":
        return ("l", tree_from_json(data[1]))
    if kind != "f":
        raise AnalysisError(f"corrupt stored tree node kind {kind!r}")
    return ("f", data[1], data[2], tuple(tree_from_json(arg) for arg in data[3]))


def node_to_json(node) -> list:
    kind = node[0]
    if kind == "i":
        return ["i", AbsSort(node[1]).name, node[2]]
    if kind == "li":
        return ["li", tree_to_json(node[1]), node[2]]
    assert kind == "f"
    return ["f", node[1], node[2], [node_to_json(child) for child in node[3]]]


def node_from_json(data) -> tuple:
    kind = data[0]
    if kind == "i":
        return ("i", AbsSort[data[1]], data[2])
    if kind == "li":
        return ("li", tree_from_json(data[1]), data[2])
    if kind != "f":
        raise AnalysisError(f"corrupt stored pattern node kind {kind!r}")
    return ("f", data[1], data[2], tuple(node_from_json(child) for child in data[3]))


def pattern_to_json(pattern: Pattern) -> list:
    return [node_to_json(node) for node in pattern.args]


def pattern_from_json(data) -> Pattern:
    return canonicalize(Pattern(tuple(node_from_json(node) for node in data)))


def entry_to_json(indicator: Indicator, entry: TableEntry) -> dict:
    return {
        "predicate": format_indicator(indicator),
        "calling": pattern_to_json(entry.calling),
        "success": (
            pattern_to_json(entry.success)
            if entry.success is not None
            else None
        ),
        "may_share": sorted(list(pair) for pair in entry.may_share),
        "status": entry.status,
    }


def entry_from_json(data) -> Tuple[Indicator, Pattern, Optional[Pattern], FrozenSet]:
    name, _, arity = data["predicate"].rpartition("/")
    indicator = (name, int(arity))
    calling = pattern_from_json(data["calling"])
    success = (
        pattern_from_json(data["success"])
        if data["success"] is not None
        else None
    )
    may_share = frozenset(tuple(pair) for pair in data["may_share"])
    return indicator, calling, success, may_share


def table_to_json(table: ExtensionTable, indicators=None) -> List[dict]:
    """Serialize a table (or the entries of ``indicators`` only), sorted
    for deterministic output."""
    wanted = set(indicators) if indicators is not None else None
    entries = [
        entry_to_json(indicator, entry)
        for indicator, entry in table.all_entries()
        if wanted is None or indicator in wanted
    ]
    entries.sort(key=lambda item: (item["predicate"], json.dumps(item["calling"])))
    return entries


__all__ = [
    "entry_from_json",
    "entry_to_json",
    "node_from_json",
    "node_to_json",
    "pattern_from_json",
    "pattern_to_json",
    "table_to_json",
    "tree_from_json",
    "tree_to_json",
]
