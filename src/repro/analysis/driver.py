"""The fixpoint driver: compile once, iterate the abstract WAM to a fixpoint.

The extension-table scheme needs iterative deepening (paper Section 2.2):
one pass explores every calling pattern once, recording lubbed success
patterns; recursive calls see the previous iteration's summaries.  The
driver re-runs the entry goals until a whole pass leaves the table
unchanged — the least fixpoint of the dataflow analysis.

Entry calling patterns are written in a small Prolog-ish spec language::

    analyze(text, "nrev(glist, var)")
    analyze(text, "main")                    # arity 0
    analyze(text, "p(any, f(g, X), X)")      # shared variable = aliasing

Argument spec atoms: ``any``, ``nv``, ``g``/``ground``, ``const``,
``atom``, ``int``/``integer``, ``var``, ``[]``; ``<sort>list`` shorthands
(``glist``, ``intlist``, ``anylist``, ...) and ``list(Spec)`` build α-list
types; compound specs build structure skeletons; repeated variables express
must-aliasing.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..domain.concrete import DEFAULT_DEPTH
from ..domain.lattice import Tree
from ..domain.sorts import AbsSort
from ..errors import AnalysisError, BudgetExceeded, InjectedFault, ReproError
from ..prolog.parser import parse_term
from ..robust import (
    STATUS_DEGRADED,
    STATUS_EXACT,
    STATUS_FAILED,
    Budget,
)
from ..prolog.program import Program
from ..prolog.terms import (
    NIL,
    Atom,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    indicator_of,
)
from ..wam.compile import CompiledProgram, CompilerOptions, compile_program
from .machine import AbstractMachine
from .patterns import Node, Pattern, canonicalize
from .results import AnalysisResult
from .table import ExtensionTable


@dataclass(frozen=True)
class EntrySpec:
    """A top-level calling pattern to start the analysis from."""

    indicator: Indicator
    pattern: Pattern

    def __str__(self) -> str:
        return f"{self.indicator[0]}{self.pattern}"


_SORT_ATOMS: Dict[str, AbsSort] = {
    "any": AbsSort.ANY,
    "nv": AbsSort.NV,
    "g": AbsSort.GROUND,
    "ground": AbsSort.GROUND,
    "const": AbsSort.CONST,
    "atom": AbsSort.ATOM,
    "int": AbsSort.INTEGER,
    "integer": AbsSort.INTEGER,
    "var": AbsSort.VAR,
}

_LIST_SHORTHANDS: Dict[str, AbsSort] = {
    f"{name}list": sort for name, sort in _SORT_ATOMS.items()
}


def _spec_tree(term: Term) -> Tree:
    """Convert a spec term to a type tree (for inner positions)."""
    node = _spec_node(term, itertools.count(), {})
    from .patterns import node_to_tree

    return node_to_tree(node)


def _spec_node(term: Term, counter, var_ids: Dict[int, int]) -> Node:
    if isinstance(term, Var):
        ident = var_ids.get(id(term))
        if ident is None:
            ident = next(counter)
            var_ids[id(term)] = ident
        return ("i", AbsSort.VAR, ident)
    if term == NIL:
        from ..domain.lattice import EMPTY_T

        return ("li", EMPTY_T, next(counter))
    if isinstance(term, Atom):
        sort = _SORT_ATOMS.get(term.name)
        if sort is not None:
            return ("i", sort, next(counter))
        list_sort = _LIST_SHORTHANDS.get(term.name)
        if list_sort is not None:
            return ("li", ("s", list_sort), next(counter))
        raise AnalysisError(
            f"unknown abstract spec atom {term.name!r} "
            f"(use any/nv/g/const/atom/int/var or <sort>list)"
        )
    if isinstance(term, Int):
        return ("i", AbsSort.INTEGER, next(counter))
    assert isinstance(term, Struct)
    if term.name == "list" and term.arity == 1:
        return ("li", _spec_tree(term.args[0]), next(counter))
    children = tuple(_spec_node(a, counter, var_ids) for a in term.args)
    return ("f", term.name, term.arity, children)


def parse_entry_spec(spec: Union[str, Term, EntrySpec]) -> EntrySpec:
    """Parse an entry spec like ``"nrev(glist, var)"``."""
    if isinstance(spec, EntrySpec):
        return spec
    term = parse_term(spec) if isinstance(spec, str) else spec
    if not term.is_callable():
        raise AnalysisError(f"entry spec is not callable: {term}")
    indicator = indicator_of(term)
    counter = itertools.count()
    var_ids: Dict[int, int] = {}
    if isinstance(term, Struct):
        nodes = tuple(_spec_node(a, counter, var_ids) for a in term.args)
    else:
        nodes = ()
    return EntrySpec(indicator, canonicalize(Pattern(nodes)))


#: Cap on table entries embedded per ``table_state`` event — a runaway
#: table must not turn the trace file into the bottleneck.
STATE_DUMP_MAX_ENTRIES = 200


class _StateDumper:
    """Emits capped ``table_state`` events for the time-travel viewer.

    One event per fixpoint pass (``--trace-states N`` bounds the total),
    each carrying a :meth:`ExtensionTable.state_dump` snapshot with the
    *frontier* marked — the entries whose ``updates`` count moved since
    the previous dump, i.e. what this pass actually touched.  Only ever
    constructed when a tracer is present and ``trace_states > 0``.
    """

    __slots__ = ("remaining", "_last")

    def __init__(self, budget: int):
        self.remaining = budget
        self._last: Dict[str, int] = {}

    def dump(self, tracer, table: ExtensionTable, **attrs) -> None:
        if self.remaining <= 0:
            return
        self.remaining -= 1
        state = table.state_dump(max_entries=STATE_DUMP_MAX_ENTRIES)
        seen: Dict[str, int] = {}
        for entry in state["entries"]:
            key = entry["key"]
            seen[key] = entry["updates"]
            entry["frontier"] = entry["updates"] != self._last.get(key, -1)
        self._last = seen
        tracer.event("table_state", state=state, **attrs)


@dataclass
class EntryReport:
    """How the analysis of one entry spec went.

    ``status`` is ``"exact"`` when the spec reached its fixpoint,
    ``"degraded"`` when a budget trip or injected fault interrupted it
    (its table entries were soundly widened to ⊤), and ``"failed"`` when
    an analysis error did (likewise widened).  ``reason`` carries the
    triggering exception's message for degraded/failed specs.
    """

    spec: EntrySpec
    status: str = STATUS_EXACT
    iterations: int = 0
    reason: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "entry": str(self.spec),
            "status": self.status,
            "iterations": self.iterations,
            "reason": self.reason,
        }


class Analyzer:
    """Compile a program once, then run analyses against it.

    Resource governance (see :mod:`repro.robust`): pass a ``budget``
    and/or ``fault_plan`` to bound the run.  ``on_budget`` selects what
    happens when a budget trips (or a fault fires) while analyzing one
    entry spec:

    * ``"raise"`` (default) — propagate the exception, as the ungoverned
      analyzer always did;
    * ``"degrade"`` — widen that spec's table entries to ⊤ (sound but
      imprecise), record the spec as ``degraded``/``failed`` in the
      result's ``entry_reports``, and keep analyzing the remaining
      entry specs.

    Entry specs are analyzed in *isolation* — each gets its own
    extension table and abstract machine, and the per-spec tables are
    merged by lub at the end.  This is what makes degradation local:
    a fault while exploring one entry cannot corrupt another entry's
    summaries.  For exact runs the merged table equals the old shared
    -table fixpoint, because each calling pattern's summaries depend
    only on the program and the pattern itself.
    """

    def __init__(
        self,
        program: Union[Program, str, CompiledProgram],
        options: Optional[CompilerOptions] = None,
        depth: int = DEFAULT_DEPTH,
        max_iterations: int = 100,
        list_aware: bool = True,
        subsumption: bool = False,
        on_undefined: str = "error",
        budget: Optional[Budget] = None,
        fault_plan=None,
        on_budget: str = "raise",
        metrics=None,
        tracer=None,
        trace_states: int = 0,
    ):
        if on_budget not in ("raise", "degrade"):
            raise ValueError(
                f"on_budget must be 'raise' or 'degrade', not {on_budget!r}"
            )
        if isinstance(program, str):
            program = Program.from_text(program)
        if isinstance(program, CompiledProgram):
            self.compiled = program
        else:
            self.compiled = compile_program(program, options)
        self.depth = depth
        self.max_iterations = max_iterations
        self.list_aware = list_aware
        self.subsumption = subsumption
        self.on_undefined = on_undefined
        self.budget = budget
        self.fault_plan = fault_plan
        self.on_budget = on_budget
        #: repro.obs: an optional MetricsRegistry threaded into every
        #: table and machine this analyzer creates, and an optional
        #: span tracer for the structural layers (entry spec → pass).
        #: Both default to None, which keeps every instrumented site a
        #: single identity check.
        self.metrics = metrics
        self.tracer = tracer
        #: With a tracer set and ``trace_states > 0``, emit up to that
        #: many per-pass ``table_state`` events (the time-travel data of
        #: docs/tracing.md).  0 — the default — adds nothing to the hot
        #: path beyond the existing tracer None checks.
        self.trace_states = trace_states
        self._state_dumper: Optional[_StateDumper] = None

    # ------------------------------------------------------------------
    # Fine-grained entry points (used by the repro.serve scheduler).

    def reset_state_dumps(self) -> None:
        """Re-arm the per-run state-dump budget (start of an analyze)."""
        self._state_dumper = (
            _StateDumper(self.trace_states)
            if self.tracer is not None and self.trace_states > 0
            else None
        )

    def _dump_state(self, table: ExtensionTable, **attrs) -> None:
        if self._state_dumper is not None and self.tracer is not None:
            self._state_dumper.dump(self.tracer, table, **attrs)

    def machine_for(
        self,
        table: ExtensionTable,
        budget: Optional[Budget] = None,
        fault_plan=None,
    ) -> AbstractMachine:
        """An abstract machine over ``table`` with this analyzer's knobs."""
        return AbstractMachine(
            self.compiled, table, depth=self.depth,
            list_aware=self.list_aware, subsumption=self.subsumption,
            on_undefined=self.on_undefined,
            budget=budget, fault_plan=fault_plan,
            metrics=self.metrics,
        )

    def pattern_fixpoint(
        self,
        machine: AbstractMachine,
        indicator: Indicator,
        pattern: Pattern,
        budget: Optional[Budget] = None,
        fault_plan=None,
        on_pass=None,
    ) -> int:
        """Iterate one calling pattern to a local fixpoint.

        This is the per-SCC entry point: the serve scheduler stabilizes
        each strongly connected component bottom-up by iterating its
        calling patterns here, with the callee components' summaries
        already frozen in the machine's table.  Returns the number of
        passes run; charges ``budget`` one iteration per pass.
        ``on_pass`` (if given) is called with no arguments after every
        completed pass — the checkpoint trigger hook.
        """
        table = machine.table
        iterations = 0
        while True:
            if fault_plan is not None and fault_plan.watches("iteration"):
                fault_plan.fire("iteration")
            if budget is not None:
                budget.charge_iteration()
            iterations += 1
            if self.metrics is not None:
                self.metrics.counter("analysis.iterations").inc()
            if self.tracer is not None:
                self.tracer.event(
                    "fixpoint_iteration",
                    pattern=f"{indicator[0]}/{indicator[1]}{pattern}",
                    pass_number=iterations,
                )
            before = table.changes
            machine.run_pattern(indicator, pattern)
            if self.tracer is not None:
                self._dump_state(
                    table,
                    pattern=f"{indicator[0]}/{indicator[1]}{pattern}",
                    pass_number=iterations,
                )
            if on_pass is not None:
                on_pass()
            if table.changes == before:
                return iterations

    def analyze(
        self,
        entries: Sequence[Union[str, Term, EntrySpec]],
        checkpoint=None,
        resume: Optional[dict] = None,
    ) -> AnalysisResult:
        """Run the fixpoint analysis from the given entry patterns.

        ``checkpoint`` is an optional
        :class:`~repro.robust.checkpoint.CheckpointPolicy`: it is
        notified after every fixpoint pass (snapshotting on its cadence)
        and flushed with the pre-widening table when a spec degrades, so
        the partial work survives the ⊤-widening that follows.

        ``resume`` is an optional checkpoint snapshot dict (already
        validated with :func:`repro.robust.checkpoint.load` — the
        *caller* owns matching it against this program/config/entries).
        Its entries are planted unfrozen into every spec's table — seed
        plus thaw in one step — which restarts the Kleene iteration from
        the recorded intermediate iterate.  Intermediate iterates are ⊑
        the least fixpoint, so the resumed run converges to exactly the
        result a from-scratch run produces, in fewer passes.
        """
        specs = [parse_entry_spec(entry) for entry in entries]
        if not specs:
            raise AnalysisError("at least one entry spec is required")
        budget = self.budget
        if budget is None:
            # Preserve the historical max_iterations contract through the
            # same governance path as an explicit budget.
            budget = Budget(max_iterations=self.max_iterations)
        budget.start()
        plan = self.fault_plan
        table = ExtensionTable()  # the merged, ungoverned result table
        reports: List[EntryReport] = []
        iterations = 0
        instructions = 0
        started = time.perf_counter()
        metrics = self.metrics
        tracer = self.tracer
        self.reset_state_dumps()
        for spec in specs:
            spec_table = ExtensionTable(
                budget=budget, fault_plan=plan, metrics=metrics
            )
            if resume is not None:
                from ..robust.checkpoint import plant

                plant(
                    resume, spec_table, respect_frozen=False, metrics=metrics
                )
            machine = AbstractMachine(
                self.compiled, spec_table, depth=self.depth,
                list_aware=self.list_aware, subsumption=self.subsumption,
                on_undefined=self.on_undefined,
                budget=budget, fault_plan=plan,
                metrics=metrics,
            )
            report = EntryReport(spec)
            spec_started = time.perf_counter()
            if tracer is not None:
                tracer.begin("entry_spec", spec=str(spec))
            try:
                while True:
                    if plan is not None and plan.watches("iteration"):
                        plan.fire("iteration")
                    budget.charge_iteration()
                    report.iterations += 1
                    if metrics is not None:
                        metrics.counter("analysis.iterations").inc()
                    if tracer is not None:
                        tracer.event(
                            "fixpoint_iteration",
                            pass_number=report.iterations,
                        )
                    before = spec_table.changes
                    machine.run_pattern(spec.indicator, spec.pattern)
                    if tracer is not None:
                        self._dump_state(
                            spec_table,
                            pattern=str(spec),
                            pass_number=report.iterations,
                        )
                    if checkpoint is not None:
                        checkpoint.note_pass((table, spec_table))
                    if spec_table.changes == before:
                        break
            except (BudgetExceeded, InjectedFault) as exc:
                if self.on_budget == "raise":
                    if tracer is not None:
                        tracer.end(error=repr(exc))
                    raise
                # Persist the pre-widening iterate first: after the
                # widening below, this spec's partial work would be
                # unrecoverable (⊤ entries are never checkpointed).
                if checkpoint is not None:
                    checkpoint.flush((table, spec_table))
                report.status = STATUS_DEGRADED
                report.reason = str(exc)
            except ReproError as exc:
                if self.on_budget == "raise":
                    if tracer is not None:
                        tracer.end(error=repr(exc))
                    raise
                report.status = STATUS_FAILED
                report.reason = str(exc)
            if tracer is not None:
                tracer.end(status=report.status)
            if metrics is not None:
                metrics.histogram("analysis.entry.seconds").observe(
                    time.perf_counter() - spec_started
                )
                metrics.counter(
                    "analysis.specs", status=report.status
                ).inc()
            if report.status != STATUS_EXACT:
                # Sound degradation: whatever partial summaries the
                # interrupted exploration left may under-approximate, so
                # widen everything this spec touched to ⊤ — including
                # the entry's own pattern, materialized if need be.
                spec_table.disarm()
                spec_table.entry(spec.indicator, spec.pattern)
                spec_table.widen_to_top(report.status)
            table.merge(spec_table)
            iterations += report.iterations
            instructions += machine.instruction_count
            reports.append(report)
        elapsed = time.perf_counter() - started
        return AnalysisResult(
            table=table,
            compiled=self.compiled,
            entries=specs,
            iterations=iterations,
            instructions_executed=instructions,
            seconds=elapsed,
            depth=self.depth,
            entry_reports=reports,
        )


def analyze(
    program: Union[Program, str, CompiledProgram],
    *entries: Union[str, Term, EntrySpec],
    options: Optional[CompilerOptions] = None,
    depth: int = DEFAULT_DEPTH,
    list_aware: bool = True,
    subsumption: bool = False,
    on_undefined: str = "error",
    budget: Optional[Budget] = None,
    fault_plan=None,
    on_budget: str = "raise",
) -> AnalysisResult:
    """One-call API: compile ``program`` and analyze from ``entries``."""
    analyzer = Analyzer(
        program, options=options, depth=depth, list_aware=list_aware,
        subsumption=subsumption, on_undefined=on_undefined,
        budget=budget, fault_plan=fault_plan, on_budget=on_budget,
    )
    return analyzer.analyze(list(entries))
