"""The fixpoint driver: compile once, iterate the abstract WAM to a fixpoint.

The extension-table scheme needs iterative deepening (paper Section 2.2):
one pass explores every calling pattern once, recording lubbed success
patterns; recursive calls see the previous iteration's summaries.  The
driver re-runs the entry goals until a whole pass leaves the table
unchanged — the least fixpoint of the dataflow analysis.

Entry calling patterns are written in a small Prolog-ish spec language::

    analyze(text, "nrev(glist, var)")
    analyze(text, "main")                    # arity 0
    analyze(text, "p(any, f(g, X), X)")      # shared variable = aliasing

Argument spec atoms: ``any``, ``nv``, ``g``/``ground``, ``const``,
``atom``, ``int``/``integer``, ``var``, ``[]``; ``<sort>list`` shorthands
(``glist``, ``intlist``, ``anylist``, ...) and ``list(Spec)`` build α-list
types; compound specs build structure skeletons; repeated variables express
must-aliasing.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..domain.concrete import DEFAULT_DEPTH
from ..domain.lattice import Tree
from ..domain.sorts import AbsSort
from ..errors import AnalysisError
from ..prolog.parser import parse_term
from ..prolog.program import Program
from ..prolog.terms import (
    NIL,
    Atom,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    indicator_of,
)
from ..wam.compile import CompiledProgram, CompilerOptions, compile_program
from .machine import AbstractMachine
from .patterns import Node, Pattern, canonicalize
from .results import AnalysisResult
from .table import ExtensionTable


@dataclass(frozen=True)
class EntrySpec:
    """A top-level calling pattern to start the analysis from."""

    indicator: Indicator
    pattern: Pattern

    def __str__(self) -> str:
        return f"{self.indicator[0]}{self.pattern}"


_SORT_ATOMS: Dict[str, AbsSort] = {
    "any": AbsSort.ANY,
    "nv": AbsSort.NV,
    "g": AbsSort.GROUND,
    "ground": AbsSort.GROUND,
    "const": AbsSort.CONST,
    "atom": AbsSort.ATOM,
    "int": AbsSort.INTEGER,
    "integer": AbsSort.INTEGER,
    "var": AbsSort.VAR,
}

_LIST_SHORTHANDS: Dict[str, AbsSort] = {
    f"{name}list": sort for name, sort in _SORT_ATOMS.items()
}


def _spec_tree(term: Term) -> Tree:
    """Convert a spec term to a type tree (for inner positions)."""
    node = _spec_node(term, itertools.count(), {})
    from .patterns import node_to_tree

    return node_to_tree(node)


def _spec_node(term: Term, counter, var_ids: Dict[int, int]) -> Node:
    if isinstance(term, Var):
        ident = var_ids.get(id(term))
        if ident is None:
            ident = next(counter)
            var_ids[id(term)] = ident
        return ("i", AbsSort.VAR, ident)
    if term == NIL:
        from ..domain.lattice import EMPTY_T

        return ("li", EMPTY_T, next(counter))
    if isinstance(term, Atom):
        sort = _SORT_ATOMS.get(term.name)
        if sort is not None:
            return ("i", sort, next(counter))
        list_sort = _LIST_SHORTHANDS.get(term.name)
        if list_sort is not None:
            return ("li", ("s", list_sort), next(counter))
        raise AnalysisError(
            f"unknown abstract spec atom {term.name!r} "
            f"(use any/nv/g/const/atom/int/var or <sort>list)"
        )
    if isinstance(term, Int):
        return ("i", AbsSort.INTEGER, next(counter))
    assert isinstance(term, Struct)
    if term.name == "list" and term.arity == 1:
        return ("li", _spec_tree(term.args[0]), next(counter))
    children = tuple(_spec_node(a, counter, var_ids) for a in term.args)
    return ("f", term.name, term.arity, children)


def parse_entry_spec(spec: Union[str, Term, EntrySpec]) -> EntrySpec:
    """Parse an entry spec like ``"nrev(glist, var)"``."""
    if isinstance(spec, EntrySpec):
        return spec
    term = parse_term(spec) if isinstance(spec, str) else spec
    if not term.is_callable():
        raise AnalysisError(f"entry spec is not callable: {term}")
    indicator = indicator_of(term)
    counter = itertools.count()
    var_ids: Dict[int, int] = {}
    if isinstance(term, Struct):
        nodes = tuple(_spec_node(a, counter, var_ids) for a in term.args)
    else:
        nodes = ()
    return EntrySpec(indicator, canonicalize(Pattern(nodes)))


class Analyzer:
    """Compile a program once, then run analyses against it."""

    def __init__(
        self,
        program: Union[Program, str, CompiledProgram],
        options: Optional[CompilerOptions] = None,
        depth: int = DEFAULT_DEPTH,
        max_iterations: int = 100,
        list_aware: bool = True,
        subsumption: bool = False,
        on_undefined: str = "error",
    ):
        if isinstance(program, str):
            program = Program.from_text(program)
        if isinstance(program, CompiledProgram):
            self.compiled = program
        else:
            self.compiled = compile_program(program, options)
        self.depth = depth
        self.max_iterations = max_iterations
        self.list_aware = list_aware
        self.subsumption = subsumption
        self.on_undefined = on_undefined

    def analyze(
        self, entries: Sequence[Union[str, Term, EntrySpec]]
    ) -> AnalysisResult:
        """Run the fixpoint analysis from the given entry patterns."""
        specs = [parse_entry_spec(entry) for entry in entries]
        if not specs:
            raise AnalysisError("at least one entry spec is required")
        table = ExtensionTable()
        machine = AbstractMachine(
            self.compiled, table, depth=self.depth,
            list_aware=self.list_aware, subsumption=self.subsumption,
            on_undefined=self.on_undefined,
        )
        iterations = 0
        started = time.perf_counter()
        while True:
            iterations += 1
            if iterations > self.max_iterations:
                raise AnalysisError(
                    f"no fixpoint after {self.max_iterations} iterations"
                )
            before = table.changes
            for spec in specs:
                machine.run_pattern(spec.indicator, spec.pattern)
            if table.changes == before:
                break
        elapsed = time.perf_counter() - started
        return AnalysisResult(
            table=table,
            compiled=self.compiled,
            entries=specs,
            iterations=iterations,
            instructions_executed=machine.instruction_count,
            seconds=elapsed,
            depth=self.depth,
        )


def analyze(
    program: Union[Program, str, CompiledProgram],
    *entries: Union[str, Term, EntrySpec],
    options: Optional[CompilerOptions] = None,
    depth: int = DEFAULT_DEPTH,
    list_aware: bool = True,
    subsumption: bool = False,
    on_undefined: str = "error",
) -> AnalysisResult:
    """One-call API: compile ``program`` and analyze from ``entries``."""
    analyzer = Analyzer(
        program, options=options, depth=depth, list_aware=list_aware,
        subsumption=subsumption, on_undefined=on_undefined,
    )
    return analyzer.analyze(list(entries))
