"""The abstract WAM (paper Sections 4.2 and 5).

The same linked code the concrete machine runs is *reinterpreted* over the
abstract domain:

* the unification instructions (``get``/``unify``) perform abstract set
  unification — their reinterpretation follows Figure 4: concrete operands
  take the concrete path, abstract instances take approximate-unifiability
  plus complex-term instantiation;
* ``call`` computes the calling pattern of the argument registers,
  consults the extension table, and either returns the memoized success
  pattern or opens an *exploration frame* over the predicate's clauses;
* ``proceed`` becomes ``updateET`` followed by a forced failure so the
  next clause is explored (Figure 5); when the clauses are exhausted the
  summarized success pattern is returned to the caller (``lookupET``);
* ``execute`` reverts to ``call`` + ``proceed`` via the service proceed
  instruction at :data:`~repro.wam.compile.PROCEED_ADDRESS`;
* indexing instructions never run — exploration frames enumerate clause
  entry addresses directly ("creation and reclamation of backtracking
  points would better be incorporated into call and proceed");
* cut is a sound no-op: all clauses are explored.

The machine mutates one shared :class:`~repro.analysis.table.ExtensionTable`;
the fixpoint driver re-runs entry goals until the table stops changing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..domain.concrete import DEFAULT_DEPTH
from ..errors import AnalysisError, PrologError
from ..prolog.terms import NIL, Indicator, format_indicator
from ..wam.cells import CON, LIS, REF, STR, Cell
from ..wam.compile import CompiledProgram, HALT_ADDRESS, PROCEED_ADDRESS
from ..wam.instructions import Instr
from ..wam.machine import Machine
from .aheap import ABS, deref
from .aunify import (
    _growth_can_share,
    complex_term_inst,
    register_growth_sharing,
    s_unify,
)
from .patterns import (
    Pattern,
    abstract_cells,
    cell_share_pairs,
    collect_share_points,
    materialize_pattern,
    pattern_subsumes,
)
from .table import ExtensionTable, TableEntry


class ExplorationFrame:
    """One open predicate activation: a clause enumerator plus ET state."""

    __slots__ = (
        "indicator",
        "calling",
        "entry",
        "original_args",
        "materialized",
        "clause_addresses",
        "clause_index",
        "ret",
        "e",
        "trail_mark",
        "heap_mark_pre",
        "heap_mark_post",
    )

    def __init__(
        self,
        indicator: Indicator,
        calling: Pattern,
        entry: TableEntry,
        original_args: Tuple[Cell, ...],
        ret: int,
        e,
        trail_mark: int,
        heap_mark_pre: int,
    ):
        self.indicator = indicator
        self.calling = calling
        self.entry = entry
        self.original_args = original_args
        self.materialized: Tuple[Cell, ...] = ()
        self.clause_addresses: List[int] = []
        self.clause_index = 0
        self.ret = ret
        self.e = e
        self.trail_mark = trail_mark
        self.heap_mark_pre = heap_mark_pre
        self.heap_mark_post = heap_mark_pre


class AbstractMachine(Machine):
    """Reinterprets WAM code over the abstract domain."""

    def __init__(
        self,
        compiled: CompiledProgram,
        table: Optional[ExtensionTable] = None,
        depth: int = DEFAULT_DEPTH,
        max_steps: int = 50_000_000,
        list_aware: bool = True,
        subsumption: bool = False,
        on_undefined: str = "error",
        budget=None,
        fault_plan=None,
        metrics=None,
    ):
        super().__init__(compiled, max_steps=max_steps)
        from .builtins import ABSTRACT_BUILTINS

        self.table = table if table is not None else ExtensionTable()
        #: repro.obs: when a registry is supplied the inherited dispatch
        #: loop switches to its profiled variant, and the abstract-level
        #: sites below count unifications, table consultations per
        #: predicate, and the exploration stack's peak depth.  The
        #: hot-site counters are bound once here so the metrics-on path
        #: never pays a registry lookup per call.
        self.metrics = metrics
        if metrics is not None:
            self._unify_counter = metrics.counter("analysis.unify.calls")
            self._frames_peak = metrics.gauge("analysis.frames.peak")
        else:
            self._unify_counter = None
            self._frames_peak = None
        #: Resource governance (repro.robust): the budget charges one
        #: "step" per dispatched instruction (plus deadline probes), the
        #: fault plan fires "step"/"unify" sites.  The per-instruction
        #: monitor is installed only when something actually watches it.
        self.budget = budget
        self.fault_plan = fault_plan
        self._unify_fire = (
            fault_plan.fire
            if fault_plan is not None and fault_plan.watches("unify")
            else None
        )
        monitors = []
        if budget is not None and budget.governs_steps:
            monitors.append(budget.charge_step)
        if fault_plan is not None and fault_plan.watches("step"):
            monitors.append(lambda: fault_plan.fire("step"))
        if len(monitors) == 1:
            self.step_monitor = monitors[0]
        elif monitors:
            def _monitor(hooks=tuple(monitors)):
                for hook in hooks:
                    hook()
            self.step_monitor = _monitor
        self.depth = depth
        self.list_aware = list_aware
        #: Reuse the summary of a more general explored pattern instead of
        #: exploring a new one (classic OLDT subsumption; coarser results,
        #: smaller tables).
        self.subsumption = subsumption
        self.subsumption_hits = 0
        #: Policy for calls to predicates with no clauses: "error" (closed
        #: programs, the default), "fail" (assume the call fails — sound
        #: only if the missing code indeed cannot succeed), or "top"
        #: (assume it may succeed binding anything — always sound).
        if on_undefined not in ("error", "fail", "top"):
            raise AnalysisError(
                f"on_undefined must be error/fail/top, not {on_undefined!r}"
            )
        self.on_undefined = on_undefined
        self.iteration = 0
        self.frames: List[ExplorationFrame] = []
        self.abstract_builtins = ABSTRACT_BUILTINS

    # ------------------------------------------------------------------
    # Abstract unification chokepoint (the "unify" fault site).

    def _s_unify(self, left: Cell, right: Cell) -> bool:
        if self._unify_fire is not None:
            self._unify_fire("unify")
        if self._unify_counter is not None:
            self._unify_counter.inc()
        return s_unify(self.heap, left, right)

    # ------------------------------------------------------------------
    # Profiled dispatch: charge instructions to the predicate being
    # explored (the innermost open frame).

    def _profile_owner(self):
        frames = self.frames
        return frames[-1].indicator if frames else None

    # ------------------------------------------------------------------
    # Analysis passes.

    def run_pattern(self, indicator: Indicator, calling: Pattern) -> None:
        """Execute one top-level pass for an entry calling pattern."""
        self.iteration += 1
        self.frames.clear()
        self.e = None
        self.pc = HALT_ADDRESS
        trail_mark = self.heap.trail_mark()
        heap_mark = self.heap.top
        try:
            arity = indicator[1]
            cells = materialize_pattern(self.heap, calling)
            for position, cell in enumerate(cells, start=1):
                self.set_x(position, cell)
            self.num_args = arity
            if self._do_call(indicator, HALT_ADDRESS) == "fail":
                if not self.backtrack():
                    return
            self._run_to_event()
        finally:
            # Passes share the table, not the heap: reclaim everything.
            self.heap.undo_to(trail_mark, heap_mark)

    # ------------------------------------------------------------------
    # The control scheme (call / execute / proceed / backtrack).

    def _call(self, instruction: Instr):
        predicate, live = instruction.args
        self._trim_environment(live)
        return self._do_call(predicate, self.pc + 1)

    def _execute(self, instruction: Instr):
        # call followed by proceed: the continuation is the service
        # proceed, which will run updateET for the *current* frame.
        return self._do_call(instruction.args[0], PROCEED_ADDRESS)

    def _do_call(self, indicator: Indicator, ret: int):
        arity = indicator[1]
        if self.metrics is not None:
            self.metrics.counter(
                "analysis.predicate.calls", pred=format_indicator(indicator)
            ).inc()
        args = tuple(self.x[1 : arity + 1])
        calling = abstract_cells(
            self.heap, list(args), self.depth, self.list_aware
        )
        if self.tracer is not None:
            self.tracer.event(
                f"call {format_indicator(indicator)}{calling}"
            )
        existing = self.table.find(indicator, calling)
        if existing is not None and (
            existing.frozen or existing.explored_iteration == self.iteration
        ):
            # Already explored (or in progress) in this iteration — or a
            # frozen summary, known final (seeded from the result store or
            # stabilized by the SCC scheduler; see repro.serve): return
            # the recorded summary, or fail if none is known yet.
            if self.tracer is not None:
                summary = existing.success if existing.success else "no success yet"
                self.tracer.event(f"  table hit -> {summary}")
            return self._apply_success(existing, args, ret)
        if self.subsumption and existing is None:
            subsumer = self._find_subsumer(indicator, calling)
            if subsumer is not None:
                self.subsumption_hits += 1
                if self.tracer is not None:
                    self.tracer.event(
                        f"  subsumed by {subsumer.calling}"
                    )
                return self._apply_success(subsumer, args, ret)
        entry = self.table.entry(indicator, calling)
        entry.explored_iteration = self.iteration
        clause_addresses = self.compiled.clause_entries(indicator)
        if not clause_addresses:
            if self.compiled.code.entry.get(indicator) is None:
                if self.on_undefined == "error":
                    raise PrologError(
                        "existence_error",
                        f"unknown predicate {format_indicator(indicator)}",
                    )
                if self.on_undefined == "fail":
                    return "fail"
                # "top": the unknown predicate may succeed with anything;
                # record a top success pattern so callers see `any`.
                from ..domain.sorts import AbsSort

                top = Pattern(
                    tuple(
                        ("i", AbsSort.ANY, index) for index in range(arity)
                    )
                )
                # Unknown code could alias any pair of its arguments.
                all_pairs = frozenset(
                    (i, j)
                    for i in range(arity)
                    for j in range(i + 1, arity)
                )
                self.table.update(indicator, calling, top, all_pairs)
                return self._apply_success(entry, args, ret)
            return self._apply_success(entry, args, ret)
        frame = ExplorationFrame(
            indicator=indicator,
            calling=calling,
            entry=entry,
            original_args=args,
            ret=ret,
            e=self.e,
            trail_mark=self.heap.trail_mark(),
            heap_mark_pre=self.heap.top,
        )
        frame.materialized = tuple(materialize_pattern(self.heap, calling))
        frame.heap_mark_post = self.heap.top
        frame.clause_addresses = clause_addresses
        self.frames.append(frame)
        if self._frames_peak is not None:
            self._frames_peak.set_max(len(self.frames))
        self._enter_clause(frame)

    def _find_subsumer(self, indicator: Indicator, calling: Pattern):
        """An explored entry whose calling pattern covers ``calling``."""
        best = None
        for entry in self.table.entries_for(indicator):
            if not entry.frozen and entry.explored_iteration != self.iteration:
                continue
            if entry.calling == calling:
                continue
            if not pattern_subsumes(entry.calling, calling):
                continue
            if best is None or pattern_subsumes(best.calling, entry.calling):
                best = entry  # prefer the most specific subsumer
        return best

    def _enter_clause(self, frame: ExplorationFrame) -> None:
        for position, cell in enumerate(frame.materialized, start=1):
            self.set_x(position, cell)
        self.num_args = len(frame.materialized)
        self.e = frame.e
        self.pc = frame.clause_addresses[frame.clause_index]

    def _apply_success(
        self, entry: TableEntry, args: Tuple[Cell, ...], ret: int
    ):
        """``lookupET``: unify the summarized success pattern back into the
        caller's arguments; fail when no success is recorded."""
        if entry.success is None:
            return "fail"
        success_cells = materialize_pattern(self.heap, entry.success)
        for caller_cell, success_cell in zip(args, success_cells):
            if not self._s_unify(caller_cell, success_cell):
                return "fail"
        # Aliasing the success pattern could not express: merge the
        # affected arguments' share points in the heap's sharing component.
        if entry.may_share:
            points_by_position: dict = {}
            for left_pos, right_pos in entry.may_share:
                if left_pos >= len(args) or right_pos >= len(args):
                    continue
                for position in (left_pos, right_pos):
                    if position not in points_by_position:
                        points: set = set()
                        collect_share_points(self.heap, args[position], points)
                        points_by_position[position] = points
                merged = points_by_position[left_pos] | points_by_position[right_pos]
                merged_list = list(merged)
                for point in merged_list[1:]:
                    self.heap.share_union(merged_list[0], point)
        self.pc = ret
        return None

    def _proceed(self, instruction: Instr):
        if not self.frames:
            # A proceed with no open exploration: only the initial state;
            # treat as overall success of the pass.
            return "halt"
        frame = self.frames[-1]
        success = abstract_cells(
            self.heap, list(frame.materialized), self.depth, self.list_aware
        )
        if len(frame.materialized) > 1:
            extra_share = cell_share_pairs(self.heap, frame.materialized)
        else:
            extra_share = frozenset()
        changed = self.table.update(
            frame.indicator, frame.calling, success, extra_share
        )
        if self.tracer is not None:
            marker = "" if changed else " (no change)"
            self.tracer.event(
                f"updateET {format_indicator(frame.indicator)}"
                f"{frame.calling} <- {success}{marker}; fail to next clause"
            )
        return "fail"  # drive the next clause (Figure 5)

    def backtrack(self) -> bool:
        """Fail into the innermost exploration frame."""
        while self.frames:
            frame = self.frames[-1]
            self.heap.undo_to(frame.trail_mark, frame.heap_mark_post)
            self.e = frame.e
            frame.clause_index += 1
            if frame.clause_index < len(frame.clause_addresses):
                self._enter_clause(frame)
                return True
            # Clauses exhausted: lookupET and return deterministically.
            self.frames.pop()
            self.heap.undo_to(frame.trail_mark, frame.heap_mark_pre)
            if self.tracer is not None:
                summary = (
                    frame.entry.success
                    if frame.entry.success
                    else "FAIL"
                )
                self.tracer.event(
                    f"lookupET {format_indicator(frame.indicator)}"
                    f"{frame.calling} -> {summary}"
                )
            outcome = self._apply_success(
                frame.entry, frame.original_args, frame.ret
            )
            if outcome is None:
                return True
            # No success (or incompatible): keep failing outwards.
        return False

    # ------------------------------------------------------------------
    # Unification instructions over the abstract domain.

    def _subterm_cell(self) -> Cell:
        """The cell at S, as something holding its address when mutable."""
        cell = self.heap.cells[self.s]
        if cell[0] == ABS:
            return (REF, self.s)
        return cell

    def _get_constant_cell(self, constant, cell: Cell):
        if self._s_unify((CON, constant), cell):
            return None
        return "fail"

    def _get_value(self, instruction: Instr):
        register, position = instruction.args
        if not self._s_unify(self.get_reg(register), self.get_x(position)):
            return "fail"
        self.pc += 1

    def _get_list(self, instruction: Instr):
        register = instruction.args[0]
        cell, address = deref(self.heap, self.get_reg(register))
        tag = cell[0]
        if tag == REF:
            self.heap.set_cell(address, (LIS, self.heap.top))  # type: ignore[arg-type]
            self.mode = "write"
        elif tag == LIS:
            self.s = cell[1]  # type: ignore[assignment]
            self.mode = "read"
        elif tag == STR and self.heap.cells[cell[1]][1] == (".", 2):  # type: ignore[index]
            self.s = cell[1] + 1  # type: ignore[assignment]
            self.mode = "read"
        elif tag == ABS:
            sort, elem = cell[1]  # type: ignore[misc]
            instance = complex_term_inst(self.heap, sort, elem, (".", 2))
            if instance is None:
                return "fail"
            self.heap.set_cell(address, instance)  # type: ignore[arg-type]
            if _growth_can_share(sort, elem):
                register_growth_sharing(self.heap, address, instance)  # type: ignore[arg-type]
            self.s = instance[1]  # type: ignore[assignment]
            self.mode = "read"
        else:
            return "fail"
        self.pc += 1

    def _get_structure(self, instruction: Instr):
        functor, register = instruction.args
        cell, address = deref(self.heap, self.get_reg(register))
        tag = cell[0]
        if tag == REF:
            from ..wam.cells import FUN

            functor_address = self.heap.push((FUN, functor))
            self.heap.set_cell(address, (STR, functor_address))  # type: ignore[arg-type]
            self.mode = "write"
        elif tag == STR:
            if self.heap.cells[cell[1]][1] != functor:  # type: ignore[index]
                return "fail"
            self.s = cell[1] + 1  # type: ignore[assignment]
            self.mode = "read"
        elif tag == LIS:
            if functor != (".", 2):
                return "fail"
            self.s = cell[1]  # type: ignore[assignment]
            self.mode = "read"
        elif tag == ABS:
            sort, elem = cell[1]  # type: ignore[misc]
            instance = complex_term_inst(self.heap, sort, elem, functor)
            if instance is None:
                return "fail"
            self.heap.set_cell(address, instance)  # type: ignore[arg-type]
            if _growth_can_share(sort, elem):
                register_growth_sharing(self.heap, address, instance)  # type: ignore[arg-type]
            if instance[0] == LIS:
                self.s = instance[1]  # type: ignore[assignment]
            else:
                self.s = instance[1] + 1  # type: ignore[assignment]
            self.mode = "read"
        else:
            return "fail"
        self.pc += 1

    def _unify_variable(self, instruction: Instr):
        register = instruction.args[0]
        if self.mode == "read":
            self.set_reg(register, self._subterm_cell())
            self.s += 1
        else:
            self.set_reg(register, self.heap.new_var())
        self.pc += 1

    def _unify_value(self, instruction: Instr):
        register = instruction.args[0]
        if self.mode == "read":
            if not self._s_unify(self.get_reg(register), self._subterm_cell()):
                return "fail"
            self.s += 1
        else:
            self.heap.push(self.get_reg(register))
        self.pc += 1

    def _unify_constant(self, instruction: Instr):
        constant = instruction.args[0]
        if self.mode == "read":
            if not self._s_unify((CON, constant), self._subterm_cell()):
                return "fail"
            self.s += 1
        else:
            self.heap.push((CON, constant))
        self.pc += 1

    def _unify_nil(self, instruction: Instr):
        if self.mode == "read":
            if not self._s_unify((CON, NIL), self._subterm_cell()):
                return "fail"
            self.s += 1
        else:
            self.heap.push((CON, NIL))
        self.pc += 1

    # ------------------------------------------------------------------
    # Builtins and cut.

    def _builtin(self, instruction: Instr):
        predicate = instruction.args[0]
        handler = self.abstract_builtins.get(predicate)
        if handler is None:
            raise AnalysisError(
                f"no abstract builtin for {format_indicator(predicate)}"
            )
        if not handler(self):
            return "fail"
        self.pc += 1

    def _neck_cut(self, instruction: Instr):
        # Sound no-op: the analysis explores all clauses regardless.
        self.pc += 1

    def _get_level(self, instruction: Instr):
        register = instruction.args[0]
        assert self.e is not None
        self.e.slots[register.index - 1] = ("lvl", None)
        self.pc += 1

    def _cut(self, instruction: Instr):
        self.pc += 1

    # ------------------------------------------------------------------
    # Indexing instructions must never run in the abstract machine.

    def _unexpected(self, instruction: Instr):
        raise AnalysisError(
            f"indexing instruction reached the abstract machine: "
            f"{instruction.op} at {self.pc}"
        )

    _try_me_else = _unexpected
    _retry_me_else = _unexpected
    _trust_me = _unexpected
    _try = _unexpected
    _retry = _unexpected
    _trust = _unexpected
    _switch_on_term = _unexpected
    _switch_on_constant = _unexpected
    _switch_on_structure = _unexpected


AbstractMachine.DISPATCH = {
    **Machine.DISPATCH,
    "get_value": AbstractMachine._get_value,
    "get_constant": Machine._get_constant,  # via the overridden cell helper
    "get_nil": Machine._get_nil,
    "get_list": AbstractMachine._get_list,
    "get_structure": AbstractMachine._get_structure,
    "unify_variable": AbstractMachine._unify_variable,
    "unify_value": AbstractMachine._unify_value,
    "unify_constant": AbstractMachine._unify_constant,
    "unify_nil": AbstractMachine._unify_nil,
    "call": AbstractMachine._call,
    "execute": AbstractMachine._execute,
    "proceed": AbstractMachine._proceed,
    "builtin": AbstractMachine._builtin,
    "neck_cut": AbstractMachine._neck_cut,
    "get_level": AbstractMachine._get_level,
    "cut": AbstractMachine._cut,
    "try_me_else": AbstractMachine._unexpected,
    "retry_me_else": AbstractMachine._unexpected,
    "trust_me": AbstractMachine._unexpected,
    "try": AbstractMachine._unexpected,
    "retry": AbstractMachine._unexpected,
    "trust": AbstractMachine._unexpected,
    "switch_on_term": AbstractMachine._unexpected,
    "switch_on_constant": AbstractMachine._unexpected,
    "switch_on_structure": AbstractMachine._unexpected,
}
