"""Calling and success patterns (paper Sections 2.2, 5, 6).

A *pattern* is the canonical abstraction of an argument tuple: for each
argument, a node tree whose leaves carry *instance numbers* — two leaves
with the same number denote the same abstract instance (aliasing), exactly
like the subscripts in the paper (``p(atom, glist₁)``).  Patterns are
hashable and serve as extension-table keys.

Node forms (nested tuples):

* ``('i', sort, n)`` — an instance of a simple sort (``var`` included);
* ``('li', elem_tree, n)`` — an instance of an α-list;
* ``('f', name, arity, (nodes...))`` — a structure skeleton.

The abstraction function applies the term-depth restriction: subterms at
depth ≥ k are summarized to their most precise simple sort; proper list
spines cost a single level, with elements abstracted one level deeper
(that is how 30-element ground lists become ``glist``).

Must-aliasing is preserved when it is certain (two argument positions
dereference into the same heap cell); list-element sharing is summarized
away, which is the sound direction for an over-approximating analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..domain.concrete import DEFAULT_DEPTH
from ..domain.lattice import (
    ANY_T,
    EMPTY_T,
    Tree,
    tree_is_ground,
    tree_lub,
    tree_summary_sort,
    tree_to_text,
)
from ..domain.sorts import AbsSort, sort_is_ground
from ..errors import AnalysisError
from ..prolog.terms import NIL, Atom, Float, Int
from ..wam.cells import CON, LIS, REF, STR, Cell, Heap
from .aheap import ABS, cell_summary, deref, make_abs


def _slot(heap: Heap, address: int) -> Cell:
    """Read a structure slot; abstract cells come back by reference so
    instance identity (sharing) is preserved."""
    cell = heap.cells[address]
    if cell[0] == ABS:
        return (REF, address)
    return cell

Node = tuple


class Pattern:
    """A canonical abstract argument tuple (immutable, hash cached)."""

    __slots__ = ("args", "_hash")

    def __init__(self, args: Tuple[Node, ...]):
        self.args = args
        self._hash = hash(args)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and other.args == self.args

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Pattern({self.args!r})"

    def __str__(self) -> str:
        return pattern_to_text(self)

    @property
    def arity(self) -> int:
        return len(self.args)


# ----------------------------------------------------------------------
# Tree abstraction of a heap term (no sharing info).

def tree_of_cell(
    heap: Heap,
    cell: Cell,
    depth: int = DEFAULT_DEPTH,
    _path: Optional[Set[int]] = None,
    widen: Optional[Set[int]] = None,
) -> Tree:
    """The type tree of the term rooted at ``cell``, depth-restricted.

    ``widen`` holds variable addresses with hidden aliases (see
    :func:`_survey_hidden_aliases`): they abstract to ``any``.
    """
    if _path is None:
        _path = set()
    if widen is None:
        widen = frozenset()
    cell, address = deref(heap, cell)
    if address is not None:
        if address in _path:
            return ANY_T  # cyclic term: give up precisely but soundly
        _path = _path | {address}
    tag = cell[0]
    if tag == REF:
        if address in widen:
            return ("s", AbsSort.ANY)
        return ("s", AbsSort.VAR)
    if tag == ABS:
        sort, elem = cell[1]  # type: ignore[misc]
        if sort == AbsSort.LIST:
            assert elem is not None
            return ("l", clip_tree(elem, depth - 1))
        return ("s", sort)
    if tag == CON:
        return _constant_leaf_tree(cell[1])
    if depth <= 0:
        return ("s", cell_summary(heap, cell))
    if tag == LIS:
        proper, elements, tail_elem = _walk_spine(heap, cell, _path)
        if proper:
            elem = tail_elem if tail_elem is not None else EMPTY_T
            for element in elements:
                elem = tree_lub(
                    elem, tree_of_cell(heap, element, depth - 1, _path, widen)
                )
            return ("l", elem)
        head_cell = _slot(heap, cell[1])  # type: ignore[arg-type]
        tail_cell = _slot(heap, cell[1] + 1)  # type: ignore[arg-type]
        return (
            "f",
            ".",
            2,
            (
                tree_of_cell(heap, head_cell, depth - 1, _path, widen),
                tree_of_cell(heap, tail_cell, depth - 1, _path, widen),
            ),
        )
    assert tag == STR
    name, arity = heap.cells[cell[1]][1]  # type: ignore[index]
    args = tuple(
        tree_of_cell(heap, _slot(heap, cell[1] + 1 + i), depth - 1, _path, widen)  # type: ignore[arg-type]
        for i in range(arity)
    )
    return ("f", name, arity, args)


def _constant_leaf_tree(constant) -> Tree:
    if constant == NIL:
        return ("l", EMPTY_T)
    if isinstance(constant, Atom):
        return ("s", AbsSort.ATOM)
    if isinstance(constant, Int):
        return ("s", AbsSort.INTEGER)
    return ("s", AbsSort.CONST)


def _walk_spine(heap: Heap, cell: Cell, path: Set[int]):
    """Walk a list spine: (is_proper, element_cells, tail_elem_tree)."""
    elements: List[Cell] = []
    seen: Set[int] = set()
    current = cell
    while True:
        if current[0] == LIS:
            address = current[1]
            if address in seen:
                return False, elements, None  # cyclic spine
            seen.add(address)  # type: ignore[arg-type]
            elements.append(_slot(heap, address))  # type: ignore[arg-type]
            current, _ = deref(heap, _slot(heap, address + 1))  # type: ignore[arg-type]
            continue
        if current == (CON, NIL):
            return True, elements, None
        if current[0] == ABS and current[1][0] == AbsSort.LIST:  # type: ignore[index]
            return True, elements, current[1][1]  # type: ignore[index]
        return False, elements, None


def clip_tree(tree: Tree, depth: int) -> Tree:
    """Depth-restrict an arbitrary type tree.

    ``('l', empty)`` (the nil list) is a constant leaf and costs no depth,
    keeping clipping consistent with :func:`tree_of_cell`, which never
    summarizes constants.
    """
    if tree[0] == "s":
        return tree
    if tree[0] == "l" and tree[1] == EMPTY_T:
        return tree
    if depth <= 0:
        return ("s", tree_summary_sort(tree))
    if tree[0] == "l":
        return ("l", clip_tree(tree[1], depth - 1))
    return (
        "f",
        tree[1],
        tree[2],
        tuple(clip_tree(arg, depth - 1) for arg in tree[3]),
    )


# ----------------------------------------------------------------------
# Pattern abstraction (with sharing).

def _survey_hidden_aliases(heap: Heap, cells) -> Set[int]:
    """Free variables whose aliasing a pattern cannot represent.

    List spines are summarized to an element *type* with no instance ids,
    so a variable cell that occurs inside a summarized spine AND is
    reachable a second time (inside or outside the spine) has a hidden
    alias: the pattern must widen it from ``var`` to ``any``, because a
    binding through the lost alias could instantiate it.  (Non-var
    abstract sorts are closed under instantiation and need no widening.)
    """
    counts: Dict[int, int] = {}
    in_spine: Set[int] = set()
    visited: Set[Tuple[int, bool]] = set()

    def walk(cell: Cell, inside: bool, path: FrozenSet[int]) -> None:
        cell, address = deref(heap, cell)
        if address is None:
            tag = cell[0]
            if tag == LIS:
                _walk_compound(cell, inside, path)
            elif tag == STR:
                _walk_compound(cell, inside, path)
            return
        if address in path:
            return
        counts[address] = counts.get(address, 0) + 1
        if cell[0] == REF and inside:
            in_spine.add(address)
        if (address, inside) in visited and counts[address] >= 2:
            return
        visited.add((address, inside))
        if cell[0] in (LIS, STR):
            _walk_compound(cell, inside, path | {address})

    def _walk_compound(cell: Cell, inside: bool, path: FrozenSet[int]) -> None:
        if cell[0] == LIS:
            proper, elements, _ = _walk_spine(heap, cell, set(path))
            if proper:
                for element in elements:
                    walk(element, True, path)
                return
            walk(_slot(heap, cell[1]), inside, path)  # type: ignore[arg-type]
            walk(_slot(heap, cell[1] + 1), inside, path)  # type: ignore[arg-type]
            return
        name, arity = heap.cells[cell[1]][1]  # type: ignore[index]
        for offset in range(arity):
            walk(_slot(heap, cell[1] + 1 + offset), inside, path)  # type: ignore[arg-type]

    for cell in cells:
        walk(cell, False, frozenset())
    return {
        address
        for address in in_spine
        if counts.get(address, 0) >= 2
    }


class _Abstractor:
    def __init__(
        self,
        heap: Heap,
        depth: int,
        widen: Optional[Set[int]] = None,
        list_aware: bool = True,
    ):
        self.heap = heap
        self.depth = depth
        self.ids: Dict[int, int] = {}
        self.counter = itertools.count(0)
        self.widen: Set[int] = widen if widen is not None else set()
        self.list_aware = list_aware

    def _ident(self, address: Optional[int]) -> int:
        if address is None:
            return next(self.counter)
        existing = self.ids.get(address)
        if existing is None:
            existing = next(self.counter)
            self.ids[address] = existing
        return existing

    def node(self, cell: Cell, depth: int, path: FrozenSet[int]) -> Node:
        heap = self.heap
        cell, address = deref(heap, cell)
        if address is not None and address in path:
            return ("i", AbsSort.ANY, self._ident(None))
        if address is not None:
            path = path | {address}
        tag = cell[0]
        if tag == REF:
            if address in self.widen:
                return ("i", AbsSort.ANY, self._ident(address))
            return ("i", AbsSort.VAR, self._ident(address))
        if tag == ABS:
            sort, elem = cell[1]  # type: ignore[misc]
            if sort == AbsSort.LIST:
                assert elem is not None
                return ("li", clip_tree(elem, depth - 1), self._ident(address))
            return ("i", sort, self._ident(address))
        if tag == CON:
            if not self.list_aware and cell[1] == NIL:
                # Without list awareness [] is just an atom.
                return ("i", AbsSort.ATOM, self._ident(address))
            leaf = _constant_leaf_tree(cell[1])
            if leaf[0] == "l":
                return ("li", leaf[1], self._ident(address))
            return ("i", leaf[1], self._ident(address))
        if depth <= 0:
            summary = cell_summary(heap, cell)
            if summary == AbsSort.VAR and address in self.widen:
                summary = AbsSort.ANY
            return ("i", summary, self._ident(address))
        if tag == LIS:
            proper, elements, tail_elem = (
                _walk_spine(heap, cell, set(path))
                if self.list_aware
                else (False, [], None)
            )
            if proper:
                elem = tail_elem if tail_elem is not None else EMPTY_T
                for element in elements:
                    elem = tree_lub(
                        elem,
                        tree_of_cell(
                            heap, element, depth - 1, set(path), self.widen
                        ),
                    )
                return ("li", elem, self._ident(address))
            head_cell = _slot(heap, cell[1])  # type: ignore[arg-type]
            tail_cell = _slot(heap, cell[1] + 1)  # type: ignore[arg-type]
            return (
                "f",
                ".",
                2,
                (
                    self.node(head_cell, depth - 1, path),
                    self.node(tail_cell, depth - 1, path),
                ),
            )
        assert tag == STR
        name, arity = heap.cells[cell[1]][1]  # type: ignore[index]
        args = tuple(
            self.node(_slot(heap, cell[1] + 1 + i), depth - 1, path)  # type: ignore[arg-type]
            for i in range(arity)
        )
        return ("f", name, arity, args)


def abstract_cells(
    heap: Heap,
    cells: List[Cell],
    depth: int = DEFAULT_DEPTH,
    list_aware: bool = True,
) -> Pattern:
    """Abstract an argument tuple into a canonical pattern.

    With ``list_aware=False`` (the ablation of the paper's α-list type),
    proper lists are kept as depth-limited cons structures and ``[]`` is a
    plain atom — the precision the paper calls "usually very useful" goes
    away, measurably.
    """
    widen = _survey_hidden_aliases(heap, cells) if list_aware else set()
    abstractor = _Abstractor(heap, depth, widen, list_aware=list_aware)
    nodes = tuple(
        abstractor.node(cell, depth, frozenset()) for cell in cells
    )
    return canonicalize(Pattern(nodes))


# ----------------------------------------------------------------------
# Materialization: pattern -> fresh heap cells.

def materialize_pattern(heap: Heap, pattern: Pattern) -> List[Cell]:
    """Build fresh cells shaped like ``pattern``, honoring shared ids."""
    memo: Dict[int, Cell] = {}

    def build(node: Node) -> Cell:
        kind = node[0]
        if kind == "i":
            sort, ident = node[1], node[2]
            cached = memo.get(ident)
            if cached is None:
                if sort == AbsSort.VAR:
                    cached = heap.new_var()
                elif sort == AbsSort.EMPTY:
                    raise AnalysisError("cannot materialize empty instance")
                else:
                    cached = make_abs(heap, sort)
                memo[ident] = cached
            return cached
        if kind == "li":
            elem, ident = node[1], node[2]
            cached = memo.get(ident)
            if cached is None:
                if elem == EMPTY_T:
                    cached = (CON, NIL)
                else:
                    cached = make_abs(heap, AbsSort.LIST, elem)
                memo[ident] = cached
            return cached
        assert kind == "f"
        name, arity, arg_nodes = node[1], node[2], node[3]
        children = [build(child) for child in arg_nodes]
        if name == "." and arity == 2:
            address = heap.top
            heap.cells.extend(children)
            return (LIS, address)
        from ..wam.cells import FUN

        functor_address = heap.push((FUN, (name, arity)))
        heap.cells.extend(children)
        return (STR, functor_address)

    return [build(node) for node in pattern.args]


# ----------------------------------------------------------------------
# Lub, canonicalization and inspection.

def node_to_tree(node: Node) -> Tree:
    kind = node[0]
    if kind == "i":
        return ("s", node[1])
    if kind == "li":
        return ("l", node[1])
    return ("f", node[1], node[2], tuple(node_to_tree(n) for n in node[3]))


def tree_to_node(tree: Tree, counter) -> Node:
    kind = tree[0]
    if kind == "s":
        return ("i", tree[1], next(counter))
    if kind == "l":
        return ("li", tree[1], next(counter))
    return (
        "f",
        tree[1],
        tree[2],
        tuple(tree_to_node(arg, counter) for arg in tree[3]),
    )


def pattern_to_trees(pattern: Pattern) -> Tuple[Tree, ...]:
    return tuple(node_to_tree(node) for node in pattern.args)


def canonicalize(pattern: Pattern) -> Pattern:
    """Renumber instance ids in first-occurrence (DFS) order.

    Ground nodes always get a fresh id: a ground term cannot be
    further instantiated, so must-aliasing between ground positions
    constrains nothing — keeping it would let two semantically
    identical patterns (one annotating ground sharing, one not)
    canonicalize to different values.
    """
    from ..domain.lattice import tree_is_ground

    mapping: Dict[int, int] = {}
    next_free = itertools.count()

    def renumber(node: Node) -> Node:
        kind = node[0]
        if kind in ("i", "li"):
            if tree_is_ground(node_to_tree(node)):
                return (kind, node[1], next(next_free))
            ident = node[2]
            new = mapping.get(ident)
            if new is None:
                new = next(next_free)
                mapping[ident] = new
            return (kind, node[1], new)
        return ("f", node[1], node[2], tuple(renumber(n) for n in node[3]))

    return Pattern(tuple(renumber(node) for node in pattern.args))


def pattern_lub(a: Pattern, b: Pattern) -> Pattern:
    """Least upper bound of two patterns.

    Equal argument nodes keep their sharing; differing arguments take the
    tree lub with fresh (unshared) instances — must-aliasing survives only
    where both patterns agree, the sound direction.
    """
    if a == b:
        return a
    if len(a.args) != len(b.args):
        raise AnalysisError("pattern arity mismatch in lub")
    counter = itertools.count(10_000_000)  # fresh ids; canonicalized below
    nodes: List[Node] = []
    for node_a, node_b in zip(a.args, b.args):
        if node_a == node_b:
            nodes.append(node_a)
        else:
            merged = tree_lub(node_to_tree(node_a), node_to_tree(node_b))
            nodes.append(tree_to_node(merged, counter))
    return canonicalize(Pattern(tuple(nodes)))


def pattern_leq(a: Pattern, b: Pattern) -> bool:
    """Order on patterns ignoring sharing (tree inclusion pointwise)."""
    from ..domain.lattice import tree_leq

    if len(a.args) != len(b.args):
        return False
    return all(
        tree_leq(x, y)
        for x, y in zip(pattern_to_trees(a), pattern_to_trees(b))
    )


def _collect_ids(node: Node, into: List[int]) -> None:
    kind = node[0]
    if kind in ("i", "li"):
        into.append(node[2])
    else:
        for child in node[3]:
            _collect_ids(child, into)


def pattern_subsumes(general: Pattern, specific: Pattern) -> bool:
    """Is every call covered by ``specific`` also covered by ``general``?

    Sound criterion for subsumption-based table reuse: the general
    pattern must make no aliasing demands (sharing in a calling pattern
    *shrinks* its concretization, so an aliased summary may be unsound
    for unaliased calls) and the specific pattern's type trees must be
    pointwise below the general one's.
    """
    if len(general.args) != len(specific.args):
        return False
    ids: List[int] = []
    for node in general.args:
        _collect_ids(node, ids)
    if len(ids) != len(set(ids)):
        return False  # the general pattern demands aliasing
    return pattern_leq(specific, general)


def share_pairs(pattern: Pattern) -> FrozenSet[Tuple[int, int]]:
    """Argument index pairs that share at least one abstract instance."""
    by_id: Dict[int, Set[int]] = {}
    for index, node in enumerate(pattern.args):
        ids: List[int] = []
        _collect_ids(node, ids)
        for ident in ids:
            by_id.setdefault(ident, set()).add(index)
    pairs: Set[Tuple[int, int]] = set()
    for positions in by_id.values():
        ordered = sorted(positions)
        for i, left in enumerate(ordered):
            for right in ordered[i + 1 :]:
                pairs.add((left, right))
    return frozenset(pairs)


def pattern_to_text(pattern: Pattern) -> str:
    """Paper-style rendering with subscripts for shared instances."""
    counts: Dict[int, int] = {}

    def count(node: Node) -> None:
        if node[0] in ("i", "li"):
            counts[node[2]] = counts.get(node[2], 0) + 1
        else:
            for child in node[3]:
                count(child)

    for node in pattern.args:
        count(node)

    def render(node: Node) -> str:
        kind = node[0]
        if kind == "i":
            base = tree_to_text(("s", node[1]))
        elif kind == "li":
            base = tree_to_text(("l", node[1]))
        else:
            name, arity, children = node[1], node[2], node[3]
            inner = ", ".join(render(child) for child in children)
            if name == "." and arity == 2:
                return f"[{render(children[0])}|{render(children[1])}]"
            return f"{name}({inner})"
        if counts.get(node[2], 0) > 1:
            return f"{base}_{node[2]}"
        return base

    return "(" + ", ".join(render(node) for node in pattern.args) + ")"


def collect_share_points(heap: Heap, cell: Cell, into: Set[int]) -> None:
    """Addresses of possibly-unbound cells reachable from ``cell``.

    Ground cells are excluded — sharing a ground subterm cannot transmit
    bindings.  Summarized lists with non-ground elements count as one
    share point (their elements are not individually addressable).
    """
    cell, address = deref(heap, cell)
    tag = cell[0]
    if tag == REF:
        into.add(address)  # type: ignore[arg-type]
        return
    if tag == ABS:
        sort, elem = cell[1]  # type: ignore[misc]
        if sort == AbsSort.LIST:
            if not tree_is_ground(elem):
                into.add(address)  # type: ignore[arg-type]
            return
        if not sort_is_ground(sort):
            into.add(address)  # type: ignore[arg-type]
        return
    if tag == CON:
        return
    if address is not None and address in into:
        return  # already visited through another path
    if tag == LIS:
        collect_share_points(heap, _slot(heap, cell[1]), into)  # type: ignore[arg-type]
        collect_share_points(heap, _slot(heap, cell[1] + 1), into)  # type: ignore[arg-type]
        return
    if tag == STR:
        _, arity = heap.cells[cell[1]][1]  # type: ignore[index]
        for offset in range(arity):
            collect_share_points(heap, _slot(heap, cell[1] + 1 + offset), into)  # type: ignore[arg-type]


def cell_share_pairs(heap: Heap, cells) -> FrozenSet[Tuple[int, int]]:
    """Argument pairs that reach a common possibly-unbound cell.

    Richer than :func:`share_pairs` on the abstracted pattern: sharing
    *through summarized list elements* is invisible in the pattern (the
    hidden-alias widening keeps the types sound but drops the pair), yet
    clients like the And-Parallelism annotator need it.  Addresses are
    compared modulo the heap's sharing component, which records aliasing
    introduced by re-materialized summaries (list growth, success
    patterns).
    """
    reached: Dict[int, Set[int]] = {}
    for index, cell in enumerate(cells):
        points: Set[int] = set()
        collect_share_points(heap, cell, points)
        for point in points:
            reached.setdefault(heap.share_find(point), set()).add(index)
    pairs: Set[Tuple[int, int]] = set()
    for indexes in reached.values():
        ordered = sorted(indexes)
        for i, left in enumerate(ordered):
            for right in ordered[i + 1 :]:
                pairs.add((left, right))
    return frozenset(pairs)
