"""Analysis results: modes, types and aliasing per predicate.

:class:`AnalysisResult` wraps the final extension table with the
derived dataflow facts a compiler client wants:

* per argument: the lubbed *call type* (what the argument looks like at
  every call) and *success type* (after success), plus a conventional
  mode symbol: ``+`` definitely instantiated at call, ``-`` definitely a
  free variable, ``?`` unknown, with ``g`` appended when ground;
* per predicate: possible aliasing between argument positions on call and
  on success (must-aliasing from patterns, may-aliasing accumulated over
  lubbed success patterns);
* whether any call of the predicate can succeed at all (empty success =
  the analysis proved failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..domain.lattice import (
    EMPTY_T,
    Tree,
    tree_is_ground,
    tree_leq,
    tree_lub,
    tree_to_text,
    GROUND_T,
    NV_T,
    VAR_T,
)
from ..prolog.terms import Indicator, format_indicator
from ..wam.compile import CompiledProgram
from .patterns import Pattern, pattern_to_trees, share_pairs
from .table import ExtensionTable, TableEntry


@dataclass
class ArgumentInfo:
    """Dataflow facts for one argument position (0-based)."""

    position: int
    call_type: Tree
    success_type: Optional[Tree]

    @property
    def mode(self) -> str:
        """Conventional mode symbol: ``+``/``-``/``?`` (+``g`` if ground)."""
        if tree_leq(self.call_type, VAR_T):
            return "-"
        if tree_is_ground(self.call_type):
            return "+g"
        if tree_leq(self.call_type, NV_T):
            return "+"
        return "?"

    def to_text(self) -> str:
        success = (
            tree_to_text(self.success_type)
            if self.success_type is not None
            else "fail"
        )
        return f"{self.mode}:{tree_to_text(self.call_type)}->{success}"


@dataclass
class PredicateInfo:
    """Aggregated facts for one predicate."""

    indicator: Indicator
    calling_patterns: List[Pattern]
    success_patterns: List[Optional[Pattern]]
    arguments: List[ArgumentInfo]
    call_aliasing: FrozenSet[Tuple[int, int]]
    success_aliasing: FrozenSet[Tuple[int, int]]
    #: "exact" normally; "degraded"/"failed" when any of this predicate's
    #: table entries was widened to ⊤ after an interrupted exploration.
    status: str = "exact"

    @property
    def can_succeed(self) -> bool:
        return any(pattern is not None for pattern in self.success_patterns)

    def to_text(self) -> str:
        name = format_indicator(self.indicator)
        if not self.arguments:
            status = "succeeds" if self.can_succeed else "fails"
            if self.status != "exact":
                status += f" ({self.status})"
            return f"{name}: {status}"
        parts = ", ".join(arg.to_text() for arg in self.arguments)
        line = f"{name}({parts})"
        notes = []
        if self.status != "exact":
            notes.append(self.status)
        if self.call_aliasing:
            pairs = ",".join(f"{i + 1}~{j + 1}" for i, j in sorted(self.call_aliasing))
            notes.append(f"call-alias {pairs}")
        if self.success_aliasing:
            pairs = ",".join(
                f"{i + 1}~{j + 1}" for i, j in sorted(self.success_aliasing)
            )
            notes.append(f"may-alias {pairs}")
        if not self.can_succeed:
            notes.append("never succeeds")
        if notes:
            line += "   % " + "; ".join(notes)
        return line


@dataclass
class AnalysisResult:
    """The outcome of one fixpoint analysis."""

    table: ExtensionTable
    compiled: CompiledProgram
    entries: Sequence[object]
    iterations: int
    instructions_executed: int
    seconds: float
    depth: int
    #: One repro.analysis.driver.EntryReport per entry spec, recording
    #: whether the spec's analysis was exact, degraded or failed.
    entry_reports: Sequence[object] = ()
    _info: Dict[Indicator, PredicateInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def status(self) -> str:
        """Overall status: the worst status among the entry specs
        (``"exact"`` when every spec reached its fixpoint untripped)."""
        from ..robust import worse_status

        status = "exact"
        for report in self.entry_reports:
            status = worse_status(status, report.status)
        return status

    def predicate_status(self, indicator: Indicator) -> str:
        """Per-predicate status: worst among the predicate's table
        entries (``"exact"`` for predicates the table never saw)."""
        return self.table.worst_status(indicator)

    def degraded_predicates(self) -> List[Indicator]:
        """Predicates whose facts were widened to ⊤ (non-exact)."""
        return [
            indicator
            for indicator in self.predicates()
            if self.table.worst_status(indicator) != "exact"
        ]

    def predicates(self) -> List[Indicator]:
        """Analyzed predicates, excluding synthetic query stubs."""
        return [
            indicator
            for indicator in self.table.predicates()
            if not indicator[0].startswith("$query")
        ]

    def predicate(self, indicator: Indicator) -> Optional[PredicateInfo]:
        """Aggregated dataflow facts for one predicate (cached)."""
        cached = self._info.get(indicator)
        if cached is not None:
            return cached
        entries = self.table.entries_for(indicator)
        if not entries:
            return None
        info = self._aggregate(indicator, entries)
        self._info[indicator] = info
        return info

    def _aggregate(
        self, indicator: Indicator, entries: List[TableEntry]
    ) -> PredicateInfo:
        arity = indicator[1]
        call_types: List[Optional[Tree]] = [None] * arity
        success_types: List[Optional[Tree]] = [None] * arity
        call_alias: set = set()
        success_alias: set = set()
        for entry in entries:
            call_alias |= share_pairs(entry.calling)
            for position, tree in enumerate(pattern_to_trees(entry.calling)):
                existing = call_types[position]
                call_types[position] = (
                    tree if existing is None else tree_lub(existing, tree)
                )
            if entry.success is None:
                continue
            success_alias |= entry.may_share
            for position, tree in enumerate(pattern_to_trees(entry.success)):
                existing = success_types[position]
                success_types[position] = (
                    tree if existing is None else tree_lub(existing, tree)
                )
        arguments = [
            ArgumentInfo(
                position=index,
                call_type=call_types[index] if call_types[index] is not None else EMPTY_T,
                success_type=success_types[index],
            )
            for index in range(arity)
        ]
        from ..robust import worse_status

        status = "exact"
        for entry in entries:
            status = worse_status(status, entry.status)
        return PredicateInfo(
            indicator=indicator,
            calling_patterns=[entry.calling for entry in entries],
            success_patterns=[entry.success for entry in entries],
            arguments=arguments,
            call_aliasing=frozenset(call_alias),
            success_aliasing=frozenset(success_alias),
            status=status,
        )

    # ------------------------------------------------------------------

    def modes(self, indicator: Indicator) -> List[str]:
        """Mode symbols per argument, e.g. ``['+g', '-']``."""
        info = self.predicate(indicator)
        if info is None:
            return []
        return [argument.mode for argument in info.arguments]

    def call_types(self, indicator: Indicator) -> List[Tree]:
        info = self.predicate(indicator)
        if info is None:
            return []
        return [argument.call_type for argument in info.arguments]

    def success_types(self, indicator: Indicator) -> List[Optional[Tree]]:
        info = self.predicate(indicator)
        if info is None:
            return []
        return [argument.success_type for argument in info.arguments]

    def to_text(self) -> str:
        """The full report: header, one line per predicate, the table."""
        lines = [
            f"% analysis: {self.iterations} iteration(s), "
            f"{self.instructions_executed} abstract WAM instructions, "
            f"{self.seconds * 1000.0:.2f} ms, depth {self.depth}",
        ]
        if self.status != "exact":
            degraded = [
                f"{report.spec} {report.status}"
                + (f" ({report.reason})" if report.reason else "")
                for report in self.entry_reports
                if report.status != "exact"
            ]
            lines.append(
                "% status: "
                + self.status
                + " — precision lost for: "
                + "; ".join(degraded)
            )
        for indicator in sorted(self.predicates()):
            info = self.predicate(indicator)
            assert info is not None
            lines.append(info.to_text())
        return "\n".join(lines)

    def table_text(self) -> str:
        """The raw (calling, success) pattern pairs."""
        return self.table.to_text()

    def to_dict(self) -> dict:
        """A JSON-serializable view of the analysis (for tooling)."""
        predicates = {}
        for indicator in sorted(self.predicates()):
            info = self.predicate(indicator)
            assert info is not None
            predicates[format_indicator(indicator)] = {
                "modes": [argument.mode for argument in info.arguments],
                "call_types": [
                    tree_to_text(argument.call_type)
                    for argument in info.arguments
                ],
                "success_types": [
                    tree_to_text(argument.success_type)
                    if argument.success_type is not None
                    else None
                    for argument in info.arguments
                ],
                "can_succeed": info.can_succeed,
                "call_aliasing": sorted(
                    [list(pair) for pair in info.call_aliasing]
                ),
                "may_alias": sorted(
                    [list(pair) for pair in info.success_aliasing]
                ),
                "calling_patterns": [
                    str(pattern) for pattern in info.calling_patterns
                ],
                "status": info.status,
            }
        return {
            "iterations": self.iterations,
            "instructions_executed": self.instructions_executed,
            "seconds": self.seconds,
            "depth": self.depth,
            "status": self.status,
            "entry_reports": [
                report.to_dict() for report in self.entry_reports
            ],
            "predicates": predicates,
        }

    def stable_dict(self) -> dict:
        """:meth:`to_dict` minus everything that varies between two runs
        that proved the same dataflow facts: timing, pass and instruction
        counts, and the raw calling-pattern list.  The last one is
        exploration *history*, not a fact — the monolithic driver keeps
        transient patterns recorded before the fixpoint converged (e.g. a
        call seen only while a callee's success was still ⊥-ish), while
        the SCC-scheduled run restricts its table to fixpoint-reachable
        entries.  The per-argument lattice aggregates (modes, call and
        success types, aliasing, can_succeed) coincide either way, by
        monotonicity: every transient pattern and its recorded success
        are ⊑ some surviving final entry, so they never move a lub.
        This is the form the serve cache stores and compares."""
        data = self.to_dict()
        del data["seconds"]
        del data["iterations"]
        del data["instructions_executed"]
        for report in data["entry_reports"]:
            del report["iterations"]
        for info in data["predicates"].values():
            del info["calling_patterns"]
        return data
