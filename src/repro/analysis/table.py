"""The extension table (paper Sections 2.2 and 5).

A memo structure mapping (predicate, calling pattern) to the lubbed success
pattern found so far, with per-iteration *explored* marks.  Multiple calling
patterns are kept per predicate; the success patterns of one calling
pattern are summarized by least upper bound, so every invocation returns
deterministically (at most one success pattern), exactly as the paper
prescribes.

The ``changes`` counter increases whenever an update actually changes the
table; the fixpoint driver iterates until one whole pass leaves it
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..prolog.terms import Indicator, format_indicator
from .patterns import Pattern, pattern_lub, share_pairs


@dataclass
class TableEntry:
    """State of one calling pattern."""

    calling: Pattern
    success: Optional[Pattern] = None
    #: argument-position pairs that may share on success (union over all
    #: summarized success patterns).
    may_share: FrozenSet[Tuple[int, int]] = frozenset()
    #: iteration in which this pattern was last explored (0 = never).
    explored_iteration: int = 0
    #: how many times updateET changed this entry (diagnostics).
    updates: int = 0


class ExtensionTable:
    """The global memo table of the analysis."""

    def __init__(self) -> None:
        self._entries: Dict[Indicator, Dict[Pattern, TableEntry]] = {}
        self.changes = 0
        self.lookups = 0
        self.updates = 0

    # ------------------------------------------------------------------

    def entry(self, indicator: Indicator, calling: Pattern) -> TableEntry:
        """The entry for a calling pattern, created on first use."""
        by_pattern = self._entries.setdefault(indicator, {})
        entry = by_pattern.get(calling)
        if entry is None:
            entry = TableEntry(calling)
            by_pattern[calling] = entry
            self.changes += 1
        return entry

    def find(self, indicator: Indicator, calling: Pattern) -> Optional[TableEntry]:
        self.lookups += 1
        by_pattern = self._entries.get(indicator)
        if by_pattern is None:
            return None
        return by_pattern.get(calling)

    def update(
        self,
        indicator: Indicator,
        calling: Pattern,
        success: Pattern,
        extra_share=frozenset(),
    ) -> bool:
        """``updateET``: lub a new success pattern in; True if it changed.

        ``extra_share`` carries may-share pairs the pattern itself cannot
        express (sharing through summarized list elements).
        """
        self.updates += 1
        entry = self.entry(indicator, calling)
        new_share = entry.may_share | share_pairs(success) | extra_share
        if entry.success is None:
            merged = success
        else:
            merged = pattern_lub(entry.success, success)
        changed = merged != entry.success or new_share != entry.may_share
        if changed:
            entry.success = merged
            entry.may_share = new_share
            entry.updates += 1
            self.changes += 1
        return changed

    # ------------------------------------------------------------------

    def predicates(self) -> List[Indicator]:
        return list(self._entries.keys())

    def entries_for(self, indicator: Indicator) -> List[TableEntry]:
        return list(self._entries.get(indicator, {}).values())

    def all_entries(self) -> Iterator[Tuple[Indicator, TableEntry]]:
        for indicator, by_pattern in self._entries.items():
            for entry in by_pattern.values():
                yield indicator, entry

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def to_text(self) -> str:
        """A human-readable dump, one line per (calling, success) pair."""
        lines: List[str] = []
        for indicator, entry in self.all_entries():
            name = format_indicator(indicator)
            success = str(entry.success) if entry.success is not None else "FAIL"
            lines.append(f"{name}{entry.calling} -> {success}")
        return "\n".join(lines)
