"""The extension table (paper Sections 2.2 and 5).

A memo structure mapping (predicate, calling pattern) to the lubbed success
pattern found so far, with per-iteration *explored* marks.  Multiple calling
patterns are kept per predicate; the success patterns of one calling
pattern are summarized by least upper bound, so every invocation returns
deterministically (at most one success pattern), exactly as the paper
prescribes.

The ``changes`` counter increases whenever an update actually changes the
table; the fixpoint driver iterates until one whole pass leaves it
untouched.

Resource governance (see :mod:`repro.robust`): a table may carry a
``budget`` (its growth charges the ``table`` dimension) and a
``fault_plan`` (every ``updateET`` fires the ``table`` site).  Each entry
carries a ``status`` — ``exact`` normally, ``degraded`` once the entry
has been widened to ⊤ because its exploration was interrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..prolog.terms import Indicator, format_indicator
from .patterns import Pattern, pattern_lub, share_pairs


@dataclass
class TableEntry:
    """State of one calling pattern."""

    calling: Pattern
    success: Optional[Pattern] = None
    #: argument-position pairs that may share on success (union over all
    #: summarized success patterns).
    may_share: FrozenSet[Tuple[int, int]] = frozenset()
    #: iteration in which this pattern was last explored (0 = never).
    explored_iteration: int = 0
    #: how many times updateET changed this entry (diagnostics).
    updates: int = 0
    #: "exact" normally; "degraded" once widened to ⊤ after an
    #: interrupted exploration (see repro.robust).
    status: str = "exact"
    #: Frozen entries are known-final summaries (seeded from the result
    #: store or stabilized bottom-up by the SCC scheduler): the abstract
    #: machine treats them as explored in *every* pass and never re-runs
    #: their clauses.  Normal runs never set this (see repro.serve).
    frozen: bool = False


class ExtensionTable:
    """The global memo table of the analysis."""

    def __init__(self, budget=None, fault_plan=None, metrics=None) -> None:
        self._entries: Dict[Indicator, Dict[Pattern, TableEntry]] = {}
        self.changes = 0
        self.lookups = 0
        self.updates = 0
        #: Lubs that strictly grew an existing success summary (the
        #: widening steps of the fixpoint).  Kept as a plain counter —
        #: like ``changes`` — so state dumps (docs/tracing.md) can show
        #: it without a metrics registry.
        self.widenings = 0
        self.size = 0
        #: Optional repro.robust.Budget charged for table growth.
        self.budget = budget
        #: Optional repro.robust.FaultPlan fired on every update.
        self.fault_plan = fault_plan
        #: When a set, every key that ``find`` hits or ``entry`` touches
        #: is recorded — the reachability trace used by
        #: :meth:`restrict_to` (see repro.serve.scheduler).
        self.touched: Optional[set] = None
        #: repro.obs: the hot-site counters are bound once here, so the
        #: per-lookup cost with metrics on is one attribute increment.
        #: With metrics off (the default) each site is one None check.
        if metrics is not None:
            self._m_lookups = metrics.counter("table.lookups")
            self._m_hits = metrics.counter("table.hits")
            self._m_misses = metrics.counter("table.misses")
            self._m_updates = metrics.counter("table.updates")
            self._m_widenings = metrics.counter("table.widenings")
            self._m_created = metrics.counter("table.entries.created")
            self._m_frozen = metrics.counter("table.entries.frozen")
            self._m_thawed = metrics.counter("table.entries.thawed")
        else:
            self._m_lookups = None
            self._m_hits = None
            self._m_misses = None
            self._m_updates = None
            self._m_widenings = None
            self._m_created = None
            self._m_frozen = None
            self._m_thawed = None

    def disarm(self) -> None:
        """Drop the governor hooks (used before sound widening, which
        must never trip a budget or fire a fault itself)."""
        self.budget = None
        self.fault_plan = None

    # ------------------------------------------------------------------

    def entry(self, indicator: Indicator, calling: Pattern) -> TableEntry:
        """The entry for a calling pattern, created on first use."""
        by_pattern = self._entries.setdefault(indicator, {})
        entry = by_pattern.get(calling)
        if entry is None:
            if self.budget is not None:
                self.budget.charge_table(self.size + 1)
            entry = TableEntry(calling)
            by_pattern[calling] = entry
            self.size += 1
            self.changes += 1
            if self._m_created is not None:
                self._m_created.inc()
        if self.touched is not None:
            self.touched.add((indicator, calling))
        return entry

    def find(self, indicator: Indicator, calling: Pattern) -> Optional[TableEntry]:
        self.lookups += 1
        by_pattern = self._entries.get(indicator)
        entry = by_pattern.get(calling) if by_pattern is not None else None
        if self._m_lookups is not None:
            self._m_lookups.inc()
            (self._m_misses if entry is None else self._m_hits).inc()
        if entry is not None and self.touched is not None:
            self.touched.add((indicator, calling))
        return entry

    def update(
        self,
        indicator: Indicator,
        calling: Pattern,
        success: Pattern,
        extra_share=frozenset(),
    ) -> bool:
        """``updateET``: lub a new success pattern in; True if it changed.

        ``extra_share`` carries may-share pairs the pattern itself cannot
        express (sharing through summarized list elements).
        """
        if self.fault_plan is not None:
            self.fault_plan.fire("table")
        self.updates += 1
        if self._m_updates is not None:
            self._m_updates.inc()
        entry = self.entry(indicator, calling)
        new_share = entry.may_share | share_pairs(success) | extra_share
        if entry.success is None:
            merged = success
        else:
            merged = pattern_lub(entry.success, success)
        success_changed = merged != entry.success
        changed = success_changed or new_share != entry.may_share
        if changed:
            # A lub that strictly grew an existing summary is a widening
            # step of the fixpoint (table.widenings); first successes and
            # share-only growth are not.
            if entry.success is not None and success_changed:
                self.widenings += 1
                if self._m_widenings is not None:
                    self._m_widenings.inc()
            entry.success = merged
            entry.may_share = new_share
            entry.updates += 1
            self.changes += 1
        return changed

    # ------------------------------------------------------------------
    # Robustness: sound widening and cross-table merging.

    def widen_to_top(self, status: str = "degraded") -> None:
        """Widen every entry to ⊤ and stamp ``status`` (sound degradation).

        Called after an interrupted fixpoint: any recorded summary may be
        an under-approximation that further passes would still have
        grown, so the only sound summary left per entry is "may succeed
        with anything, aliasing anything".  Bypasses the governor hooks —
        degrading must never itself trip a budget.
        """
        from ..robust import widen_entry_to_top

        self.disarm()
        for indicator, entry in self.all_entries():
            widen_entry_to_top(indicator, entry, status)

    def merge(self, other: "ExtensionTable") -> None:
        """Lub ``other``'s entries into this table (used to combine the
        isolated per-entry-spec tables into the final result table).

        Successes lub, may-share unions, statuses take the worse value;
        the diagnostics counters accumulate.  Soundness: the lub of two
        sound summaries over-approximates both.
        """
        from ..robust import worse_status

        for indicator, entry in other.all_entries():
            mine = self.entry(indicator, entry.calling)
            if entry.success is not None:
                if mine.success is None:
                    mine.success = entry.success
                else:
                    mine.success = pattern_lub(mine.success, entry.success)
            mine.may_share = mine.may_share | entry.may_share
            mine.updates += entry.updates
            mine.status = worse_status(mine.status, entry.status)
        self.changes += other.changes
        self.lookups += other.lookups
        self.updates += other.updates
        self.widenings += other.widenings

    # ------------------------------------------------------------------
    # Serving: seeding from cached summaries, freezing, reachability.
    # (Used by repro.serve; a table never seeded behaves exactly as
    # before — frozen stays False and touched stays None.)

    def seed(
        self,
        indicator: Indicator,
        calling: Pattern,
        success: Optional[Pattern],
        may_share: FrozenSet[Tuple[int, int]] = frozenset(),
        status: str = "exact",
        frozen: bool = True,
    ) -> TableEntry:
        """Install a known-final summary (a cache hit) as a frozen entry.

        Seeding bypasses the governor hooks: reusing a cached result
        must never trip a budget.  The ``changes`` counter still
        advances, so convergence snapshots taken *after* seeding see a
        consistent baseline.
        """
        by_pattern = self._entries.setdefault(indicator, {})
        entry = by_pattern.get(calling)
        if entry is None:
            entry = TableEntry(calling)
            by_pattern[calling] = entry
            self.size += 1
            self.changes += 1
        entry.success = success
        entry.may_share = may_share
        entry.status = status
        if frozen and not entry.frozen and self._m_frozen is not None:
            self._m_frozen.inc()
        entry.frozen = frozen
        return entry

    def freeze(self, entry: TableEntry) -> None:
        """Mark one entry as a known-final summary."""
        if not entry.frozen:
            entry.frozen = True
            if self._m_frozen is not None:
                self._m_frozen.inc()

    def thaw(self) -> None:
        """Clear every frozen mark (before a full verification sweep)."""
        for _, entry in self.all_entries():
            if entry.frozen:
                entry.frozen = False
                if self._m_thawed is not None:
                    self._m_thawed.inc()

    def begin_touch_trace(self) -> set:
        """Start recording touched keys; returns the live set."""
        self.touched = set()
        return self.touched

    def end_touch_trace(self) -> None:
        self.touched = None

    def restrict_to(self, keys) -> int:
        """Drop every entry whose (indicator, calling) is not in ``keys``;
        returns how many entries were dropped.  Used to discard seeded
        summaries that the current program version no longer reaches."""
        dropped = 0
        for indicator in list(self._entries):
            by_pattern = self._entries[indicator]
            for calling in list(by_pattern):
                if (indicator, calling) not in keys:
                    del by_pattern[calling]
                    dropped += 1
            if not by_pattern:
                del self._entries[indicator]
        self.size -= dropped
        return dropped

    def worst_status(self, indicator: Indicator) -> str:
        """The most damaged status among ``indicator``'s entries
        (``"exact"`` when the predicate has no entries)."""
        from ..robust import worse_status

        status = "exact"
        for entry in self.entries_for(indicator):
            status = worse_status(status, entry.status)
        return status

    # ------------------------------------------------------------------

    def predicates(self) -> List[Indicator]:
        return list(self._entries.keys())

    def entries_for(self, indicator: Indicator) -> List[TableEntry]:
        return list(self._entries.get(indicator, {}).values())

    def all_entries(self) -> Iterator[Tuple[Indicator, TableEntry]]:
        for indicator, by_pattern in self._entries.items():
            for entry in by_pattern.values():
                yield indicator, entry

    def state_dump(self, max_entries: Optional[int] = None) -> dict:
        """A JSON-safe snapshot of the table for trace state dumps.

        One dict per entry (key, calling, success, status, updates,
        frozen) plus the aggregate counters; ``truncated`` appears when
        ``max_entries`` cut the listing.  Used by the ``--trace-states``
        time-travel view (docs/tracing.md) — never on the default path.
        """
        entries = []
        truncated = 0
        for indicator, entry in self.all_entries():
            if max_entries is not None and len(entries) >= max_entries:
                truncated += 1
                continue
            entries.append({
                "key": f"{format_indicator(indicator)}{entry.calling}",
                "calling": str(entry.calling),
                "success": (
                    str(entry.success) if entry.success is not None else None
                ),
                "status": entry.status,
                "updates": entry.updates,
                "frozen": entry.frozen,
            })
        dump = {
            "entries": entries,
            "size": self.size,
            "changes": self.changes,
            "widenings": self.widenings,
        }
        if truncated:
            dump["truncated"] = truncated
        return dump

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def to_text(self) -> str:
        """A human-readable dump, one line per (calling, success) pair."""
        lines: List[str] = []
        for indicator, entry in self.all_entries():
            name = format_indicator(indicator)
            success = str(entry.success) if entry.success is not None else "FAIL"
            lines.append(f"{name}{entry.calling} -> {success}")
        return "\n".join(lines)
