"""Baseline analyzer implementations the paper compares against.

* :mod:`.prolog_analyzer` — the meta-interpreting analyzer *written in
  Prolog* and run by the SLD solver (the Table 1 stand-in for Aquarius
  under Quintus);
* :mod:`.transform` — the Section 5 source-to-source transformation,
  executed on the SLD solver;
* :mod:`.meta` — a Python AST-level meta-interpreter over a
  copy-on-branch store; computes bit-identical fixpoint tables to the
  compiled analyzer, used for cross-validation.
"""

from .absterms import AbsStore
from .meta import MetaAnalyzer, MetaResult
from .prolog_analyzer import (
    ANALYZER_SOURCE,
    CONTROL_SOURCE,
    SUPPORT_SOURCE,
    PrologAnalyzer,
    PrologBaselineResult,
)
from .transform import TransformAnalyzer, transform_predicate, transform_program

__all__ = [
    "ANALYZER_SOURCE",
    "AbsStore",
    "CONTROL_SOURCE",
    "MetaAnalyzer",
    "MetaResult",
    "PrologAnalyzer",
    "PrologBaselineResult",
    "SUPPORT_SOURCE",
    "TransformAnalyzer",
    "transform_predicate",
    "transform_program",
]
