"""A naive, interpreter-grade abstract term store for the baselines.

The baseline analyzers (meta-interpretation and program transformation)
deliberately use the implementation style the paper argues *against*:

* abstract terms live in a node store addressed by integer ids, and every
  clause trial **copies the whole store** instead of trailing — the cost a
  Prolog-hosted analyzer pays for not having destructive update;
* unification is one general recursive procedure dispatching on term
  shapes at run time — no specialized instructions;
* terms are converted from the clause AST on every use — interpretive
  overhead on each head and body goal.

The domain itself is identical to the compiled analyzer's
(:mod:`repro.domain`), and abstraction produces the same canonical
:class:`~repro.analysis.patterns.Pattern` values, so the two
implementations can be cross-checked table against table.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..domain.lattice import EMPTY_T, Tree, tree_lub, tree_unify
from ..domain.sorts import AbsSort
from ..errors import AnalysisError
from ..prolog.terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
)
from ..analysis.patterns import Node, Pattern, canonicalize, clip_tree

#: Node values: ('var',) | ('ref', id) | ('sort', AbsSort) |
#: ('list', Tree) | ('const', constant) | ('struct', name, (ids...)).
NodeVal = tuple


class AbsStore:
    """The copy-on-branch abstract node store."""

    def __init__(self) -> None:
        self.nodes: Dict[int, NodeVal] = {}
        self._counter = itertools.count(0)
        self.copies = 0

    def copy(self) -> "AbsStore":
        """A snapshot for one clause trial (the deliberate inefficiency)."""
        snapshot = AbsStore.__new__(AbsStore)
        snapshot.nodes = dict(self.nodes)
        snapshot._counter = self._counter  # ids stay globally unique
        snapshot.copies = self.copies + 1
        return snapshot

    # ------------------------------------------------------------------

    def new_node(self, value: NodeVal) -> int:
        ident = next(self._counter)
        self.nodes[ident] = value
        return ident

    def new_var(self) -> int:
        return self.new_node(("var",))

    def walk(self, ident: int) -> Tuple[int, NodeVal]:
        value = self.nodes[ident]
        while value[0] == "ref":
            ident = value[1]
            value = self.nodes[ident]
        return ident, value

    # ------------------------------------------------------------------
    # AST conversion.

    def from_term(self, term: Term, env: Dict[int, int]) -> int:
        """Convert a clause term to nodes; ``env`` maps ``id(Var)`` to ids."""
        if isinstance(term, Var):
            ident = env.get(id(term))
            if ident is None or term.name == "_":
                ident = self.new_var()
                env[id(term)] = ident
            return ident
        if isinstance(term, (Atom, Int, Float)):
            return self.new_node(("const", term))
        assert isinstance(term, Struct)
        children = tuple(self.from_term(argument, env) for argument in term.args)
        return self.new_node(("struct", term.name, children))

    # ------------------------------------------------------------------
    # Set unification (general procedure, the interpretive path).

    def s_unify(self, left: int, right: int) -> bool:
        left, left_value = self.walk(left)
        right, right_value = self.walk(right)
        if left == right:
            return True
        if left_value[0] == "var":
            self.nodes[left] = ("ref", right)
            return True
        if right_value[0] == "var":
            self.nodes[right] = ("ref", left)
            return True
        if left_value[0] in ("sort", "list") and right_value[0] in ("sort", "list"):
            combined = tree_unify(self._tree_of_value(left_value),
                                  self._tree_of_value(right_value))
            if combined is None:
                return False
            ident = self._node_for_tree(combined)
            self.nodes[left] = ("ref", ident)
            self.nodes[right] = ("ref", ident)
            return True
        if left_value[0] in ("sort", "list"):
            return self._unify_abs_concrete(left, left_value, right, right_value)
        if right_value[0] in ("sort", "list"):
            return self._unify_abs_concrete(right, right_value, left, left_value)
        if left_value[0] == "const" and right_value[0] == "const":
            return left_value[1] == right_value[1]
        if left_value[0] == "struct" and right_value[0] == "struct":
            if left_value[1] != right_value[1]:
                return False
            if len(left_value[2]) != len(right_value[2]):
                return False
            return all(
                self.s_unify(a, b)
                for a, b in zip(left_value[2], right_value[2])
            )
        return False

    def _tree_of_value(self, value: NodeVal) -> Tree:
        if value[0] == "sort":
            return ("s", value[1])
        assert value[0] == "list"
        return ("l", value[1])

    def _node_for_tree(self, tree: Tree) -> int:
        if tree[0] == "s":
            if tree[1] == AbsSort.VAR:
                return self.new_var()
            return self.new_node(("sort", tree[1]))
        if tree[0] == "l":
            if tree[1] == EMPTY_T:
                return self.new_node(("const", NIL))
            return self.new_node(("list", tree[1]))
        children = tuple(self._node_for_tree(arg) for arg in tree[3])
        return self.new_node(("struct", tree[1], children))

    def _unify_abs_concrete(
        self, abs_id: int, abs_value: NodeVal, other_id: int, other_value: NodeVal
    ) -> bool:
        abs_value_tree = self._tree_of_value(abs_value)
        if other_value[0] == "const":
            from ..analysis.aheap import constant_tree

            if tree_unify(abs_value_tree, constant_tree(other_value[1])) is None:
                return False
            self.nodes[abs_id] = other_value
            return True
        assert other_value[0] == "struct"
        name = other_value[1]
        arity = len(other_value[2])
        component: Optional[Tree]
        if abs_value[0] == "list":
            if name != "." or arity != 2:
                return False
            elem = abs_value[1]
            if elem == EMPTY_T:
                return False
            children = (
                self._node_for_tree(elem),
                self.new_node(("list", elem)),
            )
        else:
            sort = abs_value[1]
            if sort in (AbsSort.ANY, AbsSort.NV):
                component = ("s", AbsSort.ANY)
            elif sort == AbsSort.GROUND:
                component = ("s", AbsSort.GROUND)
            else:
                return False
            children = tuple(
                self._node_for_tree(component) for _ in range(arity)
            )
        self.nodes[abs_id] = ("struct", name, children)
        return all(
            self.s_unify(a, b) for a, b in zip(children, other_value[2])
        )

    # ------------------------------------------------------------------
    # Abstraction to canonical patterns.

    def _survey_hidden_aliases(self, idents: List[int]):
        """Same rule as the fast path (see
        :func:`repro.analysis.patterns._survey_hidden_aliases`): variables
        occurring inside a summarized spine with a second occurrence
        anywhere must widen to ``any``."""
        counts: Dict[int, int] = {}
        in_spine = set()
        visited = set()

        def walk(ident: int, inside: bool, path: frozenset) -> None:
            ident, value = self.walk(ident)
            if ident in path:
                return
            counts[ident] = counts.get(ident, 0) + 1
            if value[0] == "var" and inside:
                in_spine.add(ident)
            if (ident, inside) in visited and counts[ident] >= 2:
                return
            visited.add((ident, inside))
            if value[0] != "struct":
                return
            if value[1] == "." and len(value[2]) == 2:
                proper, elements, _ = self._walk_spine(ident)
                if proper:
                    for element in elements:
                        walk(element, True, path | {ident})
                    return
            for child in value[2]:
                walk(child, inside, path | {ident})

        for ident in idents:
            walk(ident, False, frozenset())
        return {i for i in in_spine if counts.get(i, 0) >= 2}

    def abstract(self, idents: List[int], depth: int) -> Pattern:
        mapping: Dict[int, int] = {}
        counter = itertools.count(0)
        widen = self._survey_hidden_aliases(idents)

        def share_id(ident: Optional[int]) -> int:
            if ident is None:
                return next(counter)
            existing = mapping.get(ident)
            if existing is None:
                existing = next(counter)
                mapping[ident] = existing
            return existing

        def node(ident: int, k: int, path: frozenset) -> Node:
            ident, value = self.walk(ident)
            if ident in path:
                return ("i", AbsSort.ANY, share_id(None))
            path = path | {ident}
            kind = value[0]
            if kind == "var":
                if ident in widen:
                    return ("i", AbsSort.ANY, share_id(ident))
                return ("i", AbsSort.VAR, share_id(ident))
            if kind == "sort":
                return ("i", value[1], share_id(ident))
            if kind == "list":
                return ("li", clip_tree(value[1], k - 1), share_id(ident))
            if kind == "const":
                leaf = _const_leaf(value[1])
                if leaf[0] == "l":
                    return ("li", leaf[1], share_id(ident))
                return ("i", leaf[1], share_id(ident))
            assert kind == "struct"
            if k <= 0:
                summary = self._summary(ident, set())
                if summary == AbsSort.VAR and ident in widen:
                    summary = AbsSort.ANY
                return ("i", summary, share_id(ident))
            if value[1] == "." and len(value[2]) == 2:
                proper, elements, tail_elem = self._walk_spine(ident)
                if proper:
                    elem = tail_elem if tail_elem is not None else EMPTY_T
                    for element in elements:
                        elem = tree_lub(
                            elem, self.tree_of(element, k - 1, path, widen)
                        )
                    return ("li", elem, share_id(ident))
            children = tuple(node(child, k - 1, path) for child in value[2])
            return ("f", value[1], len(value[2]), children)

        nodes = tuple(node(ident, depth, frozenset()) for ident in idents)
        return canonicalize(Pattern(nodes))

    def tree_of(
        self,
        ident: int,
        depth: int,
        path: frozenset = frozenset(),
        widen=frozenset(),
    ) -> Tree:
        ident, value = self.walk(ident)
        if ident in path:
            return ("s", AbsSort.ANY)
        path = path | {ident}
        kind = value[0]
        if kind == "var":
            if ident in widen:
                return ("s", AbsSort.ANY)
            return ("s", AbsSort.VAR)
        if kind == "sort":
            return ("s", value[1])
        if kind == "list":
            return ("l", clip_tree(value[1], depth - 1))
        if kind == "const":
            return _const_leaf(value[1])
        if depth <= 0:
            return ("s", self._summary(ident, set()))
        if value[1] == "." and len(value[2]) == 2:
            proper, elements, tail_elem = self._walk_spine(ident)
            if proper:
                elem = tail_elem if tail_elem is not None else EMPTY_T
                for element in elements:
                    elem = tree_lub(
                        elem, self.tree_of(element, depth - 1, path, widen)
                    )
                return ("l", elem)
        children = tuple(
            self.tree_of(child, depth - 1, path, widen) for child in value[2]
        )
        return ("f", value[1], len(value[2]), children)

    def _walk_spine(self, ident: int):
        elements: List[int] = []
        seen = set()
        current = ident
        while True:
            current, value = self.walk(current)
            if current in seen:
                return False, elements, None
            seen.add(current)
            if value[0] == "struct" and value[1] == "." and len(value[2]) == 2:
                elements.append(value[2][0])
                current = value[2][1]
                continue
            if value[0] == "const" and value[1] == NIL:
                return True, elements, None
            if value[0] == "list":
                return True, elements, value[1]
            return False, elements, None

    def _summary(self, ident: int, visiting: set) -> AbsSort:
        ident, value = self.walk(ident)
        if ident in visiting:
            return AbsSort.NV
        visiting = visiting | {ident}
        kind = value[0]
        if kind == "var":
            return AbsSort.VAR
        if kind == "sort":
            return value[1]
        if kind == "list":
            from ..domain.lattice import tree_is_ground

            return AbsSort.GROUND if tree_is_ground(value[1]) else AbsSort.NV
        if kind == "const":
            leaf = _const_leaf(value[1])
            return AbsSort.ATOM if leaf[0] == "l" else leaf[1]
        from ..domain.sorts import sort_is_ground

        parts = [self._summary(child, visiting) for child in value[2]]
        if all(sort_is_ground(part) for part in parts):
            return AbsSort.GROUND
        return AbsSort.NV

    # ------------------------------------------------------------------

    def materialize(self, pattern: Pattern) -> List[int]:
        """Fresh nodes shaped like a pattern, honoring shared instances."""
        memo: Dict[int, int] = {}

        def build(node: Node) -> int:
            kind = node[0]
            if kind in ("i", "li"):
                cached = memo.get(node[2])
                if cached is not None:
                    return cached
                if kind == "i":
                    if node[1] == AbsSort.VAR:
                        ident = self.new_var()
                    elif node[1] == AbsSort.EMPTY:
                        raise AnalysisError("cannot materialize empty instance")
                    else:
                        ident = self.new_node(("sort", node[1]))
                else:
                    if node[1] == EMPTY_T:
                        ident = self.new_node(("const", NIL))
                    else:
                        ident = self.new_node(("list", node[1]))
                memo[node[2]] = ident
                return ident
            children = tuple(build(child) for child in node[3])
            return self.new_node(("struct", node[1], children))

        return [build(node) for node in pattern.args]


def _const_leaf(constant) -> Tree:
    if constant == NIL:
        return ("l", EMPTY_T)
    if isinstance(constant, Atom):
        return ("s", AbsSort.ATOM)
    if isinstance(constant, Int):
        return ("s", AbsSort.INTEGER)
    return ("s", AbsSort.CONST)
