"""The meta-interpreting baseline analyzer (paper Section 1).

This is the implementation style the paper benchmarks against (the
Aquarius analyzer running under Quintus Prolog): a meta-circular
interpreter that walks source clauses with a redefined (abstract)
unification procedure and an extension table, paying

* AST interpretation on every head and body goal,
* a full store copy per clause trial (no destructive update),
* linear extension-table lookups,

while computing exactly the same analysis as the compiled abstract WAM —
the two produce identical fixpoint tables, which the test suite checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.driver import EntrySpec, parse_entry_spec
from ..analysis.patterns import Pattern
from ..analysis.table import ExtensionTable
from ..domain.concrete import DEFAULT_DEPTH
from ..domain.lattice import ANY_T, INTEGER_T
from ..domain.sorts import AbsSort, sort_glb
from ..errors import AnalysisError, PrologError
from ..robust import STATUS_DEGRADED, STATUS_EXACT, Budget
from ..prolog.program import Program, normalize_program
from ..prolog.terms import (
    Atom,
    Indicator,
    Struct,
    Term,
    format_indicator,
    indicator_of,
)
from ..wam.builtins import MACHINE_BUILTIN_INDICATORS
from .absterms import AbsStore

CUT = Atom("!")

MetaBuiltinFn = Callable[["MetaAnalyzer", AbsStore, List[int]], bool]


@dataclass
class MetaResult:
    """Outcome of a baseline analysis (same table shape as the fast path)."""

    table: ExtensionTable
    iterations: int
    seconds: float
    store_copies: int
    goals_interpreted: int
    #: "exact" at a true fixpoint; "degraded" when the run was cut short
    #: and the table soundly widened to ⊤ (see repro.robust).
    status: str = "exact"

    def to_text(self) -> str:
        return self.table.to_text()


class MetaAnalyzer:
    """Source-level abstract interpreter with an extension table.

    Accepts the same governance knobs as the compiled analyzer: a shared
    :class:`~repro.robust.Budget` (one abstract *step* is charged per
    interpreted goal — the closest baseline equivalent of an abstract
    WAM instruction), an optional fault plan (wired to the extension
    table), and ``on_budget`` selecting raise-vs-degrade.  In degrade
    mode an interrupted run returns a :class:`MetaResult` whose table
    was widened to ⊤ and whose ``status`` is ``"degraded"``; in raise
    mode the same widened result rides on the exception's
    ``partial_result`` instead of being discarded.
    """

    def __init__(
        self,
        program: Union[Program, str],
        depth: int = DEFAULT_DEPTH,
        max_iterations: int = 100,
        budget: Optional[Budget] = None,
        fault_plan=None,
        on_budget: str = "raise",
        metrics=None,
    ):
        if on_budget not in ("raise", "degrade"):
            raise ValueError(
                f"on_budget must be 'raise' or 'degrade', not {on_budget!r}"
            )
        if isinstance(program, str):
            program = Program.from_text(program)
        self.program = normalize_program(program)
        self.depth = depth
        self.max_iterations = max_iterations
        self.budget = budget
        self.fault_plan = fault_plan
        self.on_budget = on_budget
        #: repro.obs: optional MetricsRegistry; each analyze() records
        #: its cost counters under baseline.*{impl=meta} so instruction
        #: -mix comparisons against the compiled path line up.
        self.metrics = metrics
        self.table = ExtensionTable(
            budget=budget, fault_plan=fault_plan, metrics=metrics
        )
        self.iteration = 0
        self.goals_interpreted = 0
        self.store_copies = 0
        self.builtins = dict(_META_BUILTINS)
        #: The budget actively charged during analyze() (never None there).
        self._budget: Optional[Budget] = None

    # ------------------------------------------------------------------

    def analyze(
        self, entries: Sequence[Union[str, Term, EntrySpec]]
    ) -> MetaResult:
        specs = [parse_entry_spec(entry) for entry in entries]
        if not specs:
            raise AnalysisError("at least one entry spec is required")
        budget = self.budget
        if budget is None:
            budget = Budget(max_iterations=self.max_iterations)
        self._budget = budget.start()
        started = time.perf_counter()
        iterations = 0
        status = STATUS_EXACT
        try:
            while True:
                budget.charge_iteration()
                iterations += 1
                before = self.table.changes
                for spec in specs:
                    self.iteration += 1
                    store = AbsStore()
                    idents = store.materialize(spec.pattern)
                    self._call(store, spec.indicator, idents)
                if self.table.changes == before:
                    break
        except AnalysisError as exc:
            # Interrupted: the partial table may under-approximate, so
            # widen it to ⊤ — sound, merely imprecise — and either
            # return it (degrade) or attach it to the exception (raise).
            status = STATUS_DEGRADED
            self.table.widen_to_top(status)
            result = self._result(iterations, started, status)
            if self.on_budget == "raise":
                exc.partial_result = result
                raise
            return result
        finally:
            self._budget = None
        return self._result(iterations, started, status)

    def _result(
        self, iterations: int, started: float, status: str
    ) -> MetaResult:
        if self.metrics is not None:
            # The instance counters are cumulative across analyze()
            # calls; ship only what this run added.
            flushed = getattr(self, "_flushed", (0, 0))
            self.metrics.counter(
                "baseline.iterations", impl="meta"
            ).inc(iterations)
            self.metrics.counter(
                "baseline.goals", impl="meta"
            ).inc(self.goals_interpreted - flushed[0])
            self.metrics.counter(
                "baseline.store_copies", impl="meta"
            ).inc(self.store_copies - flushed[1])
            self._flushed = (self.goals_interpreted, self.store_copies)
        return MetaResult(
            table=self.table,
            iterations=iterations,
            seconds=time.perf_counter() - started,
            store_copies=self.store_copies,
            goals_interpreted=self.goals_interpreted,
            status=status,
        )

    # ------------------------------------------------------------------
    # The interpreter core.

    def _call(
        self, store: AbsStore, indicator: Indicator, arg_ids: List[int]
    ) -> Optional[AbsStore]:
        calling = store.abstract(arg_ids, self.depth)
        entry = self.table.entry(indicator, calling)
        if entry.explored_iteration == self.iteration:
            return self._apply_success(store, entry, arg_ids)
        entry.explored_iteration = self.iteration
        clauses = self.program.clauses(indicator)
        if not clauses:
            raise PrologError(
                "existence_error",
                f"unknown predicate {format_indicator(indicator)}",
            )
        for clause in clauses:
            trial = store.copy()
            self.store_copies += 1
            pattern_args = trial.materialize(calling)
            env: Dict[int, int] = {}
            head_args: List[Term] = (
                list(clause.head.args) if isinstance(clause.head, Struct) else []
            )
            matched = True
            for head_term, pattern_arg in zip(head_args, pattern_args):
                head_id = trial.from_term(head_term, env)
                if not trial.s_unify(head_id, pattern_arg):
                    matched = False
                    break
            if not matched:
                continue
            final = self._body(trial, clause.body, env)
            if final is None:
                continue
            success = final.abstract(pattern_args, self.depth)
            self.table.update(indicator, calling, success)
        return self._apply_success(store, entry, arg_ids)

    def _body(
        self, store: AbsStore, goals: Sequence[Term], env: Dict[int, int]
    ) -> Optional[AbsStore]:
        for goal in goals:
            self.goals_interpreted += 1
            if self._budget is not None:
                self._budget.charge_step()
            if goal == CUT:
                continue  # sound no-op, as in the abstract WAM
            indicator = indicator_of(goal)
            arg_terms = goal.args if isinstance(goal, Struct) else ()
            arg_ids = [store.from_term(term, env) for term in arg_terms]
            builtin = self.builtins.get(indicator)
            if builtin is not None:
                if not builtin(self, store, arg_ids):
                    return None
                continue
            result = self._call(store, indicator, arg_ids)
            if result is None:
                return None
            store = result
        return store

    def _apply_success(
        self, store: AbsStore, entry, arg_ids: List[int]
    ) -> Optional[AbsStore]:
        if entry.success is None:
            return None
        success_ids = store.materialize(entry.success)
        for caller_id, success_id in zip(arg_ids, success_ids):
            if not store.s_unify(caller_id, success_id):
                return None
        return store


# ----------------------------------------------------------------------
# Abstract builtins over the node store (same semantics as
# repro.analysis.builtins, re-expressed for the baseline substrate).

def _mb_true(analyzer, store, args) -> bool:
    return True


def _mb_fail(analyzer, store, args) -> bool:
    return False


def _mb_unify(analyzer, store, args) -> bool:
    return store.s_unify(args[0], args[1])


def _mb_succeed(analyzer, store, args) -> bool:
    return True


def _mb_type_test(target: AbsSort) -> MetaBuiltinFn:
    def builtin(analyzer, store, args) -> bool:
        return sort_glb(store._summary(args[0], set()), target) != AbsSort.EMPTY

    return builtin


def _mb_var(analyzer, store, args) -> bool:
    summary = store._summary(args[0], set())
    return summary in (AbsSort.VAR, AbsSort.ANY)


def _mb_nonvar(analyzer, store, args) -> bool:
    return store._summary(args[0], set()) != AbsSort.VAR


def _mb_compound(analyzer, store, args) -> bool:
    _, value = store.walk(args[0])
    if value[0] in ("struct", "list"):
        return True  # a list instance may be a cons cell
    if value[0] in ("var", "const"):
        return False
    return value[1] in (AbsSort.ANY, AbsSort.NV, AbsSort.GROUND)


def _mb_is(analyzer, store, args) -> bool:
    if store._summary(args[1], set()) == AbsSort.VAR:
        return False
    result = store.new_node(("sort", AbsSort.INTEGER))
    return store.s_unify(args[0], result)


def _mb_arith_compare(analyzer, store, args) -> bool:
    return (
        store._summary(args[0], set()) != AbsSort.VAR
        and store._summary(args[1], set()) != AbsSort.VAR
    )


def _mb_functor(analyzer, store, args) -> bool:
    name = store.new_node(("sort", AbsSort.CONST))
    arity = store.new_node(("sort", AbsSort.INTEGER))
    return store.s_unify(args[1], name) and store.s_unify(args[2], arity)


def _mb_arg(analyzer, store, args) -> bool:
    return store._summary(args[0], set()) != AbsSort.VAR


def _mb_univ(analyzer, store, args) -> bool:
    result = store.new_node(("list", ANY_T))
    return store.s_unify(args[1], result)


def _mb_copy_term(analyzer, store, args) -> bool:
    tree = store.tree_of(args[0], analyzer.depth)
    copy_id = store._node_for_tree(tree)
    return store.s_unify(args[1], copy_id)


def _mb_compare(analyzer, store, args) -> bool:
    result = store.new_node(("sort", AbsSort.ATOM))
    return store.s_unify(args[0], result)


def _mb_atom_length(analyzer, store, args) -> bool:
    if sort_glb(store._summary(args[0], set()), AbsSort.ATOM) == AbsSort.EMPTY:
        return False
    result = store.new_node(("sort", AbsSort.INTEGER))
    return store.s_unify(args[1], result)


def _mb_name(analyzer, store, args) -> bool:
    first = store.new_node(("sort", AbsSort.CONST))
    if not store.s_unify(args[0], first):
        return False
    second = store.new_node(("list", INTEGER_T))
    return store.s_unify(args[1], second)


def _mb_output(analyzer, store, args) -> bool:
    return True


_META_BUILTINS: Dict[Indicator, MetaBuiltinFn] = {
    ("true", 0): _mb_true,
    ("fail", 0): _mb_fail,
    ("false", 0): _mb_fail,
    ("=", 2): _mb_unify,
    ("\\=", 2): _mb_succeed,
    ("==", 2): _mb_succeed,
    ("\\==", 2): _mb_succeed,
    ("@<", 2): _mb_succeed,
    ("@>", 2): _mb_succeed,
    ("@=<", 2): _mb_succeed,
    ("@>=", 2): _mb_succeed,
    ("compare", 3): _mb_compare,
    ("var", 1): _mb_var,
    ("nonvar", 1): _mb_nonvar,
    ("atom", 1): _mb_type_test(AbsSort.ATOM),
    ("number", 1): _mb_type_test(AbsSort.CONST),
    ("integer", 1): _mb_type_test(AbsSort.INTEGER),
    ("float", 1): _mb_type_test(AbsSort.CONST),
    ("atomic", 1): _mb_type_test(AbsSort.CONST),
    ("compound", 1): _mb_compound,
    ("callable", 1): _mb_type_test(AbsSort.NV),
    ("is", 2): _mb_is,
    ("=:=", 2): _mb_arith_compare,
    ("=\\=", 2): _mb_arith_compare,
    ("<", 2): _mb_arith_compare,
    (">", 2): _mb_arith_compare,
    ("=<", 2): _mb_arith_compare,
    (">=", 2): _mb_arith_compare,
    ("functor", 3): _mb_functor,
    ("arg", 3): _mb_arg,
    ("=..", 2): _mb_univ,
    ("copy_term", 2): _mb_copy_term,
    ("write", 1): _mb_output,
    ("writeq", 1): _mb_output,
    ("print", 1): _mb_output,
    ("nl", 0): _mb_output,
    ("tab", 1): _mb_output,
    ("atom_length", 2): _mb_atom_length,
    ("name", 2): _mb_name,
}

# The baseline must treat exactly the machine's builtin set as builtin.
assert set(_META_BUILTINS) == set(MACHINE_BUILTIN_INDICATORS)
