"""The Prolog-hosted baseline analyzer — the paper's actual comparison.

"To the best of our knowledge, all global dataflow analyzers for logic
programs have been implemented on top of Prolog" (Section 1).  The Table 1
baseline (the Aquarius analyzer under Quintus Prolog) is exactly that: an
abstract interpreter *written in Prolog*, paying resolution-engine prices
for every abstract unification step.

This module reproduces that implementation style faithfully: the analyzer
below is a real Prolog program (:data:`ANALYZER_SOURCE`) executed by
:class:`repro.prolog.Solver`; only the extension table lives behind a few
registered builtins (``$clause``, ``$explored``, ``$mark``, ``$update``,
``$lookup``) — the equivalent of the assert-database technique the paper
attributes to the Prolog-hosted analyzers.

The abstract domain matches Section 3 with one documented simplification:
abstract instances are ground data terms, so refinements discovered later
do not propagate to earlier occurrences (no instance aliasing).  The
result is therefore *coarser-or-equal* than the compiled analyzer's —
checked by the test suite via ``tree_leq`` — and never unsound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..analysis.driver import EntrySpec, parse_entry_spec
from ..analysis.patterns import Pattern, canonicalize, pattern_lub
from ..analysis.table import ExtensionTable
from ..domain.concrete import DEFAULT_DEPTH
from ..domain.lattice import EMPTY_T, Tree
from ..domain.sorts import AbsSort
from ..errors import AnalysisError
from ..robust import STATUS_DEGRADED, STATUS_EXACT, Budget
from ..prolog.program import Clause, Program, normalize_program
from ..prolog.solver import Solver
from ..prolog.terms import (
    NIL,
    TRUE,
    Atom,
    Float,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    is_cons,
    make_list,
)

#: The analyzer, as a Prolog program.  ``aterm/3`` is the depth-limited
#: abstraction, ``absu/3`` abstract (set) unification, ``alub/3`` the
#: least upper bound, ``ainterp/1`` the body interpreter and ``acall/1``
#: the extension-table control scheme of Section 5.
#: The control scheme and body interpreter of the Prolog-hosted
#: analyzer (Sections 2.2 and 5 expressed as a meta-interpreter).
CONTROL_SOURCE = r"""

% ---- entry ----------------------------------------------------------
analyze(Goal) :- acall(Goal), !.
analyze(_).

% ---- the control scheme (Section 5) ---------------------------------
acall(Goal) :-
    functor(Goal, F, N),
    Goal =.. [F | Args],
    abstract_args(Args, CP),
    ( '$explored'(F, N, CP) -> true
    ; '$mark'(F, N, CP),
      explore(F, N, CP)
    ),
    '$lookup'(F, N, CP, SP),
    apply_success(Args, SP).

explore(F, N, CP) :-
    materialize_args(CP, MArgs),
    '$clause'(F, N, Head, Body),
    Head =.. [F | HArgs],
    absu_args(MArgs, HArgs, RArgs),
    ainterp(Body),
    abstract_args(RArgs, SP),
    '$update'(F, N, CP, SP),
    fail.
explore(_, _, _).

% ---- the body interpreter -------------------------------------------
ainterp(true) :- !.
ainterp((A, B)) :- !, ainterp(A), ainterp(B).
ainterp(!) :- !.
ainterp(fail) :- !, fail.
ainterp(false) :- !, fail.
ainterp(X = Y) :- !, absu(X, Y, _).
ainterp(X is E) :- !, not_definite_var(E), absu(X, int, _).
ainterp(X < Y) :- !, not_definite_var(X), not_definite_var(Y).
ainterp(X > Y) :- !, not_definite_var(X), not_definite_var(Y).
ainterp(X =< Y) :- !, not_definite_var(X), not_definite_var(Y).
ainterp(X >= Y) :- !, not_definite_var(X), not_definite_var(Y).
ainterp(X =:= Y) :- !, not_definite_var(X), not_definite_var(Y).
ainterp(X =\= Y) :- !, not_definite_var(X), not_definite_var(Y).
ainterp(_ \= _) :- !.
ainterp(_ == _) :- !.
ainterp(_ \== _) :- !.
ainterp(_ @< _) :- !.
ainterp(_ @> _) :- !.
ainterp(_ @=< _) :- !.
ainterp(_ @>= _) :- !.
ainterp(compare(O, _, _)) :- !, absu(O, atom, _).
ainterp(var(X)) :- !, may_be_var(X).
ainterp(nonvar(X)) :- !, not_definite_var(X).
ainterp(atom(X)) :- !, type_possible(X, atom).
ainterp(integer(X)) :- !, type_possible(X, int).
ainterp(number(X)) :- !, type_possible(X, const).
ainterp(float(X)) :- !, type_possible(X, const).
ainterp(atomic(X)) :- !, type_possible(X, const).
ainterp(callable(X)) :- !, not_definite_var(X).
ainterp(compound(X)) :- !, may_be_compound(X).
ainterp(functor(_, F, N)) :- !, absu(F, const, _), absu(N, int, _).
ainterp(arg(N, _, _)) :- !, not_definite_var(N).
ainterp(_ =.. L) :- !, absu(L, list(any), _).
ainterp(copy_term(T, C)) :- !, aterm(T, 4, A), materialize_one(A, AI), absu(C, AI, _).
ainterp(atom_length(A, N)) :- !, type_possible(A, atom), absu(N, int, _).
ainterp(name(A, L)) :- !, absu(A, const, _), absu(L, list(int), _).
ainterp(write(_)) :- !.
ainterp(writeq(_)) :- !.
ainterp(print(_)) :- !.
ainterp(nl) :- !.
ainterp(tab(_)) :- !.
ainterp(G) :- acall(G).
"""

#: The abstract-domain support library in Prolog: ``absu/3`` (set
#: unification), ``aterm/3`` (depth-limited abstraction), ``alub/3``,
#: pattern materialization and success application.  Shared with the
#: transformation baseline.
SUPPORT_SOURCE = r"""
% ---- shared plumbing -------------------------------------------------
apply_success([], []).
apply_success([A | As], [S | Ss]) :-
    absu(A, S, _),
    apply_success(As, Ss).

absu_args([], [], []).
absu_args([A | As], [B | Bs], [R | Rs]) :-
    absu(A, B, R),
    absu_args(As, Bs, Rs).

% ---- sort tests over the data representation ------------------------
not_definite_var(X) :- var(X), !, fail.
not_definite_var(var) :- !, fail.
not_definite_var(_).

may_be_var(X) :- var(X), !.
may_be_var(var) :- !.
may_be_var(any).

may_be_compound(X) :- var(X), !, fail.
may_be_compound(any) :- !.
may_be_compound(nv) :- !.
may_be_compound(g) :- !.
may_be_compound(list(_)) :- !.
may_be_compound(X) :- simple_sort(X), !, fail.
may_be_compound(X) :- atomic(X), !, fail.
may_be_compound(_).

type_possible(X, _) :- var(X), !, fail.
type_possible(X, T) :- summary(X, S), sort_meet_ok(S, T).

sort_meet_ok(S, T) :- sort_below(S, T), !.
sort_meet_ok(S, T) :- sort_below(T, S), !.

sort_below(S, S) :- !.
sort_below(atom, const).
sort_below(int, const).
sort_below(atom, g).
sort_below(int, g).
sort_below(const, g).
sort_below(atom, nv).
sort_below(int, nv).
sort_below(const, nv).
sort_below(g, nv).
sort_below(S, any) :- S \== empty.
sort_below(empty, _).

simple_sort(any).
simple_sort(nv).
simple_sort(g).
simple_sort(const).
simple_sort(atom).
simple_sort(int).
simple_sort(var).

% ---- abstraction (term-depth restriction, Section 3/6) --------------
% A top-level free variable abstracts to 'var' only when it occurs once
% among the arguments; repeated or nested variables have aliasing this
% ground data representation cannot express, so they widen to 'any'
% (coarser than the compiled analyzer, which tracks instance sharing).
abstract_args(Args, Ps) :- aterm_top_list(Args, Args, Ps).

aterm_top_list([], _, []).
aterm_top_list([A | As], All, [P | Ps]) :-
    aterm_top(A, All, P),
    aterm_top_list(As, All, Ps).

aterm_top(T, All, R) :- var(T), !,
    ( var_occurs_twice(T, All) -> R = any ; R = var ).
aterm_top(T, _, R) :- aterm(T, 4, R).

var_occurs_twice(V, All) :- count_var(All, V, 0, N), N >= 2.

count_var(T, V, N0, N) :- var(T), !, ( T == V -> N is N0 + 1 ; N = N0 ).
count_var(T, _, N, N) :- atomic(T), !.
count_var(T, V, N0, N) :- T =.. [_ | As], count_var_list(As, V, N0, N).

count_var_list([], _, N, N).
count_var_list([T | Ts], V, N0, N) :-
    count_var(T, V, N0, N1),
    count_var_list(Ts, V, N1, N).

aterm(T, _, any) :- var(T), !.
aterm(T, _, T) :- simple_sort(T), !.
aterm(list(E), _, list(E)) :- !.
aterm([], _, []) :- !.
aterm(T, _, atom) :- atom(T), !.
aterm(T, _, int) :- number(T), !.
aterm([H | T], K, R) :- !, aspine([H | T], K, R).
aterm(T, K, R) :-
    K =< 0, !, summary(T, R).
aterm(T, K, R) :-
    T =.. [F | Args],
    K1 is K - 1,
    aterm_list(Args, K1, AArgs),
    R =.. [F | AArgs].

aterm_list([], _, []).
aterm_list([T | Ts], K, [A | As]) :- aterm(T, K, A), aterm_list(Ts, K, As).

% A cons chain: if the spine is proper, summarize to list(LubOfElems).
aspine(L, K, R) :- K1 is K - 1, aspine_walk(L, K1, empty, R).

aspine_walk(T, _, _, nv) :- var(T), !.
aspine_walk([], _, E, list(E)) :- !.
aspine_walk(list(E2), _, E, list(E3)) :- !, alub(E, E2, E3).
aspine_walk([H | T], K, E, R) :- !,
    aterm(H, K, AH),
    alub(E, AH, E2),
    aspine_walk(T, K, E2, R).
aspine_walk(_, _, _, nv).

summary(T, any) :- var(T), !.
summary(T, S) :- simple_sort(T), !, S = T.
summary(list(E), S) :- !, ( aground(E) -> S = g ; S = nv ).
summary([], atom) :- !.
summary(T, atom) :- atom(T), !.
summary(T, int) :- number(T), !.
summary(T, S) :- ( aground(T) -> S = g ; S = nv ).

aground(T) :- var(T), !, fail.
aground(g) :- !.
aground(const) :- !.
aground(atom) :- !.
aground(int) :- !.
aground(empty) :- !.
aground(list(E)) :- !, aground(E).
aground(any) :- !, fail.
aground(nv) :- !, fail.
aground([]) :- !.
aground(T) :- atomic(T), !.
aground(T) :- T =.. [_ | Args], aground_list(Args).

aground_list([]).
aground_list([T | Ts]) :- aground(T), aground_list(Ts).

% ---- least upper bound ----------------------------------------------
alub(A, B, B) :- var(A), !, lub_with_var(B).
alub(A, B, A) :- var(B), !, lub_with_var(A).
alub(empty, B, B) :- !.
alub(A, empty, A) :- !.
alub(A, B, A) :- A == B, !.
alub(A, B, R) :- simple_sort(A), simple_sort(B), !, sort_lub(A, B, R).
alub(A, B, R) :- simple_sort(A), !, structured_lub(A, B, R).
alub(A, B, R) :- simple_sort(B), !, structured_lub(B, A, R).
alub(list(E1), list(E2), list(E3)) :- !, alub(E1, E2, E3).
alub([], list(E), list(E)) :- !.
alub(list(E), [], list(E)) :- !.
alub([], [], []) :- !.
alub([], B, R) :- !, alub(atom, B, R).
alub(A, [], R) :- !, alub(A, atom, R).
alub(A, B, R) :- atom(A), atom(B), !, R = atom.
alub(A, B, R) :- number(A), number(B), !, R = int.
alub(A, B, R) :- atomic(A), atomic(B), !, R = const.
alub(A, B, R) :- atomic(A), !, alub_mixed(A, B, R).
alub(A, B, R) :- atomic(B), !, alub_mixed(B, A, R).
alub(A, B, R) :-
    functor(A, F, N), functor(B, F, N), !,
    A =.. [F | As], B =.. [F | Bs],
    alub_args(As, Bs, Rs),
    R =.. [F | Rs].
alub(A, B, R) :- cover(A, B, R).

alub_args([], [], []).
alub_args([A | As], [B | Bs], [R | Rs]) :- alub(A, B, R), alub_args(As, Bs, Rs).

alub_mixed(A, B, R) :- aterm(A, 4, AA), alub(AA, B, R).

lub_with_var(var) :- !.
lub_with_var(_).

sort_lub(A, B, B) :- sort_below(A, B), !.
sort_lub(A, B, A) :- sort_below(B, A), !.
sort_lub(var, _, any) :- !.
sort_lub(_, var, any) :- !.
sort_lub(atom, int, const) :- !.
sort_lub(int, atom, const) :- !.
sort_lub(_, _, any).

structured_lub(var, _, any) :- !.
structured_lub(any, _, any) :- !.
structured_lub(S, B, R) :-
    ( aground(B), sort_below(S, g) -> R = g
    ; sort_below(S, nv) -> R = nv
    ; R = any
    ).

cover(A, B, g) :- aground(A), aground(B), !.
cover(_, _, nv).

% ---- abstract (set) unification -------------------------------------
% A free Prolog variable stands for a refinable instance; the atom 'var'
% is the unrefinable rep of "a free variable here" and must never bind a
% real variable (it would freeze it).
absu(A, B, R) :- var(A), var(B), !, A = B, R = A.
absu(A, B, R) :- var(A), !,
    ( B == var -> R = A ; materialize_one(B, BI), A = BI, R = BI ).
absu(A, B, R) :- var(B), !,
    ( A == var -> R = B ; materialize_one(A, AI), B = AI, R = AI ).
absu(var, B, B) :- !.
absu(A, var, A) :- !.
% 'any' absorbs, but the free variables of the other side could be bound
% by the unknown term: push 'any' into them.
absu(any, B, B) :- !, free_to_any(B).
absu(A, any, A) :- !, free_to_any(A).
absu(A, B, R) :- simple_sort(A), simple_sort(B), !, sort_absu(A, B, R).
absu(A, B, R) :- simple_sort(A), !, push_sort(A, B, R).
absu(A, B, R) :- simple_sort(B), !, push_sort(B, A, R).
absu(list(E1), list(E2), R) :- !, list_absu(E1, E2, R).
absu(list(_), [], []) :- !.
absu([], list(_), []) :- !.
absu(list(E), [H | T], [H2 | T2]) :- !,
    materialize_one(E, EI), absu(EI, H, H2), absu(list(E), T, T2).
absu([H | T], list(E), [H2 | T2]) :- !,
    materialize_one(E, EI), absu(H, EI, H2), absu(T, list(E), T2).
absu(A, B, A) :- atomic(A), atomic(B), !, A == B.
absu(A, B, R) :- atomic(A), !, aterm(A, 4, AA), AA \== A, absu(AA, B, R).
absu(A, B, R) :- atomic(B), !, aterm(B, 4, BB), BB \== B, absu(A, BB, R).
absu(A, B, R) :-
    functor(A, F, N), functor(B, F, N),
    A =.. [F | As], B =.. [F | Bs],
    absu_args(As, Bs, Rs),
    R =.. [F | Rs].

list_absu(E1, E2, R) :-
    ( absu_elem(E1, E2, E3) -> R = list(E3) ; R = [] ).

absu_elem(E1, E2, E3) :- absu(E1, E2, E3).

sort_absu(A, B, R) :- sort_below(A, B), !, R = A.
sort_absu(A, B, R) :- sort_below(B, A), !, R = B.
sort_absu(_, _, _) :- fail.

% Push a simple sort into a structured term (meet with components).
push_sort(nv, B, B) :- !, free_to_any(B).
push_sort(g, list(E), list(E2)) :- !, absu_or_empty(g, E, E2).
push_sort(g, [], []) :- !.
push_sort(g, B, R) :- !,
    ( atomic(B) -> R = B
    ; B =.. [F | Bs],
      push_g_args(Bs, Rs),
      R =.. [F | Rs]
    ).
push_sort(const, list(_), []) :- !.
push_sort(const, [], []) :- !.
push_sort(const, B, B) :- !, atomic(B).
push_sort(atom, list(_), []) :- !.
push_sort(atom, [], []) :- !.
push_sort(atom, B, B) :- !, atom(B).
push_sort(int, B, B) :- !, number(B).
push_sort(var, _, _) :- !, fail.
push_sort(empty, _, _) :- fail.

push_g_args([], []).
push_g_args([B | Bs], [R | Rs]) :- absu(g, B, R), push_g_args(Bs, Rs).

absu_or_empty(A, B, R) :- ( absu(A, B, R0) -> R = R0 ; R = empty ).

% Bind every free variable in a term to 'any' (it met an unknown term).
free_to_any(T) :- var(T), !, T = any.
free_to_any(T) :- atomic(T), !.
free_to_any(T) :- T =.. [_ | As], free_to_any_list(As).

free_to_any_list([]).
free_to_any_list([T | Ts]) :- free_to_any(T), free_to_any_list(Ts).

% ---- materialization of a calling pattern ---------------------------
% 'var' leaves become fresh Prolog variables so clause bindings propagate
% into the success abstraction; everything else is ground data.
materialize_args([], []).
materialize_args([P | Ps], [M | Ms]) :-
    materialize_one(P, M),
    materialize_args(Ps, Ms).

materialize_one(P, M) :- var(P), !, M = P.
materialize_one(var, _) :- !.
materialize_one(list(E), list(E)) :- !.
materialize_one(P, P) :- atomic(P), !.
materialize_one(P, M) :-
    P =.. [F | As],
    materialize_args(As, Ms),
    M =.. [F | Ms].
"""

#: The complete meta-interpreting analyzer.
ANALYZER_SOURCE = CONTROL_SOURCE + SUPPORT_SOURCE



@dataclass
class PrologBaselineResult:
    """Outcome of the Prolog-hosted analysis."""

    table: ExtensionTable
    iterations: int
    seconds: float
    resolution_steps: int
    #: "exact" at a true fixpoint; "degraded" when the run was cut short
    #: and the table soundly widened to ⊤ (see repro.robust).
    status: str = "exact"


class _EtState:
    """Python side of the extension table (the assert-database stand-in)."""

    def __init__(self, depth: int, budget=None, fault_plan=None):
        self.depth = depth
        self.table = ExtensionTable(budget=budget, fault_plan=fault_plan)
        self.iteration = 0
        self.marks: Dict[Tuple[Indicator, Pattern], int] = {}


def _rep_to_tree(term: Term, bindings, depth: int) -> Tree:
    """Convert the Prolog analyzer's data representation to a type tree."""
    term = bindings.walk(term)
    if isinstance(term, Var):
        return ("s", AbsSort.VAR)
    if isinstance(term, Atom):
        name = term.name
        simple = {
            "any": AbsSort.ANY,
            "nv": AbsSort.NV,
            "g": AbsSort.GROUND,
            "const": AbsSort.CONST,
            "atom": AbsSort.ATOM,
            "int": AbsSort.INTEGER,
            "var": AbsSort.VAR,
            "empty": AbsSort.EMPTY,
        }.get(name)
        if simple is not None:
            return ("s", simple)
        if name == "[]":
            return ("l", EMPTY_T)
        return ("s", AbsSort.ATOM)
    if isinstance(term, (Int, Float)):
        return ("s", AbsSort.INTEGER if isinstance(term, Int) else AbsSort.CONST)
    assert isinstance(term, Struct)
    if term.name == "list" and term.arity == 1:
        return ("l", _rep_to_tree(term.args[0], bindings, depth - 1))
    args = tuple(_rep_to_tree(a, bindings, depth - 1) for a in term.args)
    return ("f", term.name, term.arity, args)


def _tree_to_rep(tree: Tree) -> Term:
    """Back from a type tree to the analyzer's data representation.

    ``var`` leaves become fresh Prolog variables (not the atom ``var``) so
    positions that are free in a success pattern stay refinable in the
    caller.
    """
    if tree[0] == "s" and tree[1] == AbsSort.VAR:
        return Var()
    if tree[0] == "s":
        name = {
            AbsSort.ANY: "any",
            AbsSort.NV: "nv",
            AbsSort.GROUND: "g",
            AbsSort.CONST: "const",
            AbsSort.ATOM: "atom",
            AbsSort.INTEGER: "int",
            AbsSort.VAR: "var",
            AbsSort.EMPTY: "empty",
        }[tree[1]]
        return Atom(name)
    if tree[0] == "l":
        if tree[1] == EMPTY_T:
            return NIL
        return Struct("list", (_tree_to_rep(tree[1]),))
    args = tuple(_tree_to_rep(arg) for arg in tree[3])
    return Struct(tree[1], args)


def _pattern_of_trees(trees: Sequence[Tree]) -> Pattern:
    """A Pattern with fresh (unshared) instances — this baseline does not
    track aliasing."""
    import itertools

    from ..analysis.patterns import tree_to_node

    counter = itertools.count()
    return canonicalize(
        Pattern(tuple(tree_to_node(tree, counter) for tree in trees))
    )


class PrologAnalyzer:
    """Runs the Prolog-hosted analyzer over a program."""

    def __init__(
        self,
        program: Union[Program, str],
        depth: int = DEFAULT_DEPTH,
        max_iterations: int = 100,
        budget: Optional[Budget] = None,
        fault_plan=None,
        on_budget: str = "raise",
        metrics=None,
    ):
        if on_budget not in ("raise", "degrade"):
            raise ValueError(
                f"on_budget must be 'raise' or 'degrade', not {on_budget!r}"
            )
        if isinstance(program, str):
            program = Program.from_text(program)
        #: repro.obs: optional MetricsRegistry; each analyze() records
        #: its iteration and resolution-step counts under
        #: baseline.*{impl=...} (impl is "prolog" here, "transform" in
        #: the subclass) for instruction-mix comparisons.
        self.metrics = metrics
        self.impl_label = "prolog"
        self.analyzed = normalize_program(program)
        self.depth = depth
        self.max_iterations = max_iterations
        self.budget = budget
        self.fault_plan = fault_plan
        self.on_budget = on_budget
        self.analyzer_program = normalize_program(
            Program.from_text(ANALYZER_SOURCE)
        )
        self._check_reserved_atoms()

    def _check_reserved_atoms(self) -> None:
        """The data representation reserves a few atoms; refuse programs
        that use them as constants (a documented baseline limitation)."""
        from ..prolog.terms import iter_subterms

        reserved = {"any", "nv", "g", "const", "atom", "int", "var", "empty"}
        for predicate in self.analyzed.predicates.values():
            for clause in predicate.clauses:
                for goal in [clause.head] + clause.body:
                    for sub in iter_subterms(goal):
                        if isinstance(sub, Atom) and sub.name in reserved:
                            raise AnalysisError(
                                f"program uses reserved atom {sub.name!r}; "
                                "the Prolog-hosted baseline cannot analyze it"
                            )
                        if (
                            isinstance(sub, Struct)
                            and sub.indicator == ("list", 1)
                        ):
                            raise AnalysisError(
                                "program uses reserved functor list/1; "
                                "the Prolog-hosted baseline cannot analyze it"
                            )

    # ------------------------------------------------------------------

    def _install_builtins(self, solver: Solver, state: _EtState) -> None:
        analyzed = self.analyzed
        depth = self.depth

        def pattern_from(args_term: Term, bindings) -> Pattern:
            from ..prolog.terms import list_elements

            resolved = bindings.resolve(args_term)
            elements, _ = list_elements(resolved)
            trees = [_rep_to_tree(e, bindings, depth) for e in elements]
            return _pattern_of_trees(trees)

        def indicator_from(args, bindings) -> Indicator:
            name = bindings.walk(args[0])
            arity = bindings.walk(args[1])
            assert isinstance(name, Atom) and isinstance(arity, Int)
            return (name.name, arity.value)

        def bi_clause(slv, args, d) -> Iterator[None]:
            from ..prolog.solver import unify

            head_term = args[2]
            body_term = args[3]
            name = slv.bindings.walk(args[0])
            arity = slv.bindings.walk(args[1])
            indicator = (name.name, arity.value)
            clauses = analyzed.clauses(indicator)
            if not clauses:
                raise AnalysisError(
                    f"analyzed program has no predicate {indicator}"
                )
            for clause in clauses:
                renamed = clause.rename()
                body = renamed.body
                conjunction: Term = TRUE
                for goal in reversed(body):
                    if conjunction == TRUE:
                        conjunction = goal
                    else:
                        conjunction = Struct(",", (goal, conjunction))
                mark = slv.bindings.mark()
                if unify(head_term, renamed.head, slv.bindings) and unify(
                    body_term, conjunction, slv.bindings
                ):
                    yield
                slv.bindings.undo_to(mark)

        def bi_explored(slv, args, d) -> Iterator[None]:
            indicator = indicator_from(args, slv.bindings)
            pattern = pattern_from(args[2], slv.bindings)
            key = (indicator, pattern)
            state.table.entry(indicator, pattern)
            if state.marks.get(key) == state.iteration:
                yield

        def bi_mark(slv, args, d) -> Iterator[None]:
            indicator = indicator_from(args, slv.bindings)
            pattern = pattern_from(args[2], slv.bindings)
            state.marks[(indicator, pattern)] = state.iteration
            yield

        def bi_update(slv, args, d) -> Iterator[None]:
            indicator = indicator_from(args, slv.bindings)
            calling = pattern_from(args[2], slv.bindings)
            success = pattern_from(args[3], slv.bindings)
            state.table.update(indicator, calling, success)
            yield

        def bi_lookup(slv, args, d) -> Iterator[None]:
            from ..prolog.solver import unify
            from ..analysis.patterns import pattern_to_trees

            indicator = indicator_from(args, slv.bindings)
            calling = pattern_from(args[2], slv.bindings)
            entry = state.table.find(indicator, calling)
            if entry is None or entry.success is None:
                return
            reps = [
                _tree_to_rep(tree) for tree in pattern_to_trees(entry.success)
            ]
            if unify(args[3], make_list(reps), slv.bindings):
                yield

        solver.register_builtin(("$clause", 4), bi_clause)
        solver.register_builtin(("$explored", 3), bi_explored)
        solver.register_builtin(("$mark", 3), bi_mark)
        solver.register_builtin(("$update", 4), bi_update)
        solver.register_builtin(("$lookup", 4), bi_lookup)

    def _entry_query(self, spec: EntrySpec) -> Term:
        """The solver query that runs one analysis pass for ``spec``."""
        from ..analysis.patterns import pattern_to_trees

        reps = [_tree_to_rep(tree) for tree in pattern_to_trees(spec.pattern)]
        name, arity = spec.indicator
        goal: Term = Struct(name, tuple(reps)) if arity else Atom(name)
        return Struct("analyze", (goal,))

    # ------------------------------------------------------------------

    def analyze(
        self, entries: Sequence[Union[str, Term, EntrySpec]]
    ) -> PrologBaselineResult:
        from ..analysis.patterns import pattern_to_trees

        specs = [parse_entry_spec(entry) for entry in entries]
        if not specs:
            raise AnalysisError("at least one entry spec is required")
        budget = self.budget
        if budget is None:
            budget = Budget(max_iterations=self.max_iterations)
        budget.start()
        state = _EtState(self.depth, budget=self.budget, fault_plan=self.fault_plan)
        total_steps = 0
        started = time.perf_counter()
        iterations = 0
        status = STATUS_EXACT
        try:
            while True:
                budget.charge_iteration()
                iterations += 1
                before = state.table.changes
                for spec in specs:
                    state.iteration += 1
                    solver = Solver(
                        self.analyzer_program,
                        max_steps=100_000_000,
                        budget=self.budget,
                    )
                    self._install_builtins(solver, state)
                    query = self._entry_query(spec)
                    if solver.solve_once(query) is None:
                        raise AnalysisError("the Prolog analyzer pass failed")
                    total_steps += solver.steps
                if state.table.changes == before:
                    break
        except AnalysisError as exc:
            # Interrupted mid-fixpoint: the partial table may still
            # under-approximate, so widen it to ⊤ before handing it out.
            status = STATUS_DEGRADED
            state.table.widen_to_top(status)
            self._record_metrics(iterations, total_steps)
            result = PrologBaselineResult(
                table=state.table,
                iterations=iterations,
                seconds=time.perf_counter() - started,
                resolution_steps=total_steps,
                status=status,
            )
            if self.on_budget == "raise":
                exc.partial_result = result
                raise
            return result
        elapsed = time.perf_counter() - started
        self._record_metrics(iterations, total_steps)
        return PrologBaselineResult(
            table=state.table,
            iterations=iterations,
            seconds=elapsed,
            resolution_steps=total_steps,
            status=status,
        )

    def _record_metrics(self, iterations: int, steps: int) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "baseline.iterations", impl=self.impl_label
        ).inc(iterations)
        self.metrics.counter(
            "baseline.resolution_steps", impl=self.impl_label
        ).inc(steps)
