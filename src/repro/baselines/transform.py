"""The program-transformation baseline (paper Sections 1 and 5).

"Instead of direct interpretation, the transforming approach first
partially evaluates the programs over the abstract domain, and then runs
transformed programs to do the abstract interpretation."

:func:`transform_program` performs exactly the Section 5 rewrite, made
concrete:

* every source clause of ``p/n`` becomes a clause of ``p$exp/(n+1)`` whose
  head unification has been *partially evaluated* into explicit abstract
  unification goals (``absu/3``), whose body calls go through the
  ``q$call`` wrappers, and which ends with ``'$update'(...), fail`` — the
  paper's ``updateET(p(X)), fail``;
* a terminating clause per predicate plays the role of the paper's
  ``p(Lub) :- lookupET(p(Lub))``;
* the wrapper ``p$call/n`` is the artificially-introduced ``p'``: it
  computes the calling pattern, consults the extension table, and explores
  the clauses only when the pattern is new.

The transformed program is an ordinary Prolog program; it runs on the SLD
solver together with the abstract-domain support library of
:mod:`repro.baselines.prolog_analyzer` (``SUPPORT_SOURCE``) and the same
extension-table builtins.  Overhead relative to the compiled analyzer:
every abstract unification step is still resolution, plus the double
dispatch through the wrapper predicates — the "transforming overhead" the
paper describes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.driver import EntrySpec, parse_entry_spec
from ..analysis.table import ExtensionTable
from ..domain.concrete import DEFAULT_DEPTH
from ..errors import AnalysisError
from ..prolog.program import Clause, Program, normalize_program
from ..prolog.solver import Solver
from ..prolog.terms import (
    Atom,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    indicator_of,
    make_list,
)
from ..wam.builtins import MACHINE_BUILTIN_INDICATORS
from .prolog_analyzer import (
    SUPPORT_SOURCE,
    PrologAnalyzer,
    PrologBaselineResult,
    _tree_to_rep,
)

CUT = Atom("!")


def _call_name(indicator: Indicator) -> str:
    return f"{indicator[0]}$call"


def _exp_name(indicator: Indicator) -> str:
    return f"{indicator[0]}$exp"


def _goal(name: str, args: Sequence[Term]) -> Term:
    if not args:
        return Atom(name)
    return Struct(name, tuple(args))


def _transform_builtin(goal: Term) -> Optional[List[Term]]:
    """The partial evaluation of one builtin goal over the abstract domain.

    Returns the goal sequence to splice in, or None if ``goal`` is not a
    builtin (a user call, handled by the wrapper dispatch).
    """
    indicator = indicator_of(goal)
    if indicator not in MACHINE_BUILTIN_INDICATORS:
        return None
    name, _ = indicator
    args = list(goal.args) if isinstance(goal, Struct) else []
    fresh = Var("_")

    def absu(a: Term, b: Term) -> Term:
        return Struct("absu", (a, b, Var("_")))

    if name in ("true",):
        return []
    if name in ("fail", "false"):
        return [Atom("fail")]
    if name == "=":
        return [absu(args[0], args[1])]
    if name == "is":
        return [Struct("not_definite_var", (args[1],)), absu(args[0], Atom("int"))]
    if name in ("<", ">", "=<", ">=", "=:=", "=\\="):
        return [
            Struct("not_definite_var", (args[0],)),
            Struct("not_definite_var", (args[1],)),
        ]
    if name in ("\\=", "==", "\\==", "@<", "@>", "@=<", "@>="):
        return []
    if name == "compare":
        return [absu(args[0], Atom("atom"))]
    if name == "var":
        return [Struct("may_be_var", (args[0],))]
    if name in ("nonvar", "callable"):
        return [Struct("not_definite_var", (args[0],))]
    if name == "atom":
        return [Struct("type_possible", (args[0], Atom("atom")))]
    if name == "integer":
        return [Struct("type_possible", (args[0], Atom("int")))]
    if name in ("number", "float", "atomic"):
        return [Struct("type_possible", (args[0], Atom("const")))]
    if name == "compound":
        return [Struct("may_be_compound", (args[0],))]
    if name == "functor":
        return [absu(args[1], Atom("const")), absu(args[2], Atom("int"))]
    if name == "arg":
        return [Struct("not_definite_var", (args[0],))]
    if name == "=..":
        return [absu(args[1], Struct("list", (Atom("any"),)))]
    if name == "copy_term":
        a_var, m_var = Var("_A"), Var("_M")
        return [
            Struct("aterm", (args[0], Int(4), a_var)),
            Struct("materialize_one", (a_var, m_var)),
            absu(args[1], m_var),
        ]
    if name == "atom_length":
        return [
            Struct("type_possible", (args[0], Atom("atom"))),
            absu(args[1], Atom("int")),
        ]
    if name == "name":
        return [
            absu(args[0], Atom("const")),
            absu(args[1], Struct("list", (Atom("int"),))),
        ]
    if name in ("write", "writeq", "print", "nl", "tab"):
        return []
    raise AnalysisError(f"no abstract transformation for builtin {indicator}")


def transform_predicate(
    indicator: Indicator, clauses: Sequence[Clause]
) -> List[Clause]:
    """Transform one predicate per Section 5; see module docstring."""
    name, arity = indicator
    result: List[Clause] = []

    # The p' wrapper: calling-pattern computation and table consultation.
    wrapper_args = [Var(f"A{i}") for i in range(arity)]
    args_list = make_list(wrapper_args)
    cp_var, sp_var, m_var = Var("CP"), Var("SP"), Var("M")
    name_atom, arity_int = Atom(name), Int(arity)
    explore_goal = _goal(_exp_name(indicator), [m_var, cp_var])
    wrapper_body: List[Term] = [
        Struct("abstract_args", (args_list, cp_var)),
        Struct(
            ";",
            (
                Struct("->", (Struct("$explored", (name_atom, arity_int, cp_var)), Atom("true"))),
                Struct(
                    ",",
                    (
                        Struct("$mark", (name_atom, arity_int, cp_var)),
                        Struct(
                            ",",
                            (
                                Struct("materialize_args", (cp_var, m_var)),
                                explore_goal,
                            ),
                        ),
                    ),
                ),
            ),
        ),
        Struct("$lookup", (name_atom, arity_int, cp_var, sp_var)),
        Struct("apply_success", (args_list, sp_var)),
    ]
    result.append(Clause(_goal(_call_name(indicator), wrapper_args), wrapper_body))

    # One exploring clause per source clause, ending in updateET + fail.
    for clause in clauses:
        renamed = clause.rename()
        head_args = (
            list(renamed.head.args) if isinstance(renamed.head, Struct) else []
        )
        m_arg = Var("M")
        cp_arg = Var("CP")
        r_vars = [Var(f"R{i}") for i in range(arity)]
        body: List[Term] = [
            Struct(
                "absu_args",
                (m_arg, make_list(head_args), make_list(r_vars)),
            )
            if arity
            else Atom("true"),
        ]
        for goal in renamed.body:
            if goal == CUT:
                continue  # sound no-op, as everywhere in the analysis
            expansion = _transform_builtin(goal)
            if expansion is not None:
                body.extend(expansion)
            else:
                call_args = list(goal.args) if isinstance(goal, Struct) else []
                body.append(_goal(_call_name(indicator_of(goal)), call_args))
        sp_arg = Var("SP")
        body.append(Struct("abstract_args", (make_list(r_vars), sp_arg)))
        body.append(Struct("$update", (name_atom, arity_int, cp_arg, sp_arg)))
        body.append(Atom("fail"))
        result.append(
            Clause(_goal(_exp_name(indicator), [m_arg, cp_arg]), body)
        )

    # The terminator (the paper's "p(Lub) :- lookupET(p(Lub))" position).
    result.append(Clause(_goal(_exp_name(indicator), [Var("_"), Var("_")])))
    return result


def transform_program(program: Program) -> Program:
    """Apply the Section 5 transformation to a whole (normalized) program."""
    transformed = Program(program.operators)
    for predicate in program.predicates.values():
        for clause in transform_predicate(predicate.indicator, predicate.clauses):
            transformed.add_clause(clause)
    return transformed


class TransformAnalyzer(PrologAnalyzer):
    """Runs the transformed program on the SLD solver.

    Inherits the extension-table builtins from :class:`PrologAnalyzer`;
    the ``$clause`` builtin is never called (clause exploration is inlined
    by the transformation).
    """

    def __init__(
        self,
        program: Union[Program, str],
        depth: int = DEFAULT_DEPTH,
        max_iterations: int = 100,
        budget=None,
        fault_plan=None,
        on_budget: str = "raise",
        metrics=None,
    ):
        super().__init__(
            program, depth=depth, max_iterations=max_iterations,
            budget=budget, fault_plan=fault_plan, on_budget=on_budget,
            metrics=metrics,
        )
        self.impl_label = "transform"
        transformed = transform_program(self.analyzed)
        support = normalize_program(Program.from_text(SUPPORT_SOURCE))
        merged = Program(transformed.operators)
        for predicate in transformed.predicates.values():
            for clause in predicate.clauses:
                merged.add_clause(clause)
        for predicate in support.predicates.values():
            for clause in predicate.clauses:
                merged.add_clause(clause)
        for term in Program.from_text(
            "'$run_entry'(G) :- call(G), !.\n'$run_entry'(_).\n"
        ).predicates.values():
            for clause in term.clauses:
                merged.add_clause(clause)
        self.analyzer_program = normalize_program(merged)

    def _entry_query(self, spec: EntrySpec) -> Term:
        from ..analysis.patterns import pattern_to_trees

        reps = [_tree_to_rep(tree) for tree in pattern_to_trees(spec.pattern)]
        goal = _goal(_call_name(spec.indicator), reps)
        # The wrapper fails when no success pattern exists; a pass is still
        # complete in that case, hence the $run_entry wrapping.
        return Struct("$run_entry", (goal,))
