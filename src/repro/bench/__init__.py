"""Benchmark harnesses regenerating the paper's tables."""

from .paper_data import PLATFORM_INDEXES, TABLE1, TABLE1_BY_NAME, TABLE2
from .profile import BenchmarkProfile, profile_program
from .programs import BENCHMARKS, BY_NAME, Benchmark, get_benchmark
from .table1 import Table1Row, format_table1, measure_benchmark, run_table1
from .table2 import Table2Row, format_table2, project_table2

__all__ = [
    "BENCHMARKS",
    "BY_NAME",
    "Benchmark",
    "BenchmarkProfile",
    "PLATFORM_INDEXES",
    "TABLE1",
    "TABLE1_BY_NAME",
    "TABLE2",
    "Table1Row",
    "Table2Row",
    "format_table1",
    "format_table2",
    "get_benchmark",
    "measure_benchmark",
    "profile_program",
    "project_table2",
    "run_table1",
]
