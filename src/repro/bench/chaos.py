"""Deterministic chaos campaign for the supervised analysis service.

``python -m repro.bench.chaos --out BENCH_chaos.json`` drives hundreds
of analyze requests through a :class:`~repro.serve.supervisor.Supervisor`
while deliberately breaking things, and asserts the service contract
held throughout:

* **worker kills** at fixed request indices (SIGKILL on receipt, the
  deterministic stand-in for a segfault/OOM mid-request) — survived by
  retry on a fresh worker;
* **store corruption**: at fixed indices an on-disk entry file has its
  bytes flipped and the write-ahead journal gets a torn tail appended —
  healed by checksum quarantine and journal replay;
* **a delayed response** past the request timeout — killed by the
  supervisor's wall-clock timer and answered with a structured
  non-retriable error;
* **an oversized and a malformed request line** through ``serve_loop``
  — answered with structured errors, loop keeps serving;
* **warm restart** on the same (abused) store directory — startup
  succeeds, damaged entries are quarantined, answers stay correct;
* the **resume campaign** (:func:`run_resume`): every benchmark is
  killed on every m-th fixpoint pass boundary until checkpointed
  restarts carry it to exact completion, with the re-executed iteration
  count asserted monotonically shrinking, the resumed result asserted
  identical to from-scratch, crash loops asserted contained, and
  default-cadence checkpoint overhead gated under 5%.

The invariant checked on *every* successful response, chaos or not:
the result equals a from-scratch ``analyze()`` of the same program
(compared via ``stable_dict``), and only ``exact`` results are served.
Any violation aborts with a non-zero exit — a chaos campaign that lies
about correctness measures nothing.

The emitted document tracks the cost of isolation alongside the
survival counts: p50/p95 per-request latency through the worker pool
versus the same request sequence handled in-process.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..analysis.driver import Analyzer
from ..prolog.program import Program
from ..robust import FaultPlan
from ..serve import (
    AnalysisService,
    ServiceConfig,
    Supervisor,
    SupervisorConfig,
    serve_loop,
)
from .programs import BENCHMARKS

#: Benchmarks small enough to cycle hundreds of times (the heavy
#: search programs would dominate wall clock without adding coverage).
PROGRAM_NAMES = ("log10", "ops8", "times10", "divide10", "nreverse", "qsort")


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _flip_one_entry_file(store_dir: str) -> bool:
    """Corrupt the newest store entry file in place (flip bytes in the
    middle) and append a torn half-record to the journal; True when a
    file was damaged."""
    try:
        names = [
            name for name in os.listdir(store_dir)
            if name.endswith(".json")
        ]
    except OSError:
        return False
    if not names:
        return False
    path = os.path.join(store_dir, max(
        names, key=lambda name: os.path.getmtime(os.path.join(store_dir, name))
    ))
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    if not blob:
        return False
    middle = len(blob) // 2
    for offset in range(middle, min(middle + 8, len(blob))):
        blob[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(blob)
    journal = os.path.join(store_dir, "journal.jsonl")
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-tail", "sha256": "dead')  # no newline
    return True


def run(
    requests: int = 200,
    workers: int = 2,
    kill_every: int = 17,
    corrupt_every: int = 29,
    store_dir: Optional[str] = None,
    request_timeout: float = 30.0,
    delay_index: Optional[int] = None,
) -> dict:
    """Run the campaign; returns the result document or raises
    SystemExit on any contract violation."""
    import tempfile

    selected = [b for b in BENCHMARKS if b.name in PROGRAM_NAMES]
    if not selected:
        raise SystemExit("no campaign benchmarks found")
    reference: Dict[str, dict] = {}
    for benchmark in selected:
        reference[benchmark.name] = Analyzer(
            Program.from_text(benchmark.source)
        ).analyze([benchmark.entry]).stable_dict()

    owns_store = store_dir is None
    if owns_store:
        store_dir = tempfile.mkdtemp(prefix="repro-chaos-store-")
    kill_at = [i for i in range(1, requests + 1) if i % kill_every == 0]
    if delay_index is None:
        delay_index = max(2, requests // 2 + 1)
    while delay_index % kill_every == 0:
        delay_index += 1  # a kill on receipt would mask the delay
    delay_at = [delay_index] if delay_index <= requests else []
    plan = FaultPlan(
        kill_worker_at_request=kill_at,
        delay_response_at_request=delay_at,
        delay_seconds=5.0,
    )
    supervisor = Supervisor(
        ServiceConfig(store_dir=store_dir, journal=True),
        SupervisorConfig(
            workers=workers,
            request_timeout=request_timeout,
            grace=0.5,
            max_retries=2,
            backoff_base=0.02,
        ),
        fault_plan=plan,
    )

    served = 0
    exact = 0
    errors_structured = 0
    corruptions = 0
    isolated_latency: List[float] = []
    violations: List[str] = []
    try:
        for index in range(1, requests + 1):
            benchmark = selected[(index - 1) % len(selected)]
            if index % corrupt_every == 0 and _flip_one_entry_file(store_dir):
                corruptions += 1
            request = {
                "op": "analyze",
                "text": benchmark.source,
                "entries": [benchmark.entry],
                "id": index,
            }
            if index in delay_at:
                # The delayed response sleeps 5s; a 2s request deadline
                # arms the kill timer at 2s + grace instead of stalling
                # the campaign for the full server-wide timeout.
                request["budget"] = {"deadline": 2.0}
            started = time.perf_counter()
            response = supervisor.handle(request)
            isolated_latency.append(time.perf_counter() - started)
            served += 1
            if response.get("ok"):
                if response.get("status") != "exact":
                    violations.append(
                        f"request {index}: non-exact status "
                        f"{response.get('status')!r} with no budget set"
                    )
                if response["result"] != reference[benchmark.name]:
                    violations.append(
                        f"request {index} ({benchmark.name}): served result "
                        "differs from from-scratch analyze()"
                    )
                exact += 1
            else:
                # Only the supervisor's structured chaos errors are
                # acceptable; anything unclassified is a bug.
                if response.get("error_kind") not in ("timeout", "worker-crash"):
                    violations.append(
                        f"request {index}: unstructured failure {response!r}"
                    )
                errors_structured += 1
        stats = supervisor.stats()

        # ---- serve_loop abuse: oversized + malformed lines -----------
        probe = selected[0]
        good = json.dumps({
            "op": "analyze", "text": probe.source,
            "entries": [probe.entry], "id": "after-abuse",
        })
        abuse_in = io.StringIO(
            '{"op": "analyze", "text": "' + "x" * 3000 + '"}\n'
            + "this is not json\n"
            + '[1, 2, 3]\n'
            + good + "\n"
            + '{"op": "shutdown"}\n'
        )
        abuse_out = io.StringIO()
        loop_status = serve_loop(
            supervisor, abuse_in, abuse_out, max_line_bytes=2048
        )
        abuse_responses = [
            json.loads(line) for line in abuse_out.getvalue().splitlines()
        ]
        if loop_status != 0 or len(abuse_responses) != 5:
            violations.append(
                f"serve_loop abuse: status {loop_status}, "
                f"{len(abuse_responses)} responses"
            )
        else:
            oversized, bad_json, non_dict, after, shutdown = abuse_responses
            for label, resp, want_ok in (
                ("oversized", oversized, False),
                ("bad-json", bad_json, False),
                ("non-dict", non_dict, False),
                ("after-abuse", after, True),
                ("shutdown", shutdown, True),
            ):
                if bool(resp.get("ok")) != want_ok:
                    violations.append(
                        f"serve_loop abuse: {label} ok={resp.get('ok')}"
                    )
            if after.get("ok") and after["result"] != reference[probe.name]:
                violations.append("serve_loop abuse: wrong result after abuse")
    finally:
        supervisor.close()

    # ---- warm restart on the abused store --------------------------
    restart = Supervisor(
        ServiceConfig(store_dir=store_dir, journal=True),
        SupervisorConfig(workers=1, request_timeout=request_timeout),
    )
    warm_hits = 0
    try:
        for benchmark in selected:
            response = restart.handle({
                "op": "analyze",
                "text": benchmark.source,
                "entries": [benchmark.entry],
            })
            if not response.get("ok"):
                violations.append(
                    f"restart: {benchmark.name} failed: {response!r}"
                )
                continue
            if response["result"] != reference[benchmark.name]:
                violations.append(
                    f"restart: {benchmark.name} wrong warm-start result"
                )
            if response["cache"]["outcome"] == "hit":
                warm_hits += 1
    finally:
        restart.close()

    # ---- the same request sequence in-process (isolation overhead) --
    inproc = AnalysisService(ServiceConfig())
    inproc_latency: List[float] = []
    for index in range(1, requests + 1):
        benchmark = selected[(index - 1) % len(selected)]
        request = {
            "op": "analyze",
            "text": benchmark.source,
            "entries": [benchmark.entry],
        }
        started = time.perf_counter()
        response = inproc.handle(request)
        inproc_latency.append(time.perf_counter() - started)
        if not response.get("ok"):
            violations.append(f"in-process baseline failed at {index}")

    if violations:
        for violation in violations:
            print(f"chaos violation: {violation}", file=sys.stderr)
        raise SystemExit(1)

    def _latency_block(samples: List[float]) -> dict:
        return {
            "p50_ms": round(_percentile(samples, 0.50) * 1000.0, 3),
            "p95_ms": round(_percentile(samples, 0.95) * 1000.0, 3),
            "mean_ms": round(
                sum(samples) * 1000.0 / max(1, len(samples)), 3
            ),
        }

    return {
        "suite": "repro.bench.chaos",
        "requests": requests,
        "workers": workers,
        "programs": [benchmark.name for benchmark in selected],
        "requests_served": served,
        "exact_responses": exact,
        "structured_errors": errors_structured,
        "kills_injected": len(kill_at),
        "kills_survived": stats["crashes_survived"],
        "retries": stats["retries"],
        "timeouts": stats["timeouts"],
        "store_corruptions": corruptions,
        "warm_restart_hits": warm_hits,
        "pool": stats["pool"],
        "latency": {
            "isolated": _latency_block(isolated_latency),
            "in_process": _latency_block(inproc_latency),
        },
    }


#: Error kinds the gateway campaign accepts on a failed response; any
#: other shape of failure is an unstructured error and a violation.
_GATEWAY_STRUCTURED = (
    "shed", "timeout", "worker-crash", "shard-failure", "partial-fanout"
)


async def _run_gateway_campaign(
    requests: int,
    shards: int,
    workers: int,
    kill_index: int,
    delay_index: int,
) -> dict:
    import tempfile

    from ..serve.gateway import Gateway, GatewayConfig
    from .load import _Client

    selected = [b for b in BENCHMARKS if b.name in PROGRAM_NAMES]
    reference: Dict[str, dict] = {}
    for benchmark in selected:
        reference[benchmark.name] = Analyzer(
            Program.from_text(benchmark.source)
        ).analyze([benchmark.entry]).stable_dict()

    store_dir = tempfile.mkdtemp(prefix="repro-chaos-gateway-")
    # Shard 0's supervisor SIGKILLs its worker mid-request at the
    # kill_index-th request; shard 1 delays one response far past the
    # request deadline so the supervisor's kill timer must fire.
    plans = {
        0: FaultPlan(kill_worker_at_request=[kill_index]),
        1: FaultPlan(
            delay_response_at_request=[delay_index], delay_seconds=6.0
        ),
    }
    gateway = Gateway(
        GatewayConfig(
            shards=shards,
            workers=workers,
            queue_depth=32,
            max_line_bytes=64 * 1024,
        ),
        ServiceConfig(store_dir=store_dir, journal=True),
        fault_plans=plans,
    )
    host, port = await gateway.start()
    violations: List[str] = []
    exact = 0
    structured: Dict[str, int] = {}
    latency: List[float] = []

    def _classify(index: int, benchmark, response) -> None:
        nonlocal exact
        if response is None:
            violations.append(f"gateway request {index}: no response")
            return
        if response.get("ok"):
            if response["result"] != reference[benchmark.name]:
                violations.append(
                    f"gateway request {index} ({benchmark.name}): served "
                    "result differs from from-scratch analyze()"
                )
            exact += 1
            return
        kind = response.get("error_kind")
        if kind not in _GATEWAY_STRUCTURED:
            violations.append(
                f"gateway request {index}: unstructured failure {response!r}"
            )
        structured[kind or "?"] = structured.get(kind or "?", 0) + 1

    client = await _Client.connect(host, port)
    try:
        # ---- main fault phase: kills and a delayed response ----------
        for index in range(1, requests + 1):
            benchmark = selected[(index - 1) % len(selected)]
            started = time.perf_counter()
            response = await client.request({
                "op": "analyze",
                "text": benchmark.source,
                "entries": [benchmark.entry],
                # The deadline arms the supervisor kill timer: the 6s
                # delayed response gets killed at ~2s instead of 6.
                "budget": {"deadline": 2.0},
            }, timeout=60.0)
            latency.append(time.perf_counter() - started)
            _classify(index, benchmark, response)

        # ---- shard crash: the backend dies out from under shard 0 ---
        # (the supervisor's pool is closed, so its next handle() raises:
        # the deterministic stand-in for a shard process dying).  The
        # shard must answer the in-flight request with a structured
        # shard-failure, respawn with backoff, warm up from the hot
        # set, and serve correctly again.
        probe = selected[0]
        crashed = gateway.ring.route("text:" + probe.source)
        backend = gateway.shards[crashed]._backend
        if backend is not None:
            backend.close()
        first_after = await client.request({
            "op": "analyze", "text": probe.source,
            "entries": [probe.entry],
        }, timeout=60.0)
        if first_after is None:
            violations.append("shard crash: no response at all")
        elif first_after.get("ok"):
            violations.append(
                "shard crash: first request after backend death "
                "succeeded — the injection never landed"
            )
        elif first_after.get("error_kind") not in _GATEWAY_STRUCTURED:
            violations.append(
                f"shard crash: unstructured failure {first_after!r}"
            )
        retried = await client.request({
            "op": "analyze", "text": probe.source,
            "entries": [probe.entry],
        }, timeout=60.0)
        if not (retried and retried.get("ok")):
            violations.append(
                f"shard crash: retry after respawn failed: {retried!r}"
            )
        elif retried["result"] != reference[probe.name]:
            violations.append("shard crash: wrong result after respawn")

        # ---- connection drop mid-line --------------------------------
        import asyncio as _asyncio

        drop_reader, drop_writer = await _asyncio.open_connection(host, port)
        drop_writer.write(b'{"op": "analyze", "text": "truncated')
        await drop_writer.drain()
        drop_writer.transport.abort()  # RST mid-line, no newline ever
        after_drop = await client.request({
            "op": "analyze", "text": probe.source,
            "entries": [probe.entry],
        }, timeout=60.0)
        if not (after_drop and after_drop.get("ok")):
            violations.append(
                f"connection drop: gateway stopped serving: {after_drop!r}"
            )
        elif after_drop["result"] != reference[probe.name]:
            violations.append("connection drop: wrong result afterwards")

        # ---- oversized line over the socket --------------------------
        raw_reader, raw_writer = await _asyncio.open_connection(host, port)
        raw_writer.write(b"x" * (64 * 1024 + 512) + b"\n")
        raw_writer.write((json.dumps({
            "op": "analyze", "text": probe.source,
            "entries": [probe.entry], "id": 1,
        }) + "\n").encode("utf-8"))
        await raw_writer.drain()
        oversized_ok = False
        survived_ok = False
        for _ in range(2):
            line = await _asyncio.wait_for(raw_reader.readline(), 60.0)
            answer = json.loads(line)
            if answer.get("reason") == "oversized" and answer.get("shed"):
                oversized_ok = True
            elif answer.get("id") == 1 and answer.get("ok"):
                survived_ok = answer["result"] == reference[probe.name]
        if not oversized_ok:
            violations.append("oversized line: no structured shed response")
        if not survived_ok:
            violations.append(
                "oversized line: the next request on the connection "
                "did not serve correctly"
            )
        raw_writer.close()

        stats = gateway.stats()
        shard_stats = [shard.stats() for shard in gateway.shards]
    finally:
        await client.close()
        await gateway.stop()

    respawns = sum(s["respawns"] for s in shard_stats)
    if respawns < 1:
        violations.append("shard crash: no respawn was recorded")

    if violations:
        for violation in violations:
            print(f"chaos violation: {violation}", file=sys.stderr)
        raise SystemExit(1)

    return {
        "requests": requests,
        "shards": shards,
        "workers_per_shard": workers,
        "exact_responses": exact,
        "structured_errors": structured,
        "kills_injected": 1,
        "delays_injected": 1,
        "shard_crashes_injected": 1,
        "respawns": respawns,
        "warmed": sum(s["warmed"] for s in shard_stats),
        "connection_drop_survived": True,
        "oversized_shed": True,
        "requests_served_by_gateway": stats["requests_served"],
        "latency": {
            "p50_ms": round(_percentile(latency, 0.50) * 1000.0, 3),
            "p95_ms": round(_percentile(latency, 0.95) * 1000.0, 3),
        },
        "shard_stats": shard_stats,
    }


def run_gateway(
    requests: int = 36,
    shards: int = 2,
    workers: int = 1,
    kill_index: int = 3,
    delay_index: int = 4,
) -> dict:
    """Gateway-level chaos: worker SIGKILL mid-request on one shard, a
    response delayed past its deadline on another, a backend dying out
    from under a shard (respawn + warm-up), a connection dropped
    mid-line, and an oversized line — every completed response must
    equal the from-scratch analysis.  Raises SystemExit on violation.
    """
    import asyncio

    return asyncio.run(_run_gateway_campaign(
        requests=requests,
        shards=shards,
        workers=workers,
        kill_index=kill_index,
        delay_index=delay_index,
    ))


# ---------------------------------------------------------------------------
# Resume campaign: kill-every-m with checkpointed restarts.


class _SimulatedKill(Exception):
    """In-process stand-in for SIGKILL at a fixpoint pass boundary.

    The checkpoint policy's ``on_pass`` hook fires *after* the emit
    decision, so raising here models the strongest crash the checkpoint
    system promises to survive: the process dies on a checkpointed pass
    boundary and only already-emitted snapshots remain."""


def _scheduled_attempt(
    benchmark,
    resume: Optional[dict] = None,
    kill_at: Optional[int] = None,
    sink=None,
    checkpoint_every: Optional[int] = 1,
):
    """One SCC-scheduled analysis attempt under the resume campaign.

    Returns ``(result, passes_run)``; raises :class:`_SimulatedKill`
    when ``kill_at`` passes complete first.  Snapshots go to ``sink``.
    """
    from ..analysis.driver import parse_entry_spec
    from ..robust import checkpoint as ckpt
    from ..serve.callgraph import CallGraph
    from ..serve.scheduler import SCCScheduler

    analyzer = Analyzer(Program.from_text(benchmark.source))
    graph = CallGraph.from_compiled(analyzer.compiled)
    scheduler = SCCScheduler(analyzer, graph)
    passes = {"n": 0}

    def on_pass(number: int) -> None:
        passes["n"] = number
        if kill_at is not None and number >= kill_at:
            raise _SimulatedKill()

    if checkpoint_every is None and sink is None and kill_at is None:
        policy = None  # the overhead baseline: no checkpointing at all
    else:
        policy = ckpt.CheckpointPolicy(
            sink,
            every=checkpoint_every,
            config="bench.chaos",
            key=benchmark.name,
            entries=[benchmark.entry],
            base_iterations=ckpt.cursor_iterations(resume) if resume else 0,
            on_pass=on_pass,
        )
    result, _ = scheduler.analyze(
        [parse_entry_spec(benchmark.entry)],
        checkpoint=policy,
        resume=resume,
        on_budget="raise",
    )
    return result, passes["n"]


def run_resume(
    kill_every: int = 4,
    max_attempts: int = 40,
    overhead_rounds: int = 5,
    overhead_limit_pct: float = 5.0,
) -> dict:
    """Kill-every-m campaign over *every* benchmark, plus the resume
    system's side gates.  Raises SystemExit on any violation.

    **Main leg** (in-process, all benchmarks): the analysis is killed on
    every ``kill_every``-th fixpoint pass boundary; each retry resumes
    from the best-ranked surviving snapshot.  Asserted per benchmark:

    * eventual **exact completion** within ``max_attempts``;
    * the resumed result equals the from-scratch ``stable_dict`` —
      byte-identical canonical table;
    * the **re-executed iteration count shrinks monotonically**: before
      each retry a side-effect-free completion probe measures how many
      passes the chain still has to (re-)execute from the snapshot it
      will resume from; that series must be non-increasing.

    Forward progress is banked at component-stabilization granularity
    (frozen entries); when one component needs more passes than the kill
    interval allows, the frontier stalls and the campaign doubles the
    interval for the next attempt — mirroring how a deployment would
    have to slow its crash cadence for the analysis to ever finish.
    The ``kill_schedule`` in the report records every escalation.

    **Wire leg**: two benchmarks through a real :class:`Supervisor` —
    the worker SIGKILLs itself mid-fixpoint (``kill_at_iteration``
    chaos), the retry resumes from the snapshot shipped up the wire.

    **Crash-loop leg**: a worker killed on receipt (no fixpoint
    progress possible) must be quarantined with a structured
    ``crash-loop`` error after the containment threshold, and an
    ``invalidate`` must lift the quarantine.

    **Overhead leg**: scheduler wall clock with the *default* checkpoint
    cadence versus no checkpointing, min-over-rounds; the relative
    overhead must stay under ``overhead_limit_pct``.
    """
    from ..robust import checkpoint as ckpt

    violations: List[str] = []
    benchmarks_report: List[dict] = []
    for benchmark in BENCHMARKS:
        reference, scratch_passes = _scheduled_attempt(benchmark)
        reference_stable = reference.stable_dict()
        best: Optional[dict] = None
        m = kill_every
        attempts = 0
        status = None
        kill_schedule: List[int] = []
        reexecuted: List[int] = []
        frontier: List[int] = []
        while attempts < max_attempts:
            attempts += 1
            kill_schedule.append(m)
            emitted: List[dict] = []
            frozen_before = ckpt.frozen_entries(best)
            try:
                result, passes = _scheduled_attempt(
                    benchmark, resume=best, kill_at=m, sink=emitted.append
                )
            except _SimulatedKill:
                # Only snapshots emitted before the kill survive; keep
                # the best-ranked one, exactly as the service's store
                # sink and the supervisor's wire retention do.
                for snap in emitted:
                    if ckpt.snapshot_rank(snap) >= ckpt.snapshot_rank(best):
                        best = snap
                frozen_now = ckpt.frozen_entries(best)
                frontier.append(frozen_now)
                # The completion probe: how much work would a retry
                # still (re-)execute from here?  Side-effect-free.
                _, probe = _scheduled_attempt(benchmark, resume=best)
                reexecuted.append(probe)
                if frozen_now <= frozen_before:
                    # The in-flight component needs more than m passes:
                    # no kill cadence this fast can ever finish it, so
                    # escalate (documented forward-progress granularity).
                    m *= 2
                continue
            for snap in emitted:
                if ckpt.snapshot_rank(snap) >= ckpt.snapshot_rank(best):
                    best = snap
            frontier.append(ckpt.frozen_entries(best))
            reexecuted.append(passes)
            status = (
                "exact"
                if result.stable_dict() == reference_stable
                else "mismatch"
            )
            break
        if status != "exact":
            violations.append(
                f"resume: {benchmark.name}: status {status!r} after "
                f"{attempts} attempts (kill schedule {kill_schedule})"
            )
        if any(
            reexecuted[index + 1] > reexecuted[index]
            for index in range(len(reexecuted) - 1)
        ):
            violations.append(
                f"resume: {benchmark.name}: re-executed iterations grew "
                f"between attempts: {reexecuted}"
            )
        benchmarks_report.append({
            "name": benchmark.name,
            "scratch_passes": scratch_passes,
            "attempts": attempts,
            "status": status,
            "kill_schedule": kill_schedule,
            "reexecuted_iterations": reexecuted,
            "frozen_frontier": frontier,
        })

    wire = _run_resume_wire(violations)
    crash_loop = _run_crash_loop(violations)
    overhead = _measure_checkpoint_overhead(
        rounds=overhead_rounds,
        limit_pct=overhead_limit_pct,
        violations=violations,
    )

    if violations:
        for violation in violations:
            print(f"chaos violation: {violation}", file=sys.stderr)
        raise SystemExit(1)

    return {
        "kill_every": kill_every,
        "benchmarks": benchmarks_report,
        "wire": wire,
        "crash_loop": crash_loop,
        "overhead": overhead,
    }


def _run_resume_wire(violations: List[str]) -> dict:
    """Real-process leg: the worker SIGKILLs itself mid-fixpoint and the
    retry resumes from the checkpoint shipped up the wire."""
    import tempfile

    report: List[dict] = []
    names = ("ops8", "queens_8")
    selected = [b for b in BENCHMARKS if b.name in names]
    with tempfile.TemporaryDirectory(prefix="repro-chaos-resume-") as tmp:
        supervisor = Supervisor(
            ServiceConfig(store_dir=tmp, journal=True, checkpoint_every=1),
            SupervisorConfig(
                workers=1, request_timeout=60.0, grace=0.5,
                max_retries=2, backoff_base=0.02,
            ),
        )
        try:
            for benchmark in selected:
                reference = Analyzer(
                    Program.from_text(benchmark.source)
                ).analyze([benchmark.entry]).stable_dict()
                response = supervisor.handle({
                    "op": "analyze",
                    "text": benchmark.source,
                    "entries": [benchmark.entry],
                    "_chaos": {"kill_at_iteration": 5},
                })
                entry = {
                    "name": benchmark.name,
                    "ok": bool(response.get("ok")),
                    "attempts": response.get("attempts"),
                    "status": response.get("status"),
                }
                report.append(entry)
                if not response.get("ok"):
                    violations.append(
                        f"resume-wire: {benchmark.name} failed: {response!r}"
                    )
                    continue
                if response.get("status") != "exact":
                    violations.append(
                        f"resume-wire: {benchmark.name}: non-exact "
                        f"{response.get('status')!r}"
                    )
                if response["result"] != reference:
                    violations.append(
                        f"resume-wire: {benchmark.name}: resumed result "
                        "differs from from-scratch analyze()"
                    )
                if response.get("attempts", 1) < 2:
                    violations.append(
                        f"resume-wire: {benchmark.name}: kill did not "
                        "force a retry"
                    )
            attached = supervisor.metrics.counter("resume.wire_attached").value
            if attached < 1:
                violations.append(
                    "resume-wire: no checkpoint was ever attached to a retry"
                )
            return {
                "benchmarks": report,
                "wire_attached": attached,
                "crashes_survived": supervisor.crashes_survived,
            }
        finally:
            supervisor.close()


def _run_crash_loop(violations: List[str]) -> dict:
    """Containment leg: kill-on-receipt can never advance the fixpoint
    cursor, so the containment threshold must quarantine the request
    with a structured non-retriable ``crash-loop`` error — and an
    ``invalidate`` must lift the quarantine again."""
    import tempfile

    benchmark = next(b for b in BENCHMARKS if b.name == "ops8")
    kinds: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-loop-") as tmp:
        supervisor = Supervisor(
            ServiceConfig(store_dir=tmp, journal=True, checkpoint_every=1),
            SupervisorConfig(
                workers=1, request_timeout=30.0, grace=0.5,
                max_retries=0, backoff_base=0.02, crash_loop_threshold=3,
            ),
        )
        try:
            poison = {
                "op": "analyze",
                "text": benchmark.source,
                "entries": [benchmark.entry],
                "_chaos": {"kill": True},
            }
            for _ in range(3):
                kinds.append(supervisor.handle(dict(poison)).get("error_kind"))
            if kinds != ["worker-crash", "worker-crash", "crash-loop"]:
                violations.append(
                    f"crash-loop: expected two crashes then containment, "
                    f"got {kinds}"
                )
            # Quarantined: even a *clean* resend must be refused without
            # burning a worker.
            clean = {
                "op": "analyze",
                "text": benchmark.source,
                "entries": [benchmark.entry],
            }
            refused = supervisor.handle(dict(clean))
            if refused.get("error_kind") != "crash-loop" or (
                refused.get("attempts") != 0
            ):
                violations.append(
                    f"crash-loop: quarantine did not hold: {refused!r}"
                )
            supervisor.handle({"op": "invalidate"})
            healed = supervisor.handle(dict(clean))
            if not healed.get("ok") or healed.get("status") != "exact":
                violations.append(
                    f"crash-loop: invalidate did not lift quarantine: "
                    f"{healed!r}"
                )
            return {
                "error_kinds": kinds,
                "crash_loops": supervisor.metrics.counter(
                    "serve.worker.crash_loops"
                ).value,
                "rejects": supervisor.metrics.counter(
                    "serve.worker.crash_loop_rejects"
                ).value,
                "healed_after_invalidate": bool(healed.get("ok")),
            }
        finally:
            supervisor.close()


def _measure_checkpoint_overhead(
    rounds: int, limit_pct: float, violations: List[str]
) -> dict:
    """Scheduler wall clock with the default checkpoint cadence versus
    none; the arms are *interleaved* round by round (a sequential A-then
    -B layout charges all the interpreter warm-up to one arm) and the
    min over rounds of each whole-suite total tames scheduler noise on
    these sub-millisecond benchmarks."""
    from ..robust import checkpoint as ckpt

    def one_round(checkpointed: bool) -> float:
        total = 0.0
        for benchmark in BENCHMARKS:
            discard: List[dict] = []
            started = time.perf_counter()
            _scheduled_attempt(
                benchmark,
                sink=discard.append if checkpointed else None,
                checkpoint_every=(
                    ckpt.DEFAULT_CHECKPOINT_EVERY if checkpointed else None
                ),
            )
            total += time.perf_counter() - started
        return total

    one_round(False), one_round(True)  # warm-up, uncounted
    plain_rounds: List[float] = []
    checkpointed_rounds: List[float] = []
    for _ in range(rounds):
        plain_rounds.append(one_round(False))
        checkpointed_rounds.append(one_round(True))
    plain = min(plain_rounds)
    checkpointed = min(checkpointed_rounds)
    overhead_pct = (
        (checkpointed - plain) / plain * 100.0 if plain > 0 else 0.0
    )
    if overhead_pct > limit_pct:
        violations.append(
            f"overhead: default-cadence checkpointing costs "
            f"{overhead_pct:.2f}% (> {limit_pct}%)"
        )
    return {
        "cadence": ckpt.DEFAULT_CHECKPOINT_EVERY,
        "rounds": rounds,
        "plain_ms": round(plain * 1000.0, 3),
        "checkpointed_ms": round(checkpointed * 1000.0, 3),
        "overhead_pct": round(overhead_pct, 3),
        "limit_pct": limit_pct,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.chaos",
        description=(
            "Deterministic chaos campaign: worker kills, store "
            "corruption, timeouts and protocol abuse against the "
            "supervised analysis service"
        ),
    )
    parser.add_argument(
        "--out", default="BENCH_chaos.json", metavar="FILE",
        help="output file (default BENCH_chaos.json; '-' for stdout)",
    )
    parser.add_argument(
        "--requests", type=int, default=200,
        help="requests in the main campaign (default 200)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool size (default 2)"
    )
    parser.add_argument(
        "--kill-every", type=int, default=17,
        help="SIGKILL the worker at every Nth request (default 17)",
    )
    parser.add_argument(
        "--corrupt-every", type=int, default=29,
        help="corrupt a store entry before every Nth request (default 29)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request wall-clock cap in seconds (default 30)",
    )
    parser.add_argument(
        "--gateway-requests", type=int, default=36,
        help="requests in the gateway-level campaign — shard kills, "
        "slow-shard delays, connection drops (default 36; 0 skips it)",
    )
    parser.add_argument(
        "--gateway-shards", type=int, default=2,
        help="shards in the gateway campaign (default 2)",
    )
    parser.add_argument(
        "--resume-kill-every", type=int, default=4,
        help="kill interval (fixpoint passes) for the resume campaign "
        "(default 4; 0 skips it)",
    )
    arguments = parser.parse_args(argv)
    document = run(
        requests=arguments.requests,
        workers=arguments.workers,
        kill_every=arguments.kill_every,
        corrupt_every=arguments.corrupt_every,
        request_timeout=arguments.request_timeout,
    )
    if arguments.gateway_requests > 0:
        document["gateway"] = run_gateway(
            requests=arguments.gateway_requests,
            shards=arguments.gateway_shards,
        )
    if arguments.resume_kill_every > 0:
        document["resume"] = run_resume(
            kill_every=arguments.resume_kill_every,
        )
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if arguments.out == "-":
        sys.stdout.write(text)
    else:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {arguments.out}: {document['requests_served']} requests, "
            f"{document['kills_survived']} kills survived, "
            f"{document['store_corruptions']} corruptions healed, "
            f"isolated p50 {document['latency']['isolated']['p50_ms']}ms "
            f"vs in-process {document['latency']['in_process']['p50_ms']}ms"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
