"""Deterministic chaos campaign for the supervised analysis service.

``python -m repro.bench.chaos --out BENCH_chaos.json`` drives hundreds
of analyze requests through a :class:`~repro.serve.supervisor.Supervisor`
while deliberately breaking things, and asserts the service contract
held throughout:

* **worker kills** at fixed request indices (SIGKILL on receipt, the
  deterministic stand-in for a segfault/OOM mid-request) — survived by
  retry on a fresh worker;
* **store corruption**: at fixed indices an on-disk entry file has its
  bytes flipped and the write-ahead journal gets a torn tail appended —
  healed by checksum quarantine and journal replay;
* **a delayed response** past the request timeout — killed by the
  supervisor's wall-clock timer and answered with a structured
  non-retriable error;
* **an oversized and a malformed request line** through ``serve_loop``
  — answered with structured errors, loop keeps serving;
* **warm restart** on the same (abused) store directory — startup
  succeeds, damaged entries are quarantined, answers stay correct.

The invariant checked on *every* successful response, chaos or not:
the result equals a from-scratch ``analyze()`` of the same program
(compared via ``stable_dict``), and only ``exact`` results are served.
Any violation aborts with a non-zero exit — a chaos campaign that lies
about correctness measures nothing.

The emitted document tracks the cost of isolation alongside the
survival counts: p50/p95 per-request latency through the worker pool
versus the same request sequence handled in-process.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..analysis.driver import Analyzer
from ..prolog.program import Program
from ..robust import FaultPlan
from ..serve import (
    AnalysisService,
    ServiceConfig,
    Supervisor,
    SupervisorConfig,
    serve_loop,
)
from .programs import BENCHMARKS

#: Benchmarks small enough to cycle hundreds of times (the heavy
#: search programs would dominate wall clock without adding coverage).
PROGRAM_NAMES = ("log10", "ops8", "times10", "divide10", "nreverse", "qsort")


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _flip_one_entry_file(store_dir: str) -> bool:
    """Corrupt the newest store entry file in place (flip bytes in the
    middle) and append a torn half-record to the journal; True when a
    file was damaged."""
    try:
        names = [
            name for name in os.listdir(store_dir)
            if name.endswith(".json")
        ]
    except OSError:
        return False
    if not names:
        return False
    path = os.path.join(store_dir, max(
        names, key=lambda name: os.path.getmtime(os.path.join(store_dir, name))
    ))
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    if not blob:
        return False
    middle = len(blob) // 2
    for offset in range(middle, min(middle + 8, len(blob))):
        blob[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(blob)
    journal = os.path.join(store_dir, "journal.jsonl")
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-tail", "sha256": "dead')  # no newline
    return True


def run(
    requests: int = 200,
    workers: int = 2,
    kill_every: int = 17,
    corrupt_every: int = 29,
    store_dir: Optional[str] = None,
    request_timeout: float = 30.0,
    delay_index: Optional[int] = None,
) -> dict:
    """Run the campaign; returns the result document or raises
    SystemExit on any contract violation."""
    import tempfile

    selected = [b for b in BENCHMARKS if b.name in PROGRAM_NAMES]
    if not selected:
        raise SystemExit("no campaign benchmarks found")
    reference: Dict[str, dict] = {}
    for benchmark in selected:
        reference[benchmark.name] = Analyzer(
            Program.from_text(benchmark.source)
        ).analyze([benchmark.entry]).stable_dict()

    owns_store = store_dir is None
    if owns_store:
        store_dir = tempfile.mkdtemp(prefix="repro-chaos-store-")
    kill_at = [i for i in range(1, requests + 1) if i % kill_every == 0]
    if delay_index is None:
        delay_index = max(2, requests // 2 + 1)
    while delay_index % kill_every == 0:
        delay_index += 1  # a kill on receipt would mask the delay
    delay_at = [delay_index] if delay_index <= requests else []
    plan = FaultPlan(
        kill_worker_at_request=kill_at,
        delay_response_at_request=delay_at,
        delay_seconds=5.0,
    )
    supervisor = Supervisor(
        ServiceConfig(store_dir=store_dir, journal=True),
        SupervisorConfig(
            workers=workers,
            request_timeout=request_timeout,
            grace=0.5,
            max_retries=2,
            backoff_base=0.02,
        ),
        fault_plan=plan,
    )

    served = 0
    exact = 0
    errors_structured = 0
    corruptions = 0
    isolated_latency: List[float] = []
    violations: List[str] = []
    try:
        for index in range(1, requests + 1):
            benchmark = selected[(index - 1) % len(selected)]
            if index % corrupt_every == 0 and _flip_one_entry_file(store_dir):
                corruptions += 1
            request = {
                "op": "analyze",
                "text": benchmark.source,
                "entries": [benchmark.entry],
                "id": index,
            }
            if index in delay_at:
                # The delayed response sleeps 5s; a 2s request deadline
                # arms the kill timer at 2s + grace instead of stalling
                # the campaign for the full server-wide timeout.
                request["budget"] = {"deadline": 2.0}
            started = time.perf_counter()
            response = supervisor.handle(request)
            isolated_latency.append(time.perf_counter() - started)
            served += 1
            if response.get("ok"):
                if response.get("status") != "exact":
                    violations.append(
                        f"request {index}: non-exact status "
                        f"{response.get('status')!r} with no budget set"
                    )
                if response["result"] != reference[benchmark.name]:
                    violations.append(
                        f"request {index} ({benchmark.name}): served result "
                        "differs from from-scratch analyze()"
                    )
                exact += 1
            else:
                # Only the supervisor's structured chaos errors are
                # acceptable; anything unclassified is a bug.
                if response.get("error_kind") not in ("timeout", "worker-crash"):
                    violations.append(
                        f"request {index}: unstructured failure {response!r}"
                    )
                errors_structured += 1
        stats = supervisor.stats()

        # ---- serve_loop abuse: oversized + malformed lines -----------
        probe = selected[0]
        good = json.dumps({
            "op": "analyze", "text": probe.source,
            "entries": [probe.entry], "id": "after-abuse",
        })
        abuse_in = io.StringIO(
            '{"op": "analyze", "text": "' + "x" * 3000 + '"}\n'
            + "this is not json\n"
            + '[1, 2, 3]\n'
            + good + "\n"
            + '{"op": "shutdown"}\n'
        )
        abuse_out = io.StringIO()
        loop_status = serve_loop(
            supervisor, abuse_in, abuse_out, max_line_bytes=2048
        )
        abuse_responses = [
            json.loads(line) for line in abuse_out.getvalue().splitlines()
        ]
        if loop_status != 0 or len(abuse_responses) != 5:
            violations.append(
                f"serve_loop abuse: status {loop_status}, "
                f"{len(abuse_responses)} responses"
            )
        else:
            oversized, bad_json, non_dict, after, shutdown = abuse_responses
            for label, resp, want_ok in (
                ("oversized", oversized, False),
                ("bad-json", bad_json, False),
                ("non-dict", non_dict, False),
                ("after-abuse", after, True),
                ("shutdown", shutdown, True),
            ):
                if bool(resp.get("ok")) != want_ok:
                    violations.append(
                        f"serve_loop abuse: {label} ok={resp.get('ok')}"
                    )
            if after.get("ok") and after["result"] != reference[probe.name]:
                violations.append("serve_loop abuse: wrong result after abuse")
    finally:
        supervisor.close()

    # ---- warm restart on the abused store --------------------------
    restart = Supervisor(
        ServiceConfig(store_dir=store_dir, journal=True),
        SupervisorConfig(workers=1, request_timeout=request_timeout),
    )
    warm_hits = 0
    try:
        for benchmark in selected:
            response = restart.handle({
                "op": "analyze",
                "text": benchmark.source,
                "entries": [benchmark.entry],
            })
            if not response.get("ok"):
                violations.append(
                    f"restart: {benchmark.name} failed: {response!r}"
                )
                continue
            if response["result"] != reference[benchmark.name]:
                violations.append(
                    f"restart: {benchmark.name} wrong warm-start result"
                )
            if response["cache"]["outcome"] == "hit":
                warm_hits += 1
    finally:
        restart.close()

    # ---- the same request sequence in-process (isolation overhead) --
    inproc = AnalysisService(ServiceConfig())
    inproc_latency: List[float] = []
    for index in range(1, requests + 1):
        benchmark = selected[(index - 1) % len(selected)]
        request = {
            "op": "analyze",
            "text": benchmark.source,
            "entries": [benchmark.entry],
        }
        started = time.perf_counter()
        response = inproc.handle(request)
        inproc_latency.append(time.perf_counter() - started)
        if not response.get("ok"):
            violations.append(f"in-process baseline failed at {index}")

    if violations:
        for violation in violations:
            print(f"chaos violation: {violation}", file=sys.stderr)
        raise SystemExit(1)

    def _latency_block(samples: List[float]) -> dict:
        return {
            "p50_ms": round(_percentile(samples, 0.50) * 1000.0, 3),
            "p95_ms": round(_percentile(samples, 0.95) * 1000.0, 3),
            "mean_ms": round(
                sum(samples) * 1000.0 / max(1, len(samples)), 3
            ),
        }

    return {
        "suite": "repro.bench.chaos",
        "requests": requests,
        "workers": workers,
        "programs": [benchmark.name for benchmark in selected],
        "requests_served": served,
        "exact_responses": exact,
        "structured_errors": errors_structured,
        "kills_injected": len(kill_at),
        "kills_survived": stats["crashes_survived"],
        "retries": stats["retries"],
        "timeouts": stats["timeouts"],
        "store_corruptions": corruptions,
        "warm_restart_hits": warm_hits,
        "pool": stats["pool"],
        "latency": {
            "isolated": _latency_block(isolated_latency),
            "in_process": _latency_block(inproc_latency),
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.chaos",
        description=(
            "Deterministic chaos campaign: worker kills, store "
            "corruption, timeouts and protocol abuse against the "
            "supervised analysis service"
        ),
    )
    parser.add_argument(
        "--out", default="BENCH_chaos.json", metavar="FILE",
        help="output file (default BENCH_chaos.json; '-' for stdout)",
    )
    parser.add_argument(
        "--requests", type=int, default=200,
        help="requests in the main campaign (default 200)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool size (default 2)"
    )
    parser.add_argument(
        "--kill-every", type=int, default=17,
        help="SIGKILL the worker at every Nth request (default 17)",
    )
    parser.add_argument(
        "--corrupt-every", type=int, default=29,
        help="corrupt a store entry before every Nth request (default 29)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request wall-clock cap in seconds (default 30)",
    )
    arguments = parser.parse_args(argv)
    document = run(
        requests=arguments.requests,
        workers=arguments.workers,
        kill_every=arguments.kill_every,
        corrupt_every=arguments.corrupt_every,
        request_timeout=arguments.request_timeout,
    )
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if arguments.out == "-":
        sys.stdout.write(text)
    else:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {arguments.out}: {document['requests_served']} requests, "
            f"{document['kills_survived']} kills survived, "
            f"{document['store_corruptions']} corruptions healed, "
            f"isolated p50 {document['latency']['isolated']['p50_ms']}ms "
            f"vs in-process {document['latency']['in_process']['p50_ms']}ms"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
