"""Machine-readable serve benchmarks: cold vs warm vs incremental.

``python -m repro.bench.emit --out BENCH_serve.json`` runs every
Table 1 benchmark through the analysis service three ways:

* **cold** — empty store, full fixpoint;
* **warm** — identical request again: a full-result fingerprint hit,
  no fixpoint at all;
* **incremental** — the program is *edited* (a clause duplicating the
  entry predicate's last clause is appended, changing its SCC's
  fingerprint) and re-analyzed: clean components are seeded from cache,
  only the dirty SCC and its callers re-iterate.

Each request's result is checked against a from-scratch
:meth:`~repro.analysis.driver.Analyzer.analyze` (via ``stable_dict``);
an inequality aborts the run — a benchmark that lies about correctness
measures nothing.  Output is sorted-keys JSON so diffs between runs are
meaningful.

The same command also writes ``BENCH_obs.json`` (``--obs-out``): the
repro.obs instrumentation profile of every benchmark — instruction mix
by opcode class, extension-table hit rates, iteration counts — plus the
overhead micro-benchmark backing the "metrics off costs nothing" claim:
full analysis passes are timed metrics-off, metrics-on, and metrics-off
again (the second off pass calibrates machine noise), and the on/off
delta is reported next to that noise floor.  Results are additionally
checked metrics-on vs metrics-off for equality — instrumentation that
changed an answer would abort the emit.

Finally it writes ``BENCH_opt.json`` (``--opt-out``): the repro.opt
optimizer's before/after wall time and retired-instruction counts on
the concrete WAM, translation-validated before any number is recorded
(see :mod:`repro.bench.opt`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from ..analysis.driver import Analyzer
from ..prolog.program import Program
from ..serve import AnalysisService, ServiceConfig
from .programs import BENCHMARKS


def write_json(
    document: dict, out: str, summary: Optional[str] = None
) -> None:
    """Write a benchmark document as sorted-keys JSON.

    ``out`` is a path, or ``'-'`` for stdout.  ``summary`` is a one-line
    human note printed after a successful file write (never for stdout,
    which stays machine-clean).  Sorted keys + trailing newline is the
    contract every BENCH_*.json artifact follows so diffs between runs
    are meaningful.
    """
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if out == "-":
        sys.stdout.write(text)
        return
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(text)
    if summary:
        print(summary)


def _edit(source: str, entry: str) -> str:
    """A real single-predicate edit: duplicate the entry predicate's
    first clause as a new last clause (changes the clause list, keeps
    the analysis semantics identical for deterministic comparison)."""
    from ..prolog.writer import term_to_text

    name = entry.split("(", 1)[0].strip()
    program = Program.from_text(source)
    for indicator, predicate in program.predicates.items():
        if indicator[0] == name and predicate.clauses:
            clause = predicate.clauses[-1]
            text = term_to_text(
                clause.to_term(), quoted=True, operators=program.operators
            )
            return source + "\n" + text + ".\n"
    return source + "\n"


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def run(repeats: int = 3, names: Optional[Sequence[str]] = None) -> dict:
    """Benchmark every program (or just ``names``); returns the document."""
    selected = [
        benchmark for benchmark in BENCHMARKS
        if names is None or benchmark.name in names
    ]
    rows: List[dict] = []
    for benchmark in selected:
        entry = benchmark.entry
        edited = _edit(benchmark.source, entry)
        scratch = Analyzer(
            Program.from_text(benchmark.source)
        ).analyze([entry]).stable_dict()
        scratch_edited = Analyzer(
            Program.from_text(edited)
        ).analyze([entry]).stable_dict()
        cold_s: List[float] = []
        warm_s: List[float] = []
        incr_s: List[float] = []
        cache = {}
        for _ in range(repeats):
            service = AnalysisService(ServiceConfig())
            request = {
                "op": "analyze",
                "text": benchmark.source,
                "entries": [entry],
            }
            cold, seconds = _timed(lambda: service.handle(request))
            cold_s.append(seconds)
            warm, seconds = _timed(lambda: service.handle(request))
            warm_s.append(seconds)
            incremental, seconds = _timed(lambda: service.handle(
                {"op": "analyze", "text": edited, "entries": [entry]}
            ))
            incr_s.append(seconds)
            for response, expected, label in (
                (cold, scratch, "cold"),
                (warm, scratch, "warm"),
                (incremental, scratch_edited, "incremental"),
            ):
                if not response.get("ok") or response["result"] != expected:
                    raise SystemExit(
                        f"{benchmark.name}: {label} result differs from "
                        f"from-scratch analyze() — refusing to emit"
                    )
            assert warm["cache"]["outcome"] == "hit"
            cache = {
                "cold": cold["cache"]["outcome"],
                "warm": warm["cache"]["outcome"],
                "incremental": incremental["cache"]["outcome"],
                "incremental_sccs_seeded": incremental["cache"]["sccs_seeded"],
                "sccs_total": incremental["cache"]["sccs_total"],
            }
        cold_ms = min(cold_s) * 1000.0
        warm_ms = min(warm_s) * 1000.0
        incr_ms = min(incr_s) * 1000.0
        rows.append({
            "name": benchmark.name,
            "entry": entry,
            "cold_ms": round(cold_ms, 3),
            "warm_ms": round(warm_ms, 3),
            "incremental_ms": round(incr_ms, 3),
            "warm_speedup": round(cold_ms / warm_ms, 1) if warm_ms else None,
            "incremental_speedup": (
                round(cold_ms / incr_ms, 2) if incr_ms else None
            ),
            "cache": cache,
        })
    return {
        "suite": "repro.serve cold/warm/incremental",
        "repeats": repeats,
        "benchmarks": rows,
    }


def run_obs(repeats: int = 3, names: Optional[Sequence[str]] = None) -> dict:
    """The repro.obs document: per-benchmark instrumentation profiles
    plus the metrics-off-vs-on overhead micro-benchmark."""
    from ..obs import MetricsRegistry, instruction_mix, table_hit_rate

    selected = [
        benchmark for benchmark in BENCHMARKS
        if names is None or benchmark.name in names
    ]
    rows: List[dict] = []
    for benchmark in selected:
        plain = Analyzer(
            Program.from_text(benchmark.source)
        ).analyze([benchmark.entry])
        metrics = MetricsRegistry()
        result = Analyzer(
            Program.from_text(benchmark.source), metrics=metrics
        ).analyze([benchmark.entry])
        if result.stable_dict() != plain.stable_dict():
            raise SystemExit(
                f"{benchmark.name}: metrics-on result differs from "
                "metrics-off — refusing to emit"
            )
        snapshot = metrics.snapshot()
        rows.append({
            "name": benchmark.name,
            "entry": benchmark.entry,
            "iterations": result.iterations,
            "instructions": result.instructions_executed,
            "instruction_mix": instruction_mix(snapshot),
            "table": table_hit_rate(snapshot),
            "unify_calls": snapshot.get("analysis.unify.calls", 0),
        })
    return {
        "suite": "repro.obs instrumentation profile",
        "repeats": repeats,
        "benchmarks": rows,
        "overhead": _overhead_microbench(selected, repeats),
    }


def _overhead_microbench(benchmarks, repeats: int) -> dict:
    """Time full analysis passes off/on/off (interleaved rounds).

    The second metrics-off pass measures machine noise: an on/off delta
    below (or near) that noise floor is indistinguishable from zero.
    Only :meth:`Analyzer.analyze` is inside the timer — parsing and
    compilation are identical either way.

    Two defenses keep the estimate honest on a loaded (or single-core)
    machine:

    * each configuration's time is the **sum of per-benchmark minima**
      across rounds, not the minimum pass total — one scheduler blip
      inside a pass then poisons only that benchmark's one sample, and
      each benchmark only needs a single clean run somewhere in the
      rounds to reach its floor;
    * the cyclic GC is parked and a collection is forced *before* each
      timed region, so garbage from the allocation-heavy metrics-on
      passes can never bill a collection to a metrics-off timing.
    """
    import gc

    from ..obs import MetricsRegistry

    def one_pass(mode: str) -> List[float]:
        times: List[float] = []
        for benchmark in benchmarks:
            if mode == "metrics":
                analyzer = Analyzer(
                    Program.from_text(benchmark.source),
                    metrics=MetricsRegistry(),
                )
            elif mode == "trace_off":
                # The exact constructor path a trace-capable caller
                # uses with tracing disabled: every tracing site must
                # reduce to the same None checks as the plain path.
                analyzer = Analyzer(
                    Program.from_text(benchmark.source),
                    tracer=None, trace_states=0,
                )
            else:
                analyzer = Analyzer(Program.from_text(benchmark.source))
            gc.collect()
            started = time.perf_counter()
            analyzer.analyze([benchmark.entry])
            times.append(time.perf_counter() - started)
        return times

    one_pass("off")  # warm-up (imports, code caches)
    off_rounds: List[List[float]] = []
    on_rounds: List[List[float]] = []
    off_again_rounds: List[List[float]] = []
    trace_off_rounds: List[List[float]] = []
    # A noisy scheduler can fake a few percent between two identical
    # configurations; more rounds than the timing benchmarks use keep
    # the per-benchmark minima under the noise we are trying to bound
    # (5 rounds were not enough for that on a loaded machine).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(15, repeats)):
            off_rounds.append(one_pass("off"))
            on_rounds.append(one_pass("metrics"))
            trace_off_rounds.append(one_pass("trace_off"))
            off_again_rounds.append(one_pass("off"))
    finally:
        if gc_was_enabled:
            gc.enable()

    def floor(rounds: List[List[float]]) -> float:
        return sum(min(samples) for samples in zip(*rounds))

    off = floor(off_rounds)
    on = floor(on_rounds)
    off_again = floor(off_again_rounds)
    trace_off = floor(trace_off_rounds)
    return {
        "passes": len(off_rounds),
        "metrics_off_ms": round(off * 1000.0, 3),
        "metrics_on_ms": round(on * 1000.0, 3),
        "metrics_off_again_ms": round(off_again * 1000.0, 3),
        "trace_off_ms": round(trace_off * 1000.0, 3),
        #: The opt-in cost of --profile: the per-instruction accounting
        #: the profiled dispatch loop pays.  Informational.
        "metrics_on_overhead_percent": round((on - off) / off * 100.0, 2),
        #: The guarantee: the metrics-off path (one attribute check at
        #: machine start) is the pre-instrumentation loop verbatim, so
        #: two off passes must time within noise of each other.
        "metrics_off_delta_percent": round(
            abs(off_again - off) / off * 100.0, 2
        ),
        "metrics_off_bound_percent": 3.0,
        #: The tracing guarantee (docs/tracing.md): with no tracer and
        #: no state dumps, the fixpoint loop pays only identity checks —
        #: trace-off must time within 1% of the plain analyzer.
        "trace_off_delta_percent": round(
            abs(trace_off - off) / off * 100.0, 2
        ),
        "trace_off_bound_percent": 1.0,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.emit",
        description="Emit machine-readable serve benchmarks",
    )
    parser.add_argument(
        "--out", default="BENCH_serve.json", metavar="FILE",
        help="output file (default BENCH_serve.json; '-' for stdout)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per benchmark; the minimum is reported",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="benchmark name to include (repeatable; default: all)",
    )
    parser.add_argument(
        "--obs-out", default="BENCH_obs.json", metavar="FILE",
        help="observability document: instrumentation profiles and the "
        "metrics overhead micro-benchmark (default BENCH_obs.json; "
        "'none' to skip)",
    )
    parser.add_argument(
        "--opt-out", default="BENCH_opt.json", metavar="FILE",
        help="optimizer document: translation-validated before/after "
        "wall time and retired instructions on the concrete WAM "
        "(default BENCH_opt.json; 'none' to skip)",
    )
    arguments = parser.parse_args(argv)
    document = run(repeats=arguments.repeats, names=arguments.only)
    total_warm = sum(row["warm_speedup"] or 0 for row in document["benchmarks"])
    count = len(document["benchmarks"])
    write_json(
        document, arguments.out,
        summary=f"wrote {arguments.out}: {count} benchmarks, "
        f"mean warm speedup {total_warm / count:.0f}x",
    )
    if arguments.obs_out != "none":
        obs_document = run_obs(
            repeats=arguments.repeats, names=arguments.only
        )
        overhead = obs_document["overhead"]
        write_json(
            obs_document, arguments.obs_out,
            summary=f"wrote {arguments.obs_out}: metrics-off delta "
            f"{overhead['metrics_off_delta_percent']:.2f}% "
            f"(bound {overhead['metrics_off_bound_percent']:.0f}%), "
            f"trace-off delta "
            f"{overhead['trace_off_delta_percent']:.2f}% "
            f"(bound {overhead['trace_off_bound_percent']:.0f}%), "
            f"--profile costs "
            f"{overhead['metrics_on_overhead_percent']:+.2f}%",
        )
    if arguments.opt_out != "none":
        from .opt import run_opt

        opt_document = run_opt(
            repeats=arguments.repeats, names=arguments.only
        )
        write_json(
            opt_document, arguments.opt_out,
            summary=f"wrote {arguments.opt_out}: geo-mean speedup "
            f"{opt_document['geo_mean_speedup']:.3f}x "
            f"(instruction ratio "
            f"{opt_document['geo_mean_instruction_ratio']:.3f}x)",
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
