"""Machine-readable serve benchmarks: cold vs warm vs incremental.

``python -m repro.bench.emit --out BENCH_serve.json`` runs every
Table 1 benchmark through the analysis service three ways:

* **cold** — empty store, full fixpoint;
* **warm** — identical request again: a full-result fingerprint hit,
  no fixpoint at all;
* **incremental** — the program is *edited* (a clause duplicating the
  entry predicate's last clause is appended, changing its SCC's
  fingerprint) and re-analyzed: clean components are seeded from cache,
  only the dirty SCC and its callers re-iterate.

Each request's result is checked against a from-scratch
:meth:`~repro.analysis.driver.Analyzer.analyze` (via ``stable_dict``);
an inequality aborts the run — a benchmark that lies about correctness
measures nothing.  Output is sorted-keys JSON so diffs between runs are
meaningful.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from ..analysis.driver import Analyzer
from ..prolog.program import Program
from ..serve import AnalysisService, ServiceConfig
from .programs import BENCHMARKS


def _edit(source: str, entry: str) -> str:
    """A real single-predicate edit: duplicate the entry predicate's
    first clause as a new last clause (changes the clause list, keeps
    the analysis semantics identical for deterministic comparison)."""
    from ..prolog.writer import term_to_text

    name = entry.split("(", 1)[0].strip()
    program = Program.from_text(source)
    for indicator, predicate in program.predicates.items():
        if indicator[0] == name and predicate.clauses:
            clause = predicate.clauses[-1]
            text = term_to_text(
                clause.to_term(), quoted=True, operators=program.operators
            )
            return source + "\n" + text + ".\n"
    return source + "\n"


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def run(repeats: int = 3, names: Optional[Sequence[str]] = None) -> dict:
    """Benchmark every program (or just ``names``); returns the document."""
    selected = [
        benchmark for benchmark in BENCHMARKS
        if names is None or benchmark.name in names
    ]
    rows: List[dict] = []
    for benchmark in selected:
        entry = benchmark.entry
        edited = _edit(benchmark.source, entry)
        scratch = Analyzer(
            Program.from_text(benchmark.source)
        ).analyze([entry]).stable_dict()
        scratch_edited = Analyzer(
            Program.from_text(edited)
        ).analyze([entry]).stable_dict()
        cold_s: List[float] = []
        warm_s: List[float] = []
        incr_s: List[float] = []
        cache = {}
        for _ in range(repeats):
            service = AnalysisService(ServiceConfig())
            request = {
                "op": "analyze",
                "text": benchmark.source,
                "entries": [entry],
            }
            cold, seconds = _timed(lambda: service.handle(request))
            cold_s.append(seconds)
            warm, seconds = _timed(lambda: service.handle(request))
            warm_s.append(seconds)
            incremental, seconds = _timed(lambda: service.handle(
                {"op": "analyze", "text": edited, "entries": [entry]}
            ))
            incr_s.append(seconds)
            for response, expected, label in (
                (cold, scratch, "cold"),
                (warm, scratch, "warm"),
                (incremental, scratch_edited, "incremental"),
            ):
                if not response.get("ok") or response["result"] != expected:
                    raise SystemExit(
                        f"{benchmark.name}: {label} result differs from "
                        f"from-scratch analyze() — refusing to emit"
                    )
            assert warm["cache"]["outcome"] == "hit"
            cache = {
                "cold": cold["cache"]["outcome"],
                "warm": warm["cache"]["outcome"],
                "incremental": incremental["cache"]["outcome"],
                "incremental_sccs_seeded": incremental["cache"]["sccs_seeded"],
                "sccs_total": incremental["cache"]["sccs_total"],
            }
        cold_ms = min(cold_s) * 1000.0
        warm_ms = min(warm_s) * 1000.0
        incr_ms = min(incr_s) * 1000.0
        rows.append({
            "name": benchmark.name,
            "entry": entry,
            "cold_ms": round(cold_ms, 3),
            "warm_ms": round(warm_ms, 3),
            "incremental_ms": round(incr_ms, 3),
            "warm_speedup": round(cold_ms / warm_ms, 1) if warm_ms else None,
            "incremental_speedup": (
                round(cold_ms / incr_ms, 2) if incr_ms else None
            ),
            "cache": cache,
        })
    return {
        "suite": "repro.serve cold/warm/incremental",
        "repeats": repeats,
        "benchmarks": rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.emit",
        description="Emit machine-readable serve benchmarks",
    )
    parser.add_argument(
        "--out", default="BENCH_serve.json", metavar="FILE",
        help="output file (default BENCH_serve.json; '-' for stdout)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per benchmark; the minimum is reported",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="benchmark name to include (repeatable; default: all)",
    )
    arguments = parser.parse_args(argv)
    document = run(repeats=arguments.repeats, names=arguments.only)
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if arguments.out == "-":
        sys.stdout.write(text)
    else:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        total_warm = sum(row["warm_speedup"] or 0 for row in document["benchmarks"])
        count = len(document["benchmarks"])
        print(
            f"wrote {arguments.out}: {count} benchmarks, "
            f"mean warm speedup {total_warm / count:.0f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
