"""Load benchmark for the sharded gateway: concurrency, overload, shed.

``python -m repro.bench.load --out BENCH_load.json`` stands up a
:class:`~repro.serve.gateway.Gateway` on an ephemeral port and drives
thousands of concurrent JSON-line requests at it over real TCP
connections, in three phases:

* **warmup** — prime every shard's caches with the benchmark corpus;
* **steady** — sustained mixed traffic (analyze / lint / invalidate /
  stats) at a concurrency the gateway can absorb;
* **overload** — deliberately more in-flight requests than the shards'
  bounded queues can hold, so admission control *must* shed and the
  degrade valve *must* tighten budgets.  The point of the phase is not
  throughput; it is that the gateway answers everything — fast,
  structured shed responses included — instead of queueing unboundedly
  or stalling the event loop.

Every request is accounted for: a request that never got a response
("unserved") is a contract violation and fails the run (exit 1), as is
an unstructured error.  Shed responses are retried once; the document
records how many retries succeeded.  The emitted JSON carries per-phase
p50/p95/p99 latency, saturation throughput (completed requests per
second during overload), and shed / degraded / retry / respawn counts —
the numbers the CI ``load`` job gates on.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..serve.gateway import Gateway, GatewayConfig
from ..serve.service import ServiceConfig
from .chaos import _percentile
from .programs import BENCHMARKS

#: Small programs that cycle fast enough to sustain thousands of
#: requests (matches the chaos campaign's selection).
PROGRAM_NAMES = ("log10", "ops8", "times10", "divide10", "nreverse", "qsort")


class _Client:
    """One TCP connection with id-correlated pipelining.

    The gateway answers in completion order, so the reader task routes
    each response to its request's future by ``id``.
    """

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError, ValueError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_result(None)
            self._pending.clear()

    async def request(self, payload: dict, timeout: float = 60.0):
        """Send one request; returns the response dict, or ``None`` if
        the connection died first."""
        self._next_id += 1
        request_id = self._next_id
        payload = dict(payload)
        payload["id"] = request_id
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(
                (json.dumps(payload) + "\n").encode("utf-8")
            )
            await self._writer.drain()
        except (ConnectionError, OSError):
            self._pending.pop(request_id, None)
            return None
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            return None

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _mixed_op(index: int) -> str:
    """The deterministic op mix: mostly analyze, a steady trickle of
    lint, and periodic invalidate / stats control traffic."""
    if index % 23 == 0:
        return "invalidate"
    if index % 17 == 0:
        return "stats"
    if index % 5 == 0:
        return "lint"
    return "analyze"


async def _drive_phase(
    clients: List[_Client],
    benchmarks,
    count: int,
    concurrency: int,
    tally: dict,
    samples: List[float],
    retry_shed: bool,
) -> float:
    """Issue ``count`` mixed requests across ``clients`` with at most
    ``concurrency`` in flight; returns the phase wall-clock seconds."""
    semaphore = asyncio.Semaphore(concurrency)

    async def one(index: int) -> None:
        async with semaphore:
            client = clients[index % len(clients)]
            op = _mixed_op(index)
            benchmark = benchmarks[index % len(benchmarks)]
            if op in ("analyze", "lint"):
                payload = {
                    "op": op,
                    "text": benchmark.source,
                    "entries": [benchmark.entry],
                }
            else:
                payload = {"op": op}
            started = time.perf_counter()
            response = await client.request(payload)
            elapsed = time.perf_counter() - started
            if response is None:
                tally["unserved"] += 1
                return
            samples.append(elapsed)
            if response.get("shed"):
                tally["shed"] += 1
                tally["shed_reasons"][response.get("reason", "?")] = (
                    tally["shed_reasons"].get(response.get("reason", "?"), 0)
                    + 1
                )
                if retry_shed and response.get("retriable"):
                    tally["retries"] += 1
                    # Honor the gateway's backoff hint (capped so a
                    # pessimistic estimate cannot stall the bench): a
                    # well-behaved client waits out the backlog instead
                    # of re-hitting a saturated shard immediately.
                    hint = response.get("retry_after_ms")
                    if hint:
                        tally["retry_after_honored"] += 1
                        await asyncio.sleep(
                            min(float(hint) / 1000.0, _RETRY_AFTER_CAP)
                        )
                    retried = await client.request(payload)
                    if retried is None:
                        tally["unserved"] += 1
                    elif retried.get("shed"):
                        tally["retries_shed_again"] += 1
                    elif retried.get("ok"):
                        tally["retries_succeeded"] += 1
                return
            if not response.get("ok"):
                tally["errors"] += 1
                kind = response.get("error_kind")
                if not kind:
                    tally["unstructured_errors"] += 1
                else:
                    tally["error_kinds"][kind] = (
                        tally["error_kinds"].get(kind, 0) + 1
                    )
                    if kind not in KNOWN_ERROR_KINDS:
                        tally["unknown_error_kinds"] += 1
                return
            tally["completed"] += 1
            if response.get("degraded_by_gateway") or (
                response.get("status") == "degraded"
            ):
                tally["degraded"] += 1

    started = time.perf_counter()
    await asyncio.gather(*(one(index) for index in range(count)))
    return time.perf_counter() - started


#: Every error_kind the serving stack may legitimately answer with
#: under load; anything else is a classification gap and fails the run.
KNOWN_ERROR_KINDS = frozenset({
    "shed",            # admission control refused (retriable, hinted)
    "partial-fanout",  # a broadcast missed saturated shards (retriable)
    "timeout",         # wall-clock kill / cumulative retry bound
    "worker-crash",    # worker died, retries exhausted (retriable)
    "crash-loop",      # poison-pill quarantine (non-retriable)
})

#: Cap on honoring a retry_after_ms hint, seconds.
_RETRY_AFTER_CAP = 2.0


def _fresh_tally() -> dict:
    return {
        "completed": 0,
        "shed": 0,
        "shed_reasons": {},
        "degraded": 0,
        "errors": 0,
        "error_kinds": {},
        "unknown_error_kinds": 0,
        "unstructured_errors": 0,
        "unserved": 0,
        "retries": 0,
        "retries_succeeded": 0,
        "retries_shed_again": 0,
        "retry_after_honored": 0,
    }


def _latency_block(samples: Sequence[float]) -> dict:
    return {
        "requests": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(samples, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1000.0, 3),
        "mean_ms": round(
            sum(samples) * 1000.0 / max(1, len(samples)), 3
        ),
    }


async def _run(
    requests: int,
    overload_requests: int,
    connections: int,
    shards: int,
    workers: int,
    queue_depth: int,
    steady_concurrency: int,
    overload_concurrency: int,
) -> dict:
    benchmarks = [b for b in BENCHMARKS if b.name in PROGRAM_NAMES]
    if not benchmarks:
        raise SystemExit("no load benchmarks found")
    gateway = Gateway(
        GatewayConfig(
            shards=shards,
            workers=workers,
            queue_depth=queue_depth,
            # Overload must trip the degrade valve well before the
            # hard cap so the phase exercises both.
            degrade_depth=max(1, queue_depth // 2),
        ),
        ServiceConfig(),
    )
    host, port = await gateway.start()
    clients = [
        await _Client.connect(host, port) for _ in range(connections)
    ]
    phases = {}
    try:
        # -- warmup: every program through every shard's cache once --
        warm_tally = _fresh_tally()
        warm_samples: List[float] = []
        await _drive_phase(
            clients, benchmarks, len(benchmarks) * 4,
            concurrency=4, tally=warm_tally, samples=warm_samples,
            retry_shed=False,
        )
        phases["warmup"] = {
            "latency": _latency_block(warm_samples), **warm_tally,
        }

        # -- steady: sustained mixed traffic below saturation ---------
        steady_tally = _fresh_tally()
        steady_samples: List[float] = []
        steady_seconds = await _drive_phase(
            clients, benchmarks, requests,
            concurrency=steady_concurrency,
            tally=steady_tally, samples=steady_samples, retry_shed=True,
        )
        phases["steady"] = {
            "latency": _latency_block(steady_samples),
            "wall_seconds": round(steady_seconds, 3),
            "throughput_rps": round(
                (steady_tally["completed"] + steady_tally["shed"])
                / max(1e-9, steady_seconds), 1,
            ),
            **steady_tally,
        }

        # -- overload: more in flight than the queues can hold --------
        overload_tally = _fresh_tally()
        overload_samples: List[float] = []
        overload_seconds = await _drive_phase(
            clients, benchmarks, overload_requests,
            concurrency=overload_concurrency,
            tally=overload_tally, samples=overload_samples,
            retry_shed=False,
        )
        phases["overload"] = {
            "latency": _latency_block(overload_samples),
            "wall_seconds": round(overload_seconds, 3),
            "saturation_throughput_rps": round(
                overload_tally["completed"] / max(1e-9, overload_seconds),
                1,
            ),
            **overload_tally,
        }

        # -- backoff: past saturation again, but with a well-behaved
        # client that retries sheds after sleeping out the gateway's
        # retry_after_ms hint — queue-full refusals should convert
        # into delayed successes instead of shed-retry spin ----------
        backoff_tally = _fresh_tally()
        backoff_samples: List[float] = []
        backoff_seconds = await _drive_phase(
            clients, benchmarks, max(1, overload_requests // 2),
            concurrency=overload_concurrency,
            tally=backoff_tally, samples=backoff_samples,
            retry_shed=True,
        )
        phases["backoff"] = {
            "latency": _latency_block(backoff_samples),
            "wall_seconds": round(backoff_seconds, 3),
            **backoff_tally,
        }
        stats = gateway.stats()
        shard_stats = [shard.stats() for shard in gateway.shards]
    finally:
        for client in clients:
            await client.close()
        await gateway.stop()

    total_unserved = sum(
        phases[name]["unserved"] for name in phases
    )
    total_unstructured = sum(
        phases[name]["unstructured_errors"] for name in phases
    )
    return {
        "suite": "repro.bench.load",
        "config": {
            "shards": shards,
            "workers_per_shard": workers,
            "queue_depth": queue_depth,
            "connections": connections,
            "steady_requests": requests,
            "steady_concurrency": steady_concurrency,
            "overload_requests": overload_requests,
            "overload_concurrency": overload_concurrency,
        },
        "phases": phases,
        "unserved": total_unserved,
        "unstructured_errors": total_unstructured,
        "unknown_error_kinds": sum(
            phases[name]["unknown_error_kinds"] for name in phases
        ),
        "error_kinds": {
            kind: sum(
                phases[name]["error_kinds"].get(kind, 0) for name in phases
            )
            for kind in sorted(
                set().union(*(phases[name]["error_kinds"] for name in phases))
            )
        },
        "respawns": sum(s["respawns"] for s in shard_stats),
        "shed_total": sum(phases[name]["shed"] for name in phases),
        "degraded_total": sum(phases[name]["degraded"] for name in phases),
        "requests_served_by_gateway": stats["requests_served"],
        "shards": shard_stats,
    }


def run(
    requests: int = 600,
    overload_requests: int = 600,
    connections: int = 8,
    shards: int = 2,
    workers: int = 0,
    queue_depth: int = 16,
    steady_concurrency: int = 8,
    overload_concurrency: int = 128,
) -> dict:
    """Run the load campaign; returns the result document.  Exits
    non-zero (SystemExit) when any request went unanswered or any error
    came back unstructured — the gateway's answer-everything contract."""
    document = asyncio.run(_run(
        requests=requests,
        overload_requests=overload_requests,
        connections=connections,
        shards=shards,
        workers=workers,
        queue_depth=queue_depth,
        steady_concurrency=steady_concurrency,
        overload_concurrency=overload_concurrency,
    ))
    violations = []
    if document["unserved"]:
        violations.append(
            f"{document['unserved']} requests went unanswered"
        )
    if document["unstructured_errors"]:
        violations.append(
            f"{document['unstructured_errors']} unstructured errors"
        )
    if document["unknown_error_kinds"]:
        violations.append(
            f"{document['unknown_error_kinds']} errors with an "
            f"unclassified error_kind (saw {document['error_kinds']}; "
            f"known: {sorted(KNOWN_ERROR_KINDS)})"
        )
    if document["phases"]["overload"]["shed"] == 0 and (
        overload_concurrency > queue_depth * shards
    ):
        violations.append(
            "overload phase shed nothing — admission control never fired"
        )
    if violations:
        for violation in violations:
            print(f"load violation: {violation}", file=sys.stderr)
        raise SystemExit(1)
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.load",
        description=(
            "Concurrent load benchmark against the sharded gateway, "
            "with a deliberate overload phase that must shed"
        ),
    )
    parser.add_argument(
        "--out", default="BENCH_load.json", metavar="FILE",
        help="output file (default BENCH_load.json; '-' for stdout)",
    )
    parser.add_argument(
        "--requests", type=int, default=600,
        help="steady-phase requests (default 600)",
    )
    parser.add_argument(
        "--overload-requests", type=int, default=600,
        help="overload-phase requests (default 600)",
    )
    parser.add_argument(
        "--connections", type=int, default=8,
        help="concurrent TCP connections (default 8)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="gateway shards (default 2)"
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="workers per shard (default 0 = in-process backends)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=16,
        help="per-shard admission cap (default 16 — small on purpose, "
        "so the overload phase actually overloads)",
    )
    parser.add_argument(
        "--steady-concurrency", type=int, default=8,
        help="in-flight cap during the steady phase (default 8)",
    )
    parser.add_argument(
        "--overload-concurrency", type=int, default=128,
        help="in-flight cap during the overload phase (default 128)",
    )
    parser.add_argument(
        "--max-p95-ms", type=float, default=None,
        help="fail (exit 1) when the overload-phase p95 exceeds this "
        "(the CI gate: shed responses keep tail latency bounded)",
    )
    arguments = parser.parse_args(argv)
    document = run(
        requests=arguments.requests,
        overload_requests=arguments.overload_requests,
        connections=arguments.connections,
        shards=arguments.shards,
        workers=arguments.workers,
        queue_depth=arguments.queue_depth,
        steady_concurrency=arguments.steady_concurrency,
        overload_concurrency=arguments.overload_concurrency,
    )
    status = 0
    if arguments.max_p95_ms is not None:
        p95 = document["phases"]["overload"]["latency"]["p95_ms"]
        if p95 > arguments.max_p95_ms:
            print(
                f"load violation: overload p95 {p95}ms exceeds the "
                f"{arguments.max_p95_ms}ms gate",
                file=sys.stderr,
            )
            status = 1
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if arguments.out == "-":
        sys.stdout.write(text)
    else:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        overload = document["phases"]["overload"]
        print(
            f"wrote {arguments.out}: steady p95 "
            f"{document['phases']['steady']['latency']['p95_ms']}ms, "
            f"overload p95 {overload['latency']['p95_ms']}ms, "
            f"saturation {overload['saturation_throughput_rps']} rps, "
            f"{document['shed_total']} shed, "
            f"{document['degraded_total']} degraded, "
            f"{document['phases']['backoff']['retry_after_honored']} "
            f"retry hints honored, "
            f"{document['unserved']} unserved"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
