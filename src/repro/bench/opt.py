"""Before/after benchmarks for the repro.opt optimizer (BENCH_opt.json).

For every Table 1 benchmark: compile the program, analyze it with the
benchmark's entry spec *plus* entry specs derived from the goals that
will actually run (:func:`repro.opt.goal_entry_specs` — the facts must
cover every validated goal), optimize, and **translation-validate**:
the optimized code area must be verifier-clean and both the full goal
and the test goal must produce identical solutions on the original and
optimized machines.  A validation failure aborts the emit — a benchmark
that runs the wrong program measures nothing.

Two measurements per benchmark, both on the concrete WAM running the
full benchmark goal:

* **retired instructions** — the ``wam.instructions`` counter from a
  metrics-on run of each program; the deterministic measure.
* **wall time** — interleaved rounds (baseline, optimized, baseline,
  ...) with the cyclic GC parked, minimum per configuration; the noisy
  but honest measure.

The derivative benchmarks (``log10``/``ops8``/``times10``/``divide10``)
are reported as a separate ``deriv`` group: their ``d/3`` has two
variable-keyed clauses, so the baseline compiler refuses first-argument
indexing and every call walks a 10-clause ``try_me_else`` chain — the
forced-dispatch transform is worth ~1.6x retired instructions there.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.driver import analyze
from ..obs import MetricsRegistry
from ..opt import goal_entry_specs, optimize_program, validate
from ..prolog.parser import parse_term
from ..prolog.program import Program
from ..prolog.terms import Term
from ..wam.compile import CompiledProgram, compile_program
from ..wam.machine import Machine
from .programs import BENCHMARKS

#: The d/3-heavy derivative group called out in the report.
DERIV_GROUP = ("log10", "ops8", "times10", "divide10")


def _run_goal(compiled: CompiledProgram, goal: Term) -> None:
    machine = Machine(compiled)
    for _ in machine.run(goal):
        pass


def _retired_instructions(compiled: CompiledProgram, goal: Term) -> int:
    machine = Machine(compiled)
    machine.metrics = MetricsRegistry()
    for _ in machine.run(goal):
        pass
    return machine.metrics.counter("wam.instructions").value


def _geo_mean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_opt(
    repeats: int = 3, names: Optional[Sequence[str]] = None
) -> dict:
    """The BENCH_opt document; raises ``SystemExit`` on any validation
    failure rather than emitting numbers for a wrong program."""
    selected = [
        benchmark for benchmark in BENCHMARKS
        if names is None or benchmark.name in names
    ]
    rows: List[dict] = []
    prepared: List[Tuple[object, CompiledProgram, CompiledProgram, Term]] = []
    for benchmark in selected:
        program = Program.from_text(benchmark.source)
        compiled = compile_program(program)
        goals = [parse_term(benchmark.goal), parse_term(benchmark.test_goal)]
        entries: List[object] = [benchmark.entry]
        for goal in goals:
            entries.extend(goal_entry_specs(compiled.program, goal))
        result = analyze(compiled, *entries)
        optimized = optimize_program(compiled, result)
        report = validate(compiled, optimized.compiled, goals)
        if not report.ok:
            raise SystemExit(
                f"{benchmark.name}: translation validation failed — "
                f"refusing to emit\n{report.to_text()}"
            )
        prepared.append((benchmark, compiled, optimized, goals[0]))

    for benchmark, compiled, optimized, goal in prepared:
        baseline_instructions = _retired_instructions(compiled, goal)
        optimized_instructions = _retired_instructions(
            optimized.compiled, goal
        )
        baseline_s: List[float] = []
        optimized_s: List[float] = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                for samples, program in (
                    (baseline_s, compiled),
                    (optimized_s, optimized.compiled),
                ):
                    gc.collect()
                    started = time.perf_counter()
                    _run_goal(program, goal)
                    samples.append(time.perf_counter() - started)
        finally:
            if gc_was_enabled:
                gc.enable()
        baseline_ms = min(baseline_s) * 1000.0
        optimized_ms = min(optimized_s) * 1000.0
        totals = optimized.report.to_dict()["totals"]
        rows.append({
            "name": benchmark.name,
            "entry": benchmark.entry,
            "goal": benchmark.goal,
            "baseline_instructions": baseline_instructions,
            "optimized_instructions": optimized_instructions,
            "instruction_reduction_percent": round(
                (1 - optimized_instructions / baseline_instructions) * 100.0,
                2,
            ),
            "baseline_ms": round(baseline_ms, 3),
            "optimized_ms": round(optimized_ms, 3),
            "speedup": round(baseline_ms / optimized_ms, 3),
            "transforms": totals,
        })

    speedups = [row["speedup"] for row in rows]
    instruction_ratios = [
        row["baseline_instructions"] / row["optimized_instructions"]
        for row in rows
    ]
    document: Dict[str, object] = {
        "suite": "repro.opt before/after on the concrete WAM",
        "repeats": repeats,
        "benchmarks": rows,
        "geo_mean_speedup": round(_geo_mean(speedups), 3),
        "geo_mean_instruction_ratio": round(
            _geo_mean(instruction_ratios), 3
        ),
    }
    deriv = [row for row in rows if row["name"] in DERIV_GROUP]
    if deriv:
        document["deriv"] = {
            "names": [row["name"] for row in deriv],
            "geo_mean_speedup": round(
                _geo_mean([row["speedup"] for row in deriv]), 3
            ),
            "geo_mean_instruction_ratio": round(
                _geo_mean([
                    row["baseline_instructions"]
                    / row["optimized_instructions"]
                    for row in deriv
                ]),
                3,
            ),
        }
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.opt",
        description="Emit BENCH_opt.json: validated before/after "
        "measurements for the repro.opt optimizer.",
    )
    parser.add_argument("--out", default="BENCH_opt.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        help="restrict to one benchmark (repeatable)",
    )
    arguments = parser.parse_args(argv)
    document = run_opt(repeats=arguments.repeats, names=arguments.only)
    with open(arguments.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {arguments.out}: geo-mean speedup "
        f"{document['geo_mean_speedup']}x (instruction ratio "
        f"{document['geo_mean_instruction_ratio']}x)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
