"""The published numbers from the paper, for side-by-side reporting.

Table 1: per-benchmark profile and timings on a Sun 3/60 —
Aquarius analyzer time (s), PLM compile time (s), static WAM code size,
abstract WAM instructions executed, the compiled analyzer's time (ms) and
the speed-up factor.

Table 2: speed ratios of the compiled analyzer across eight platforms,
normalized to the Aquarius analyzer on the Sun 3/60, plus the average
speed index per platform (last row of the paper's Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1."""

    name: str
    args: int
    preds: int
    aquarius_seconds: float
    plm_seconds: float
    size: int
    exec_count: int
    ours_ms: float
    speedup: int


TABLE1: List[PaperRow] = [
    PaperRow("log10", 3, 2, 2.9, 4.5, 179, 749, 38.6, 75),
    PaperRow("ops8", 3, 2, 3.0, 4.5, 180, 400, 23.3, 129),
    PaperRow("times10", 3, 2, 3.0, 4.5, 186, 971, 48.4, 62),
    PaperRow("divide10", 3, 2, 2.9, 4.6, 186, 1043, 50.7, 57),
    PaperRow("tak", 4, 2, 2.3, 1.2, 53, 110, 4.0, 575),
    PaperRow("nreverse", 5, 3, 2.2, 1.6, 99, 479, 26.7, 82),
    PaperRow("qsort", 7, 3, 3.4, 2.5, 164, 763, 44.0, 77),
    PaperRow("query", 7, 5, 4.2, 4.3, 264, 626, 25.8, 163),
    PaperRow("zebra", 9, 5, 3.5, 7.5, 271, 1262, 257.9, 14),
    PaperRow("serialise", 16, 7, 4.2, 3.6, 205, 912, 53.4, 79),
    PaperRow("queens_8", 16, 7, 6.0, 3.1, 117, 324, 16.5, 364),
]

TABLE1_BY_NAME: Dict[str, PaperRow] = {row.name: row for row in TABLE1}

#: The paper's reported arithmetic average of the speed-up factors.
TABLE1_AVERAGE_SPEEDUP = 152

#: Table 2 platforms: (label, average speed index relative to the
#: analyzer on the Sun 3/60).  The paper's last row.
PLATFORM_INDEXES: List[Tuple[str, float]] = [
    ("Aquarius 3/60", 0.007),
    ("Ours 3/60", 1.0),
    ("Mac IIx TC 4.0", 0.50),
    ("uVax 3100", 0.58),
    ("Vax 8530", 1.2),
    ("DecS 3100", 3.7),
    ("SS1+", 5.21),
    ("DecS 5000", 6.8),
    ("SS2", 9.0),
]

#: Table 2 body: per-benchmark speed ratios on each platform (the paper's
#: measured values, Aquarius-on-3/60 = 1).
TABLE2: Dict[str, List[float]] = {
    #              3/60  MacIIx uVax  Vax8530 DecS3100 SS1+  DecS5000  SS2
    "log10": [75, 37, 49, 86, 284, 363, 500, 630],
    "ops8": [129, 63, 59, 139, 469, 612, 833, 1034],
    "times10": [62, 30, 37, 71, 231, 294, 400, 500],
    "divide10": [57, 28, 34, 65, 215, 266, 372, 453],
    "tak": [575, 288, 383, 639, 2091, 3286, 3833, 5750],
    "nreverse": [82, 41, 56, 108, 297, 333, 595, 579],
    "qsort": [77, 38, 45, 95, 281, 318, 548, 540],
    "query": [163, 84, 60, 183, 618, 894, 1167, 1556],
    "zebra": [14, 5.7, 9.4, 16, 55, 63, 95, 107],
    "serialise": [79, 39, 47, 94, 296, 375, 538, 656],
    "queens_8": [364, 182, 200, 448, 1364, 1935, 2500, 3333],
}

TABLE2_PLATFORM_LABELS: List[str] = [
    "Ours 3/60",
    "Mac IIx",
    "uVax 3100",
    "Vax 8530",
    "DecS 3100",
    "SS1+",
    "DecS 5000",
    "SS2",
]
