"""Static profile of a benchmark, matching Table 1's descriptive columns.

``Args`` is the total number of argument places (sum of predicate
arities), ``Preds`` the number of predicates — both over the *source*
program, exactly how the paper profiles the benchmarks — and ``Size`` the
static instruction count of the compiled WAM code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..prolog.program import Program
from ..wam.compile import CompiledProgram


@dataclass(frozen=True)
class BenchmarkProfile:
    """Descriptive columns of one Table 1 row."""

    name: str
    args: int
    preds: int
    size: int
    clause_count: int


def profile_program(
    name: str, program: Program, compiled: CompiledProgram
) -> BenchmarkProfile:
    args = sum(indicator[1] for indicator in program.indicators())
    preds = len(program.indicators())
    return BenchmarkProfile(
        name=name,
        args=args,
        preds=preds,
        size=compiled.total_size(),
        clause_count=program.clause_count(),
    )
