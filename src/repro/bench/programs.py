"""The benchmark programs of Table 1 (Van Roy's PLM suite subset).

Each benchmark carries its Prolog source, the analysis entry spec, a
concrete goal for validating the compiled code on the real WAM, and a
smaller test goal for quick correctness checks.  The predicate structure
reproduces the paper's profile columns exactly: ``Args`` (total argument
places) and ``Preds`` (predicate count) match Table 1 row by row.

The sources are the classic formulations: Warren's symbolic
differentiation (``log10``/``ops8``/``times10``/``divide10``), ``tak``,
``nreverse``/``qsort``/``serialise``/``query`` from Warren's thesis
benchmarks, the five-houses ``zebra`` puzzle, and select-based
``queens_8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Benchmark:
    """One Table 1 benchmark."""

    name: str
    source: str
    #: analysis entry spec (see repro.analysis.driver).
    entry: str
    #: goal that runs the full benchmark on the concrete WAM.
    goal: str
    #: smaller goal with a checkable answer, for fast tests.
    test_goal: str
    #: expected binding (variable name, term text) for the test goal.
    test_expect: Optional[Tuple[str, str]]


_DERIV_RULES = """
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(- U, X, - DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
"""

LOG10 = Benchmark(
    name="log10",
    source=(
        "main :- d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, _).\n"
        + _DERIV_RULES
    ),
    entry="main",
    goal="main",
    test_goal="d(log(x), x, D)",
    test_expect=("D", "1 / x"),
)

OPS8 = Benchmark(
    name="ops8",
    source=(
        "main :- d((x + 1) * ((x ^ 2 + 2) * (x ^ 3 + 3)), x, _).\n" + _DERIV_RULES
    ),
    entry="main",
    goal="main",
    test_goal="d(x + 1, x, D)",
    test_expect=("D", "1 + 0"),
)

TIMES10 = Benchmark(
    name="times10",
    source=(
        "main :- d(((((((((x * x) * x) * x) * x) * x) * x) * x) * x) * x, x, _).\n"
        + _DERIV_RULES
    ),
    entry="main",
    goal="main",
    test_goal="d(x * x, x, D)",
    test_expect=("D", "1 * x + x * 1"),
)

DIVIDE10 = Benchmark(
    name="divide10",
    source=(
        "main :- d(((((((((x / x) / x) / x) / x) / x) / x) / x) / x) / x, x, _).\n"
        + _DERIV_RULES
    ),
    entry="main",
    goal="main",
    test_goal="d(x / x, x, D)",
    test_expect=("D", "(1 * x - x * 1) / x ^ 2"),
)

TAK = Benchmark(
    name="tak",
    source="""
main :- tak(18, 12, 6, _).
tak(X, Y, Z, A) :- X =< Y, !, Z = A.
tak(X, Y, Z, A) :-
    X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
    tak(X1, Y, Z, A1),
    tak(Y1, Z, X, A2),
    tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).
""",
    entry="main",
    goal="main",
    test_goal="tak(8, 4, 0, A)",
    test_expect=("A", "1"),
)

NREVERSE = Benchmark(
    name="nreverse",
    source="""
main :- nreverse([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,
                  21,22,23,24,25,26,27,28,29,30], _).
nreverse([], []).
nreverse([H|T], R) :- nreverse(T, RT), concatenate(RT, [H], R).
concatenate([], L, L).
concatenate([H|T], L, [H|R]) :- concatenate(T, L, R).
""",
    entry="main",
    goal="main",
    test_goal="nreverse([1,2,3,4,5], R)",
    test_expect=("R", "[5, 4, 3, 2, 1]"),
)

QSORT = Benchmark(
    name="qsort",
    source="""
main :- qsort([27,74,17,33,94,18,46,83,65,2,
               32,53,28,85,99,47,28,82,6,11,
               55,29,39,81,90,37,10,0,66,51,
               7,21,85,27,31,63,75,4,95,99,
               11,28,61,74,18,92,40,53,59,8], _, []).
qsort([], R, R).
qsort([X|L], R0, R) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R),
    qsort(L1, R0, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
""",
    entry="main",
    goal="main",
    test_goal="qsort([3,1,2], S, [])",
    test_expect=("S", "[1, 2, 3]"),
)

QUERY = Benchmark(
    name="query",
    source="""
main :- query(_), fail.
main.
query([C1, D1, C2, D2]) :-
    density(C1, D1),
    density(C2, D2),
    D1 > D2,
    T1 is 20 * D1,
    T2 is 21 * D2,
    T1 < T2.
density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.
pop(china, 8250).
pop(india, 5863).
pop(ussr, 2521).
pop(usa, 2119).
pop(indonesia, 1276).
pop(japan, 1097).
pop(brazil, 1042).
pop(bangladesh, 750).
pop(pakistan, 682).
pop(w_germany, 620).
pop(nigeria, 613).
pop(mexico, 581).
pop(uk, 559).
pop(italy, 554).
pop(france, 525).
pop(philippines, 415).
pop(thailand, 410).
pop(turkey, 383).
pop(egypt, 364).
pop(spain, 352).
pop(poland, 337).
pop(s_korea, 335).
pop(iran, 320).
pop(ethiopia, 272).
pop(argentina, 251).
area(china, 3380).
area(india, 1139).
area(ussr, 8708).
area(usa, 3609).
area(indonesia, 570).
area(japan, 148).
area(brazil, 3288).
area(bangladesh, 55).
area(pakistan, 311).
area(w_germany, 96).
area(nigeria, 373).
area(mexico, 764).
area(uk, 86).
area(italy, 116).
area(france, 213).
area(philippines, 90).
area(thailand, 200).
area(turkey, 296).
area(egypt, 386).
area(spain, 190).
area(poland, 121).
area(s_korea, 37).
area(iran, 628).
area(ethiopia, 350).
area(argentina, 1080).
""",
    entry="main",
    goal="main",
    test_goal="density(uk, D)",
    test_expect=("D", "650"),
)

ZEBRA = Benchmark(
    name="zebra",
    source="""
main :- zebra(_).
zebra(Houses) :-
    Houses = [house(_, norwegian, _, _, _),
              _,
              house(_, _, _, milk, _),
              _,
              _],
    member(house(red, englishman, _, _, _), Houses),
    member(house(_, spaniard, dog, _, _), Houses),
    member(house(green, _, _, coffee, _), Houses),
    member(house(_, ukrainian, _, tea, _), Houses),
    right_of(house(green, _, _, _, _), house(ivory, _, _, _, _), Houses),
    member(house(_, _, snails, _, old_gold), Houses),
    member(house(yellow, _, _, _, kools), Houses),
    next_to(house(_, _, _, _, chesterfield), house(_, _, fox, _, _), Houses),
    next_to(house(_, _, _, _, kools), house(_, _, horse, _, _), Houses),
    member(house(_, _, _, orange_juice, lucky_strike), Houses),
    member(house(_, japanese, _, _, parliament), Houses),
    next_to(house(blue, _, _, _, _), house(_, norwegian, _, _, _), Houses),
    member(house(_, _, zebra, _, _), Houses),
    member(house(_, _, _, water, _), Houses).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
right_of(A, B, [B, A | _]).
right_of(A, B, [_ | T]) :- right_of(A, B, T).
next_to(A, B, [A, B | _]).
next_to(A, B, [B, A | _]).
next_to(A, B, [_ | T]) :- next_to(A, B, T).
""",
    entry="main",
    goal="main",
    test_goal="member(X, [a, b, c])",
    test_expect=("X", "a"),
)

SERIALISE = Benchmark(
    name="serialise",
    source="""
main :- serialise("ABLE WAS I ERE I SAW ELBA", _).
serialise(L, R) :-
    pairlists(L, R, A),
    arrange(A, T),
    numbered(T, 1, _).
pairlists([X|L], [Y|R], [pair(X, Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).
arrange([X|L], tree(T1, X, T2)) :-
    split(L, X, L1, L2),
    arrange(L1, T1),
    arrange(L2, T2).
arrange([], void).
split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).
before(pair(X1, _), pair(X2, _)) :- X1 < X2.
numbered(tree(T1, pair(_, N1), T2), N0, N) :-
    numbered(T1, N0, N1),
    N2 is N1 + 1,
    numbered(T2, N2, N).
numbered(void, N, N).
""",
    entry="main",
    goal="main",
    test_goal='serialise("CAB", R)',
    test_expect=("R", "[3, 1, 2]"),
)

QUEENS_8 = Benchmark(
    name="queens_8",
    source="""
main :- queens(8, _).
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    select(Q, Unplaced, Unplaced1),
    not_attack(Safe, Q),
    place(Unplaced1, [Q|Safe], Qs).
not_attack(Xs, X) :- not_attack(Xs, X, 1).
not_attack([], _, _).
not_attack([Y|Ys], X, N) :-
    X =\\= Y + N,
    X =\\= Y - N,
    N1 is N + 1,
    not_attack(Ys, X, N1).
select(X, [X|Xs], Xs).
select(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
""",
    entry="main",
    goal="main",
    test_goal="queens(4, Qs)",
    test_expect=None,
)

#: Table 1 order.
BENCHMARKS: List[Benchmark] = [
    LOG10,
    OPS8,
    TIMES10,
    DIVIDE10,
    TAK,
    NREVERSE,
    QSORT,
    QUERY,
    ZEBRA,
    SERIALISE,
    QUEENS_8,
]

BY_NAME: Dict[str, Benchmark] = {bench.name: bench for bench in BENCHMARKS}


def get_benchmark(name: str) -> Benchmark:
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BY_NAME)}"
        ) from None
