"""Stress harness: the benchmark suite under a deliberately tight budget.

Runs every benchmark program's analysis with a small resource budget and
``on_budget="degrade"``, asserting the robustness contract end to end:

* no benchmark raises — every run returns an :class:`AnalysisResult`;
* every result is *sound*: for entries shared with an unbudgeted
  reference run, the budgeted success pattern is ⊒ the exact one;
* (with ``--expect-degraded``) at least one run actually degraded, so
  the budget was tight enough to exercise the degradation path.

Exit status 0 when the contract holds, 1 otherwise.  Used by CI::

    python -m repro.bench.stress --max-steps 300 --expect-degraded
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..analysis.driver import Analyzer
from ..analysis.patterns import pattern_to_trees
from ..domain.lattice import tree_leq
from ..robust import Budget
from .programs import BENCHMARKS


def _sound_against(exact_result, loose_result) -> List[str]:
    """Soundness violations of ``loose_result`` w.r.t. ``exact_result``:
    entries present in both where the loose success is NOT ⊒ exact."""
    problems: List[str] = []
    for indicator, exact_entry in exact_result.table.all_entries():
        loose_entry = loose_result.table.find(indicator, exact_entry.calling)
        if loose_entry is None:
            # The budgeted run never reached this pattern; nothing claimed.
            continue
        if exact_entry.success is None:
            continue  # failure: any loose claim over-approximates it
        if loose_entry.success is None:
            problems.append(
                f"{indicator}: budgeted run claims failure, exact succeeds"
            )
            continue
        exact_trees = pattern_to_trees(exact_entry.success)
        loose_trees = pattern_to_trees(loose_entry.success)
        for position, (exact_tree, loose_tree) in enumerate(
            zip(exact_trees, loose_trees)
        ):
            if not tree_leq(exact_tree, loose_tree):
                problems.append(
                    f"{indicator} arg {position + 1}: budgeted success "
                    "is not ⊒ the exact one"
                )
    return problems


def run_stress(
    max_steps: Optional[int] = 2000,
    max_iterations: Optional[int] = None,
    table_limit: Optional[int] = None,
    deadline: Optional[float] = None,
    expect_degraded: bool = False,
    out=None,
) -> int:
    """Run the suite; return the process exit status (0 = contract holds)."""
    if out is None:
        out = sys.stdout
    degraded = 0
    failures: List[str] = []
    for benchmark in BENCHMARKS:
        exact = Analyzer(benchmark.source).analyze([benchmark.entry])
        budget = Budget(
            max_steps=max_steps,
            max_iterations=max_iterations,
            max_table_entries=table_limit,
            deadline=deadline,
        )
        try:
            loose = Analyzer(
                benchmark.source, budget=budget, on_budget="degrade"
            ).analyze([benchmark.entry])
        except Exception as error:  # the contract is "never raises"
            failures.append(f"{benchmark.name}: raised {error!r}")
            continue
        problems = _sound_against(exact, loose)
        failures.extend(f"{benchmark.name}: {p}" for p in problems)
        line = f"{benchmark.name:12s} {loose.status:9s}"
        if loose.status != "exact":
            degraded += 1
            line += f" ({loose.entry_reports[0].reason})"
        print(line, file=out)
    print(
        f"{len(BENCHMARKS)} benchmarks, {degraded} degraded, "
        f"{len(failures)} contract violation(s)",
        file=out,
    )
    for failure in failures:
        print(f"VIOLATION: {failure}", file=out)
    if failures:
        return 1
    if expect_degraded and degraded == 0:
        print(
            "VIOLATION: --expect-degraded, but no benchmark degraded "
            "(budget too generous to exercise the degradation path)",
            file=out,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.stress",
        description="Benchmark suite under a tight budget (robustness check)",
    )
    parser.add_argument("--max-steps", type=int, default=2000, metavar="N")
    parser.add_argument("--max-iterations", type=int, default=None, metavar="N")
    parser.add_argument("--table-limit", type=int, default=None, metavar="N")
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS"
    )
    parser.add_argument(
        "--expect-degraded", action="store_true",
        help="fail unless at least one benchmark degraded",
    )
    arguments = parser.parse_args(argv)
    return run_stress(
        max_steps=arguments.max_steps,
        max_iterations=arguments.max_iterations,
        table_limit=arguments.table_limit,
        deadline=arguments.deadline,
        expect_degraded=arguments.expect_degraded,
    )


if __name__ == "__main__":
    sys.exit(main())
