"""Regenerates the paper's Table 1: "The Efficiency of Dataflow Analyzers".

For every benchmark we measure:

* ``Baseline`` — the Prolog-hosted analyzer of
  :mod:`repro.baselines.prolog_analyzer` (the stand-in for "Aquarius under
  Quintus"; ``baseline="transform"`` and ``baseline="meta"`` select the
  other implementation styles);
* ``Compile`` — our clause-to-WAM compilation time (the paper's PLM
  column);
* ``Size`` — static WAM code size, ``Exec`` — abstract WAM instructions
  executed to reach the fixpoint;
* ``Ours`` — the compiled analyzer's time;
* ``Speed-Up`` — baseline / ours, with the arithmetic average in the last
  row exactly like the paper.

Times are the minimum over ``repeats`` runs (analysis only, no parsing or
compilation, matching the paper's exclusion of preprocessing time).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..analysis.driver import Analyzer
from ..prolog.program import Program
from ..wam.compile import CompilerOptions, compile_program
from .paper_data import TABLE1_BY_NAME, TABLE1_AVERAGE_SPEEDUP
from .profile import BenchmarkProfile, profile_program
from .programs import BENCHMARKS, Benchmark, get_benchmark


@dataclass
class Table1Row:
    """One measured row."""

    name: str
    args: int
    preds: int
    baseline_seconds: float
    compile_seconds: float
    size: int
    exec_count: int
    ours_seconds: float
    iterations: int

    @property
    def speedup(self) -> float:
        if self.ours_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.ours_seconds


def _make_baseline(kind: str, source: str):
    if kind == "prolog":
        from ..baselines.prolog_analyzer import PrologAnalyzer

        return PrologAnalyzer(source)
    if kind == "transform":
        from ..baselines.transform import TransformAnalyzer

        return TransformAnalyzer(source)
    if kind == "meta":
        from ..baselines.meta import MetaAnalyzer

        return MetaAnalyzer(source)
    raise ValueError(f"unknown baseline {kind!r} (prolog/transform/meta)")


def measure_benchmark(
    benchmark: Benchmark,
    repeats: int = 3,
    baseline: str = "prolog",
    options: Optional[CompilerOptions] = None,
) -> Table1Row:
    """Measure one Table 1 row."""
    program = Program.from_text(benchmark.source)
    compile_times = []
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        compiled = compile_program(
            Program.from_text(benchmark.source), options
        )
        compile_times.append(time.perf_counter() - started)
    analyzer = Analyzer(compiled)
    ours_times = []
    result = None
    for _ in range(max(repeats, 1)):
        result = analyzer.analyze([benchmark.entry])
        ours_times.append(result.seconds)
    assert result is not None
    baseline_times = []
    for _ in range(max(repeats, 1)):
        baseline_result = _make_baseline(baseline, benchmark.source).analyze(
            [benchmark.entry]
        )
        baseline_times.append(baseline_result.seconds)
    profile = profile_program(benchmark.name, program, compiled)
    return Table1Row(
        name=benchmark.name,
        args=profile.args,
        preds=profile.preds,
        baseline_seconds=min(baseline_times),
        compile_seconds=min(compile_times),
        size=profile.size,
        exec_count=result.instructions_executed,
        ours_seconds=min(ours_times),
        iterations=result.iterations,
    )


def run_table1(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    baseline: str = "prolog",
    options: Optional[CompilerOptions] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Table1Row]:
    benchmarks = (
        [get_benchmark(name) for name in names] if names else list(BENCHMARKS)
    )
    rows = []
    for benchmark in benchmarks:
        if progress is not None:
            progress(benchmark.name)
        rows.append(
            measure_benchmark(
                benchmark, repeats=repeats, baseline=baseline, options=options
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row], show_paper: bool = True) -> str:
    """Render measured rows (and the paper's, for comparison)."""
    header = (
        f"{'Benchmark':10s} {'Args':>4s} {'Preds':>5s} {'Baseline':>10s} "
        f"{'Compile':>9s} {'Size':>5s} {'Exec':>6s} {'Ours':>9s} "
        f"{'Speed-Up':>8s}"
    )
    lines = [header, "-" * len(header)]
    speedups = []
    for row in rows:
        speedups.append(row.speedup)
        lines.append(
            f"{row.name:10s} {row.args:4d} {row.preds:5d} "
            f"{row.baseline_seconds * 1000:8.1f}ms "
            f"{row.compile_seconds * 1000:7.1f}ms {row.size:5d} "
            f"{row.exec_count:6d} {row.ours_seconds * 1000:7.2f}ms "
            f"{row.speedup:8.1f}"
        )
    average = sum(speedups) / len(speedups) if speedups else 0.0
    lines.append(f"{'average':10s} {'':4s} {'':5s} {'':10s} {'':9s} {'':5s} {'':6s} {'':9s} {average:8.1f}")
    if show_paper:
        lines.append("")
        lines.append("paper (Sun 3/60, Aquarius under Quintus 2.0):")
        paper_header = (
            f"{'Benchmark':10s} {'Args':>4s} {'Preds':>5s} {'Aquarius':>10s} "
            f"{'PLM':>9s} {'Size':>5s} {'Exec':>6s} {'Ours':>9s} "
            f"{'Speed-Up':>8s}"
        )
        lines.append(paper_header)
        lines.append("-" * len(paper_header))
        for row in rows:
            paper = TABLE1_BY_NAME.get(row.name)
            if paper is None:
                continue
            lines.append(
                f"{paper.name:10s} {paper.args:4d} {paper.preds:5d} "
                f"{paper.aquarius_seconds * 1000:8.1f}ms "
                f"{paper.plm_seconds * 1000:7.1f}ms {paper.size:5d} "
                f"{paper.exec_count:6d} {paper.ours_ms:7.2f}ms "
                f"{paper.speedup:8d}"
            )
        lines.append(
            f"{'average':10s} {'':>52s} {TABLE1_AVERAGE_SPEEDUP:19d}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Table 1")
    parser.add_argument("names", nargs="*", help="benchmark subset")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--baseline",
        default="prolog",
        choices=["prolog", "transform", "meta"],
        help="which baseline analyzer stands in for Aquarius",
    )
    parser.add_argument("--no-paper", action="store_true")
    arguments = parser.parse_args(argv)
    rows = run_table1(
        arguments.names or None,
        repeats=arguments.repeats,
        baseline=arguments.baseline,
        progress=lambda name: print(f"measuring {name} ...", flush=True),
    )
    print(format_table1(rows, show_paper=not arguments.no_paper))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
