"""Regenerates the paper's Table 2: "Speed Ratios on Various Platforms".

Table 2 is a ratio table: for each benchmark, the compiled analyzer's
speed relative to the Aquarius analyzer on a Sun 3/60, measured on eight
early-90s machines.  We have none of those machines, so the reproduction
follows the substitution documented in DESIGN.md: the *measured* speed-up
of this implementation (ours vs the Prolog-hosted baseline, both on the
local machine) provides the first column, and the remaining columns are
projected with the paper's own per-platform speed indexes (the ``Index``
row of Table 2) — which is also exactly how the paper says the per-platform
times can be recalculated ("they can be recalculated based on the figures
given in Table 1").

The shape to check: column ratios grow with the platform index, ``zebra``
stays the slowest row and ``tak`` the fastest, spanning roughly 1.5 orders
of magnitude.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .paper_data import (
    PLATFORM_INDEXES,
    TABLE2,
    TABLE2_PLATFORM_LABELS,
)
from .table1 import Table1Row, run_table1


@dataclass
class Table2Row:
    """One benchmark's projected speed ratios across platforms."""

    name: str
    ratios: List[float]


def project_table2(rows: Sequence[Table1Row]) -> List[Table2Row]:
    """Project measured speed-ups across the paper's platform indexes."""
    indexes = [index for label, index in PLATFORM_INDEXES if label != "Aquarius 3/60"]
    projected = []
    for row in rows:
        base = row.speedup
        projected.append(
            Table2Row(row.name, [base * index for index in indexes])
        )
    return projected


def format_table2(
    projected: Sequence[Table2Row], show_paper: bool = True
) -> str:
    labels = TABLE2_PLATFORM_LABELS
    header = f"{'Benchmark':10s}" + "".join(f" {label:>10s}" for label in labels)
    lines = ["projected from measured speed-ups (see DESIGN.md):", header,
             "-" * len(header)]
    sums = [0.0] * len(labels)
    for row in projected:
        cells = "".join(f" {ratio:10.1f}" for ratio in row.ratios)
        lines.append(f"{row.name:10s}{cells}")
        for position, ratio in enumerate(row.ratios):
            sums[position] += ratio
    averages = [total / len(projected) for total in sums] if projected else []
    lines.append(
        f"{'average':10s}" + "".join(f" {avg:10.1f}" for avg in averages)
    )
    if show_paper:
        lines.append("")
        lines.append("paper's measured Table 2:")
        lines.append(header)
        lines.append("-" * len(header))
        paper_sums = [0.0] * len(labels)
        count = 0
        for row in projected:
            paper_row = TABLE2.get(row.name)
            if paper_row is None:
                continue
            count += 1
            cells = "".join(f" {value:10.1f}" for value in paper_row)
            lines.append(f"{row.name:10s}{cells}")
            for position, value in enumerate(paper_row):
                paper_sums[position] += value
        if count:
            lines.append(
                f"{'average':10s}"
                + "".join(f" {total / count:10.1f}" for total in paper_sums)
            )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Table 2")
    parser.add_argument("names", nargs="*", help="benchmark subset")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--baseline", default="prolog",
                        choices=["prolog", "transform", "meta"])
    parser.add_argument("--no-paper", action="store_true")
    arguments = parser.parse_args(argv)
    rows = run_table1(
        arguments.names or None,
        repeats=arguments.repeats,
        baseline=arguments.baseline,
        progress=lambda name: print(f"measuring {name} ...", flush=True),
    )
    print(format_table2(project_table2(rows), show_paper=not arguments.no_paper))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
