"""Command line entry points.

``repro-analyze file.pl "main(g, var)"`` — run the compiled dataflow
analysis and print the mode/type/aliasing report (``--lint`` appends the
lint report).

``repro-prolog file.pl "goal(X)"`` — compile a program to WAM code and run
a query on the concrete machine (``--engine solver`` uses the SLD solver,
``--listing`` prints the WAM code instead of running).

``repro-lint file.pl "main(g, var)"`` — verify the compiled bytecode and
lint the source against the analysis; exit status 1 when any
error-severity diagnostic (or a syntax error) is found, 0 otherwise.

``repro-optimize file.pl "main(g, var)" --goal "main(t, R)"`` — run the
repro.opt pipeline (dead-clause elimination, forced first-argument
indexing, get/unify specialization) and *validate* the result: the
optimized code area must be verifier-clean and every ``--goal`` must
produce identical solutions on the original and optimized programs;
exit status 1 on any verifier diagnostic or divergence.

``repro-fuzz --seed 42 --count 200`` — a deterministic differential
fuzzing campaign: generated and mutated programs are checked by the
oracle battery (execution agreement, soundness, lattice agreement,
optimizer validation, incremental serve), violations are shrunk to
minimal reproducers, and the summary lands in ``BENCH_fuzz.json``;
exit status 1 on any violation (see docs/fuzz.md).

``repro-trace check|stitch|html trace.jsonl`` — inspect a span trace:
validate the stitched multi-process invariants, merge the per-process
records into one tree, or render the self-contained HTML time-travel
viewer (see docs/tracing.md).

``repro-serve`` — the analysis service: JSON-lines requests on stdin
(or ``--batch file.pl ...`` for a one-shot run), content-addressed
result caching and incremental re-analysis; ``--workers N`` executes
requests in supervised, crash-isolated worker subprocesses with
``--request-timeout`` / ``--max-retries`` policy, and ``--journal``
arms the self-healing on-disk store (see docs/serve.md).

The commands share one loader and one set of argument groups, so
flags mean the same thing everywhere.  All three catch library errors
(:class:`~repro.errors.ReproError`) and I/O errors at top level: one
line on stderr, exit status 2 — never a traceback.  Resource limits
(``--max-steps``, ``--deadline``, ...) are available everywhere; the
analysis commands default to ``--on-budget=degrade``, reporting a sound
⊤-widened result instead of dying when a limit trips.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Optional, Sequence

from .analysis.driver import Analyzer
from .errors import ReproError
from .prolog.library import with_library
from .prolog.parser import parse_term
from .prolog.program import Program
from .prolog.solver import Solver
from .prolog.writer import term_to_text
from .robust import Budget
from .wam.compile import CompilerOptions, compile_program
from .wam.listing import disassemble
from .wam.machine import Machine


def _guard(command: Callable[[argparse.Namespace], int], prog: str):
    """Run a command body; library and I/O failures become exit code 2
    with a one-line message instead of a traceback."""

    def main(argv: Optional[Sequence[str]] = None) -> int:
        try:
            return command(argv)
        except (ReproError, OSError) as error:
            print(f"{prog}: error: {error}", file=sys.stderr)
            return 2

    return main


def _load_program(path: str, use_library: bool) -> Program:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if use_library:
        return with_library(text)
    return Program.from_text(text)


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every command that reads a Prolog file."""
    parser.add_argument("file", help="Prolog source file")
    parser.add_argument("--library", action="store_true", help="add list library")


def _add_budget_arguments(
    parser: argparse.ArgumentParser, analysis: bool = True
) -> None:
    """Resource-limit flags (see repro.robust.Budget)."""
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="abstract/concrete machine step limit",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock limit for the whole run",
    )
    if analysis:
        parser.add_argument(
            "--max-iterations", type=int, default=100, metavar="N",
            help="fixpoint iteration limit (default 100)",
        )
        parser.add_argument(
            "--table-limit", type=int, default=None, metavar="N",
            help="extension-table entry limit",
        )
        parser.add_argument(
            "--on-budget", default="degrade", choices=["degrade", "raise"],
            help="when a limit trips: degrade soundly to ⊤ (default) "
            "or raise",
        )


def _budget_from(arguments: argparse.Namespace) -> Optional[Budget]:
    """A Budget from the parsed flags, or None when nothing was limited."""
    max_iterations = getattr(arguments, "max_iterations", None)
    table_limit = getattr(arguments, "table_limit", None)
    if (
        arguments.max_steps is None
        and arguments.deadline is None
        and table_limit is None
        and (max_iterations is None or max_iterations == 100)
    ):
        return None
    return Budget(
        max_steps=arguments.max_steps,
        max_iterations=max_iterations,
        max_table_entries=table_limit,
        deadline=arguments.deadline,
    )


def _add_analysis_arguments(
    parser: argparse.ArgumentParser, on_undefined_default: str = "error"
) -> None:
    """Arguments shared by the analysis-running commands."""
    parser.add_argument(
        "entries",
        nargs="+",
        help='entry calling patterns, e.g. "main" or "nrev(glist, var)"',
    )
    parser.add_argument("--depth", type=int, default=4, help="term-depth limit")
    parser.add_argument(
        "--no-trimming", action="store_true", help="disable environment trimming"
    )
    parser.add_argument(
        "--subsumption", action="store_true",
        help="reuse summaries of more general explored patterns",
    )
    parser.add_argument(
        "--on-undefined",
        default=on_undefined_default,
        choices=["error", "fail", "top"],
        help="policy for calls to undefined predicates",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    _add_budget_arguments(parser)


def _build_analyzer(arguments: argparse.Namespace, program: Program) -> Analyzer:
    options = CompilerOptions(environment_trimming=not arguments.no_trimming)
    return Analyzer(
        program,
        options=options,
        depth=arguments.depth,
        max_iterations=arguments.max_iterations,
        subsumption=arguments.subsumption,
        on_undefined=arguments.on_undefined,
        budget=_budget_from(arguments),
        on_budget=arguments.on_budget,
    )


def _cli_checkpoint_config(arguments: argparse.Namespace) -> str:
    """The identity fingerprint under which CLI snapshots are written:
    every knob that changes what the fixpoint computes."""
    return (
        f"cli:depth={arguments.depth}"
        f":trimming={not arguments.no_trimming}"
        f":subsumption={arguments.subsumption}"
        f":on_undefined={arguments.on_undefined}"
    )


def _checkpoint_setup(arguments: argparse.Namespace, analyzer: Analyzer):
    """Build the (policy, resume snapshot) pair for --checkpoint /
    --resume; (None, None) when neither flag is given."""
    if arguments.checkpoint is None and arguments.resume is None:
        return None, None
    import os

    from .robust import checkpoint as ckpt

    config_fp = _cli_checkpoint_config(arguments)
    entries = sorted(str(entry) for entry in arguments.entries)
    resume_data = None
    if arguments.resume is not None:
        try:
            with open(arguments.resume, "r", encoding="utf-8") as handle:
                candidate = json.load(handle)
        except (OSError, ValueError) as error:
            print(
                f"warning: cannot read --resume {arguments.resume}: "
                f"{error}; starting from scratch",
                file=sys.stderr,
            )
            candidate = None
        if candidate is not None:
            resume_data = ckpt.load(candidate, config=config_fp)
            if resume_data is None:
                print(
                    "warning: --resume snapshot is damaged or was taken "
                    "under different analysis settings; ignoring it",
                    file=sys.stderr,
                )
            elif resume_data.get("entries") != entries:
                print(
                    "warning: --resume snapshot was taken for different "
                    "entries; ignoring it",
                    file=sys.stderr,
                )
                resume_data = None
    policy = None
    if arguments.checkpoint is not None:
        path = arguments.checkpoint

        def sink(snap: dict) -> None:
            temp = path + ".tmp"
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(snap, handle, sort_keys=True)
            os.replace(temp, path)  # a reader never sees a torn file

        policy = ckpt.CheckpointPolicy(
            sink,
            every=max(1, arguments.checkpoint_every),
            budget=analyzer.budget,
            config=config_fp,
            entries=entries,
            base_iterations=ckpt.cursor_iterations(resume_data),
            attempts=(
                resume_data["cursor"].get("attempts", 0) + 1
                if resume_data else 1
            ),
        )
    return policy, resume_data


def _analyze_command(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Compiled dataflow analysis of a Prolog program",
    )
    _add_source_arguments(parser)
    _add_analysis_arguments(parser)
    parser.add_argument(
        "--table", action="store_true", help="print the raw extension table too"
    )
    parser.add_argument(
        "--specialize", action="store_true",
        help="print the WAM specialization report",
    )
    parser.add_argument(
        "--parallel", action="store_true",
        help="print the and-parallelism annotation",
    )
    parser.add_argument(
        "--deadcode", action="store_true", help="print the dead-code report"
    )
    parser.add_argument(
        "--optimize", action="store_true",
        help="run the repro.opt pipeline and print the optimization "
        "report (verifier status included; repro-optimize adds "
        "differential validation)",
    )
    parser.add_argument(
        "--lint", action="store_true", help="print the lint report too"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect metrics and print the per-opcode-class and "
        "per-predicate cost tables (see docs/observability.md)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a JSON-lines span trace to PATH ('-' for stderr)",
    )
    parser.add_argument(
        "--trace-states", type=int, default=0, metavar="N",
        help="with --trace-out: embed up to N per-pass extension-table "
        "state dumps in the trace, the data behind the viewer's "
        "time-travel panel (see docs/tracing.md; default 0 = off)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="snapshot the extension table to PATH every "
        "--checkpoint-every fixpoint passes (and at a budget degrade), "
        "so an interrupted run can --resume instead of restarting",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help="checkpoint cadence in fixpoint passes (default 16; "
        "needs --checkpoint)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="seed the fixpoint from a snapshot written by --checkpoint "
        "(validated: a snapshot from different analysis settings or "
        "entries is ignored with a warning)",
    )
    arguments = parser.parse_args(argv)
    program = _load_program(arguments.file, arguments.library)
    analyzer = _build_analyzer(arguments, program)
    checkpoint_policy, resume_data = _checkpoint_setup(arguments, analyzer)
    tracer = None
    if arguments.trace_out is not None:
        from .obs import Tracer

        tracer = Tracer(arguments.trace_out)
        analyzer.tracer = tracer
        analyzer.trace_states = max(0, arguments.trace_states)
    metrics = None
    if arguments.profile:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
        analyzer.metrics = metrics
    try:
        result = analyzer.analyze(
            arguments.entries,
            checkpoint=checkpoint_policy,
            resume=resume_data,
        )
    finally:
        if tracer is not None:
            tracer.close()
    if arguments.json:
        report = result.to_dict()
        if metrics is not None:
            report["metrics"] = metrics.snapshot()
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(result.to_text())
    if metrics is not None:
        from .obs import format_profile

        print()
        print(format_profile(metrics.snapshot()))
    if arguments.table:
        print()
        print(result.table_text())
    if arguments.specialize:
        from .optimize import specialize

        print()
        print(specialize(analyzer.compiled, result).to_text())
    if arguments.parallel:
        from .optimize import annotate_parallelism

        print()
        print(annotate_parallelism(program, result).to_text())
    if arguments.deadcode:
        from .optimize import find_dead_code

        print()
        print(find_dead_code(program, result).to_text())
    if arguments.optimize:
        from .lint.verifier import verify_code
        from .opt import optimize_program

        optimized = optimize_program(analyzer.compiled, result)
        print()
        print(optimized.report.to_text())
        errors = verify_code(optimized.compiled.code)
        print(
            "% verifier: optimized code is clean"
            if not errors
            else f"% verifier: {len(errors)} diagnostic(s) on optimized code"
        )
    if arguments.lint:
        from .lint import lint_source, verify_compiled
        from .lint.diagnostics import LintReport

        report = LintReport()
        report.extend(verify_compiled(analyzer.compiled, file=arguments.file))
        report.extend(lint_source(program, result, file=arguments.file))
        report.sort()
        print()
        print(report.to_text())
    return 0


def _lint_command(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static diagnostics: WAM bytecode verification plus "
            "analysis-driven source linting"
        ),
    )
    _add_source_arguments(parser)
    _add_analysis_arguments(parser, on_undefined_default="top")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the bytecode verifier pass",
    )
    parser.add_argument(
        "--no-source", action="store_true", help="skip the source rules"
    )
    arguments = parser.parse_args(argv)
    from .lint import LintOptions, lint_file

    options = LintOptions(
        depth=arguments.depth,
        subsumption=arguments.subsumption,
        on_undefined=arguments.on_undefined,
        environment_trimming=not arguments.no_trimming,
        verify=not arguments.no_verify,
        source=not arguments.no_source,
        budget=_budget_from(arguments),
        on_budget=arguments.on_budget,
    )
    report = lint_file(
        arguments.file,
        arguments.entries,
        library=arguments.library,
        options=options,
    )
    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.to_text())
    return 1 if report.has_errors else 0


def _optimize_command(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description=(
            "Analysis-driven WAM optimization with translation "
            "validation: dead clauses dropped, first-argument dispatch "
            "forced, get/unify instructions specialized; the optimized "
            "code must pass the bytecode verifier and produce the same "
            "solutions as the original on every --goal"
        ),
    )
    _add_source_arguments(parser)
    _add_analysis_arguments(parser)
    parser.add_argument(
        "--goal", action="append", default=None, metavar="GOAL",
        help="validation goal (repeatable); each goal is also folded "
        "into the analysis entries so the facts cover it",
    )
    parser.add_argument(
        "--max-solutions", type=int, default=None, metavar="N",
        help="cap the solutions compared per goal",
    )
    parser.add_argument(
        "--listing", action="store_true",
        help="print the optimized WAM code listing too",
    )
    arguments = parser.parse_args(argv)
    from .opt import goal_entry_specs, optimize_program, validate

    program = _load_program(arguments.file, arguments.library)
    analyzer = _build_analyzer(arguments, program)
    goals = [parse_term(text) for text in (arguments.goal or [])]
    entries: list = list(arguments.entries)
    for goal in goals:
        entries.extend(goal_entry_specs(analyzer.compiled.program, goal))
    result = analyzer.analyze(entries)
    optimized = optimize_program(analyzer.compiled, result)
    report = validate(
        analyzer.compiled,
        optimized.compiled,
        goals,
        max_solutions=arguments.max_solutions,
    )
    if arguments.json:
        document = {
            "optimization": optimized.report.to_dict(),
            "validation": {
                "ok": report.ok,
                "diagnostics": [d.to_dict() for d in report.diagnostics],
                "goals": [
                    {
                        "goal": goal.goal,
                        "solutions": goal.solutions,
                        "matches": goal.matches,
                        "detail": goal.detail,
                    }
                    for goal in report.goals
                ],
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(optimized.report.to_text())
    print()
    print(report.to_text())
    if arguments.listing:
        print()
        print(disassemble(optimized.compiled.code))
    return 0 if report.ok else 1


def _prolog_command(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-prolog",
        description="Run a Prolog query on the WAM (or the SLD solver)",
    )
    _add_source_arguments(parser)
    parser.add_argument("goal", nargs="?", default="main", help="query goal")
    parser.add_argument(
        "--engine", default="wam", choices=["wam", "solver"]
    )
    parser.add_argument(
        "--all", action="store_true", help="print all solutions (default: first)"
    )
    parser.add_argument(
        "--listing", action="store_true", help="print WAM code and exit"
    )
    _add_budget_arguments(parser, analysis=False)
    arguments = parser.parse_args(argv)
    program = _load_program(arguments.file, arguments.library)
    goal = parse_term(arguments.goal)
    if arguments.listing:
        compiled = compile_program(program)
        print(disassemble(compiled.code))
        return 0
    budget = None
    if arguments.max_steps is not None or arguments.deadline is not None:
        budget = Budget(
            max_steps=arguments.max_steps, deadline=arguments.deadline
        ).start()
    if arguments.engine == "wam":
        machine = Machine(compile_program(program))
        if budget is not None:
            machine.step_monitor = budget.charge_step
        solutions = machine.run(goal)
        output_source = machine
    else:
        solver = Solver(program, budget=budget)
        if budget is not None and arguments.max_steps is not None:
            solver.max_steps = arguments.max_steps
        solutions = solver.solve(goal)
        output_source = solver
    found = 0
    for solution in solutions:
        found += 1
        if solution:
            bindings = ", ".join(
                f"{name} = {term_to_text(value)}"
                for name, value in solution.items()
            )
            print(bindings)
        else:
            print("true")
        if not arguments.all:
            break
    if not found:
        print("false")
    text = "".join(output_source.output)
    if text:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
    return 0 if found else 1


def _serve_gateway(arguments, service_config) -> int:
    """``repro-serve --listen``: run the sharded TCP gateway until a
    ``shutdown`` request (or Ctrl-C) drains it."""
    import asyncio

    from .serve.gateway import Gateway, GatewayConfig
    from .serve.service import MAX_REQUEST_LINE

    host, _, port = arguments.listen.rpartition(":")
    try:
        port_number = int(port)
    except ValueError:
        raise ReproError(
            f"--listen expects [HOST:]PORT, got {arguments.listen!r}"
        ) from None
    config = GatewayConfig(
        host=host or "127.0.0.1",
        port=port_number,
        shards=arguments.shards,
        workers=arguments.workers,
        queue_depth=arguments.queue_depth,
        degrade_depth=arguments.degrade_depth,
        max_line_bytes=(
            arguments.max_line_bytes
            if arguments.max_line_bytes is not None else MAX_REQUEST_LINE
        ),
        request_timeout=arguments.request_timeout,
        max_retries=arguments.max_retries,
    )
    gateway = Gateway(config, service_config, trace_path=arguments.trace_out)

    async def _run() -> None:
        host_bound, port_bound = await gateway.start()
        print(
            json.dumps({
                "listening": f"{host_bound}:{port_bound}",
                "shards": config.shards,
                "workers_per_shard": config.workers,
            }, sort_keys=True),
            flush=True,
        )
        try:
            await gateway.serve_until_stopped()
        finally:
            await gateway.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _serve_command(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Analysis service: JSON-lines requests on stdin (default) "
            "or a batch run over files; results are cached by content "
            "fingerprint and re-analysis is incremental per SCC"
        ),
    )
    parser.add_argument(
        "files", nargs="*",
        help="Prolog files for --batch mode (default: serve stdin)",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="analyze the given files and exit instead of serving stdin",
    )
    parser.add_argument(
        "--entry", action="append", default=None, metavar="PATTERN",
        help='entry calling pattern for --batch (repeatable), '
        'e.g. "main(g, var)"',
    )
    parser.add_argument(
        "--passes", type=int, default=2, metavar="N",
        help="batch passes over the files (default 2; the second "
        "should hit the cache)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist results on disk under DIR",
    )
    parser.add_argument(
        "--journal", action="store_true",
        help="write-ahead journal for the --store directory: torn "
        "writes are repaired on startup, corrupt entries quarantined",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run each request in one of N supervised worker "
        "subprocesses (crash isolation; 0 = in-process, the default)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock cap; a worker still busy past it "
        "(+ grace) is SIGKILLed and the request answered with a "
        "structured error (needs --workers)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="crash retries per request before a structured retriable "
        "error is returned (default 2; needs --workers)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help="snapshot a running fixpoint's extension table every N "
        "passes (plus once near the budget deadline) so crashed or "
        "budget-tripped requests resume instead of restarting "
        "(default 16; 0 disables checkpointing)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=1024, metavar="N",
        help="in-memory store entry cap (default 1024)",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024, metavar="N",
        help="in-memory store byte cap (default 64 MiB)",
    )
    parser.add_argument("--library", action="store_true", help="add list library")
    parser.add_argument("--depth", type=int, default=4, help="term-depth limit")
    parser.add_argument(
        "--no-trimming", action="store_true", help="disable environment trimming"
    )
    parser.add_argument(
        "--subsumption", action="store_true",
        help="reuse summaries of more general explored patterns",
    )
    parser.add_argument(
        "--on-undefined", default="error", choices=["error", "fail", "top"],
        help="policy for calls to undefined predicates",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a JSON-lines span trace to PATH ('-' for stderr); "
        "with --workers or --listen this is a *stitched* cross-process "
        "trace — inspect it with repro-trace (see docs/tracing.md)",
    )
    parser.add_argument(
        "--max-line-bytes", type=int, default=None, metavar="N",
        help="longest accepted request line in bytes (default 10 MiB); "
        "longer lines are drained and answered with a structured error",
    )
    parser.add_argument(
        "--listen", default=None, metavar="[HOST:]PORT",
        help="serve a TCP gateway instead of stdin: JSON lines over a "
        "socket, routed by consistent-hashed program fingerprint "
        "across --shards backends with admission control and load "
        "shedding (see docs/serve.md)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="gateway shards, each with its own workers and store "
        "partition (default 2; needs --listen)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="per-shard admission cap; requests beyond it are shed "
        "with a structured error (default 64; needs --listen)",
    )
    parser.add_argument(
        "--degrade-depth", type=int, default=None, metavar="N",
        help="queue depth at which admitted requests get the tightened "
        "degrade budget (default: half of --queue-depth)",
    )
    _add_budget_arguments(parser)
    arguments = parser.parse_args(argv)
    from .serve import AnalysisService, ServiceConfig, run_batch, serve_loop

    service_config = ServiceConfig(
        depth=arguments.depth,
        list_aware=True,
        subsumption=arguments.subsumption,
        on_undefined=arguments.on_undefined,
        environment_trimming=not arguments.no_trimming,
        library=arguments.library,
        budget=_budget_from(arguments),
        max_entries=arguments.cache_entries,
        max_bytes=arguments.cache_bytes,
        store_dir=arguments.store,
        journal=arguments.journal,
        checkpoint_every=(
            arguments.checkpoint_every if arguments.checkpoint_every > 0
            else None
        ),
    )
    if arguments.listen is not None:
        return _serve_gateway(arguments, service_config)
    tracer = None
    if arguments.trace_out is not None:
        from .obs import Tracer

        # Supervised mode stitches worker spans under the supervisor's
        # track, so the tracer needs a process name; in-process mode
        # keeps the plain single-process trace.
        tracer = Tracer(
            arguments.trace_out,
            process="supervisor-0" if arguments.workers > 0 else None,
        )
    if arguments.workers > 0:
        from .serve import Supervisor, SupervisorConfig

        service = Supervisor(service_config, SupervisorConfig(
            workers=arguments.workers,
            request_timeout=arguments.request_timeout,
            max_retries=arguments.max_retries,
        ), tracer=tracer)
    else:
        service = AnalysisService(service_config, tracer=tracer)
    try:
        if arguments.batch or arguments.files:
            if not arguments.files:
                parser.error("--batch needs at least one file")
            entries = arguments.entry or ["main"]
            summary = run_batch(
                service, arguments.files, entries,
                passes=arguments.passes, stdout=sys.stdout,
            )
            print(json.dumps(summary, sort_keys=True))
            errors = sum(counts["error"] for counts in summary["passes"])
            return 1 if errors else 0
        if arguments.max_line_bytes is not None:
            return serve_loop(
                service, sys.stdin, sys.stdout,
                max_line_bytes=arguments.max_line_bytes,
            )
        return serve_loop(service, sys.stdin, sys.stdout)
    finally:
        if hasattr(service, "close"):
            service.close()
        if tracer is not None:
            tracer.close()


def _trace_command(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Inspect JSON-lines span traces (docs/tracing.md): stitch "
            "multi-process records into one tree, check the stitched "
            "invariants, or render the static HTML time-travel viewer"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    stitch_parser = commands.add_parser(
        "stitch",
        help="merge raw multi-process records into one stitched "
        "JSON-lines tree (qualified span ids, shared time base)",
    )
    stitch_parser.add_argument("trace", help="trace file to stitch")
    stitch_parser.add_argument(
        "--out", default="-", metavar="PATH",
        help="stitched output path (default '-' for stdout)",
    )
    check_parser = commands.add_parser(
        "check",
        help="validate the stitched invariants (per-process LIFO, "
        "resolvable acyclic parent edges) and print a summary; "
        "exit 1 when the trace is malformed",
    )
    check_parser.add_argument("trace", help="trace file to check")
    html_parser = commands.add_parser(
        "html",
        help="render the self-contained HTML viewer (flame/timeline "
        "plus fixpoint time-travel when the trace has state dumps)",
    )
    html_parser.add_argument(
        "trace", nargs="?", default=None,
        help="trace file to embed (omit for a file-picker page)",
    )
    html_parser.add_argument(
        "--out", default="trace.html", metavar="PATH",
        help="output HTML path (default trace.html; '-' for stdout)",
    )
    html_parser.add_argument(
        "--title", default=None, metavar="TEXT", help="page title"
    )
    arguments = parser.parse_args(argv)
    from .obs import read_trace, stitch, trace_summary

    def _read(path: str) -> list:
        # A torn tail (crashed writer) must be a structured failure,
        # not a JSONDecodeError traceback.
        try:
            return read_trace(path)
        except ValueError as error:
            print(
                f"repro-trace: unreadable trace {path!r}: {error}",
                file=sys.stderr,
            )
            raise SystemExit(1)

    if arguments.command == "stitch":
        stitched = stitch(_read(arguments.trace))
        lines = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in stitched
        )
        if arguments.out == "-":
            sys.stdout.write(lines)
        else:
            with open(arguments.out, "w", encoding="utf-8") as handle:
                handle.write(lines)
        return 0
    if arguments.command == "check":
        records = _read(arguments.trace)
        try:
            summary = trace_summary(records)
        except ValueError as error:
            print(f"repro-trace: invalid trace: {error}", file=sys.stderr)
            return 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    from .obs import render_html

    records = (
        _read(arguments.trace) if arguments.trace is not None else None
    )
    title = arguments.title or (
        arguments.trace if arguments.trace is not None else "repro trace"
    )
    html = render_html(records, title=title)
    if arguments.out == "-":
        sys.stdout.write(html)
    else:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"wrote {arguments.out} ({len(html)} bytes)")
    return 0


def _fuzz_command(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Generative differential soundness fuzzing: seeded random "
            "Prolog programs (plus mutated benchmarks and corpus "
            "reproducers) are checked by differential oracles — "
            "concrete WAM vs SLD solver, observed answers vs abstract "
            "success patterns, abstract WAM vs both baseline "
            "analyzers, optimizer translation validation, incremental "
            "serve vs from-scratch — and violations are delta-debugged "
            "to minimal reproducers.  Deterministic per --seed: the "
            "summary document is byte-identical across runs"
        ),
    )
    from .fuzz import ORACLE_NAMES

    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="campaign seed (default 0); every program and edit "
        "derives from it",
    )
    parser.add_argument(
        "--count", type=int, default=100, metavar="N",
        help="programs to check (default 100)",
    )
    parser.add_argument(
        "--out", default="BENCH_fuzz.json", metavar="FILE",
        help="summary document (default BENCH_fuzz.json; '-' for "
        "stdout, 'none' to skip)",
    )
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="reproducer corpus directory: violations are stored "
        "there minimized, and existing entries join the mutation "
        "seed pool (default: nothing persisted)",
    )
    parser.add_argument(
        "--oracle", action="append", default=None, choices=ORACLE_NAMES,
        metavar="NAME", dest="oracles",
        help=f"oracle to run (repeatable; default: all of "
        f"{', '.join(ORACLE_NAMES)})",
    )
    parser.add_argument(
        "--mutate-ratio", type=float, default=0.25, metavar="R",
        help="fraction of iterations that mutate a benchmark/corpus "
        "program instead of generating fresh (default 0.25)",
    )
    parser.add_argument(
        "--no-benchmarks", action="store_true",
        help="don't mutate the Table 1 benchmark suite",
    )
    parser.add_argument(
        "--size-budget", type=int, default=30, metavar="N",
        help="clause budget per generated program (default 30)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=200_000, metavar="N",
        help="machine step cap per goal; exhaustion is a counted "
        "skip, never a hang (default 200000)",
    )
    parser.add_argument(
        "--max-solutions", type=int, default=30, metavar="N",
        help="solutions compared per goal (default 30)",
    )
    parser.add_argument(
        "--max-depth", type=int, default=2_000, metavar="N",
        help="SLD solver call-depth cap; exhaustion is a counted "
        "skip (default 2000)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without minimizing them",
    )
    parser.add_argument(
        "--shrink-attempts", type=int, default=500, metavar="N",
        help="candidate cap per shrink (default 500)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-violation progress lines on stderr",
    )
    arguments = parser.parse_args(argv)
    from .bench.emit import write_json
    from .fuzz import CampaignConfig, GenConfig, run_campaign

    config = CampaignConfig(
        seed=arguments.seed,
        count=arguments.count,
        mutate_ratio=arguments.mutate_ratio,
        oracles=arguments.oracles,
        gen=GenConfig(size_budget=arguments.size_budget),
        max_steps=arguments.max_steps,
        max_solutions=arguments.max_solutions,
        max_depth=arguments.max_depth,
        shrink=not arguments.no_shrink,
        shrink_attempts=arguments.shrink_attempts,
        corpus_dir=arguments.corpus,
        use_benchmarks=not arguments.no_benchmarks,
    )
    log = None if arguments.quiet else (
        lambda message: print(message, file=sys.stderr)
    )
    document = run_campaign(config, log=log)
    coverage = document["coverage"]
    programs = document["programs"]
    if arguments.out != "none":
        write_json(
            document, arguments.out,
            summary=f"wrote {arguments.out}: {document['count']} programs "
            f"({programs['generated']} generated, "
            f"{programs['mutated']} mutants), "
            f"{document['violation_count']} violation(s), "
            f"opcode coverage {coverage['opcodes_covered']}"
            f"/{coverage['opcode_universe']}",
        )
    return 1 if document["violation_count"] else 0


#: The console-script entry points: the command bodies above, wrapped so
#: any ReproError or I/O error exits 2 with a one-line message.
main_analyze = _guard(_analyze_command, "repro-analyze")
main_lint = _guard(_lint_command, "repro-lint")
main_optimize = _guard(_optimize_command, "repro-optimize")
main_prolog = _guard(_prolog_command, "repro-prolog")
main_serve = _guard(_serve_command, "repro-serve")
main_fuzz = _guard(_fuzz_command, "repro-fuzz")
main_trace = _guard(_trace_command, "repro-trace")
