"""The abstract domain of the analysis (paper Section 3).

Simple sorts live in :mod:`.sorts`; the full domain with α-lists and
structures is the *type tree* layer in :mod:`.lattice`;
:mod:`.concrete` connects trees to concrete terms (α / γ).
"""

from .concrete import (
    DEFAULT_DEPTH,
    abstract_term,
    summary_of_term,
    tree_contains,
)
from .lattice import (
    ANY_T,
    ATOM_T,
    CONST_T,
    EMPTY_T,
    GROUND_T,
    INTEGER_T,
    NIL_T,
    NV_T,
    Tree,
    VAR_T,
    make_list_tree,
    make_struct_tree,
    tree_glb,
    tree_is_empty,
    tree_is_ground,
    tree_leq,
    tree_lub,
    tree_summary_sort,
    tree_to_text,
    tree_unify,
)
from .sorts import (
    AbsSort,
    SIMPLE_SORTS,
    sort_glb,
    sort_is_ground,
    sort_leq,
    sort_lub,
    sort_unify,
)

__all__ = [
    "ANY_T",
    "ATOM_T",
    "AbsSort",
    "CONST_T",
    "DEFAULT_DEPTH",
    "EMPTY_T",
    "GROUND_T",
    "INTEGER_T",
    "NIL_T",
    "NV_T",
    "SIMPLE_SORTS",
    "Tree",
    "VAR_T",
    "abstract_term",
    "make_list_tree",
    "make_struct_tree",
    "sort_glb",
    "sort_is_ground",
    "sort_leq",
    "sort_lub",
    "sort_unify",
    "summary_of_term",
    "tree_contains",
    "tree_glb",
    "tree_is_empty",
    "tree_is_ground",
    "tree_leq",
    "tree_lub",
    "tree_summary_sort",
    "tree_to_text",
    "tree_unify",
]
