"""The abstraction/concretization connection for AST terms.

:func:`abstract_term` is α: it maps a concrete term to the most precise
type tree under the term-depth restriction.  :func:`tree_contains` is the
γ-membership test: does a concrete term belong to the set a tree denotes?
Together they power the soundness property tests::

    tree_contains(abstract_term(t), t)                       # α ⊆ γ
    unify(t1, t2) = r  ⇒  tree_contains(tree_unify(α t1, α t2), r)
"""

from __future__ import annotations

from typing import Optional

from ..prolog.terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
    is_cons,
    is_ground,
)
from .lattice import (
    ANY_T,
    ATOM_T,
    CONST_T,
    EMPTY_T,
    GROUND_T,
    INTEGER_T,
    NIL_T,
    NV_T,
    Tree,
    VAR_T,
    tree_lub,
)
from .sorts import AbsSort

#: The paper's term-depth restriction constant (Section 6).
DEFAULT_DEPTH = 4


def summary_of_term(term: Term) -> Tree:
    """The most precise *simple* sort containing ``term``."""
    if isinstance(term, Var):
        return VAR_T
    if is_ground(term):
        return GROUND_T
    return NV_T


def abstract_term(term: Term, depth: int = DEFAULT_DEPTH) -> Tree:
    """α: abstract a concrete term to a type tree of bounded depth.

    List spines are summarized by an α-list node (one depth level for the
    whole spine, elements one level deeper), matching the paper's use of
    ``glist`` for arbitrarily long ground lists.
    """
    if depth <= 0:
        return summary_of_term(term)
    if isinstance(term, Var):
        return VAR_T
    if term == NIL:
        return NIL_T
    if isinstance(term, Atom):
        return ATOM_T
    if isinstance(term, Int):
        return INTEGER_T
    if isinstance(term, Float):
        return CONST_T
    assert isinstance(term, Struct)
    if is_cons(term):
        elements = []
        current: Term = term
        while is_cons(current):
            assert isinstance(current, Struct)
            elements.append(current.args[0])
            current = current.args[1]
        if current == NIL:
            elem = EMPTY_T
            for element in elements:
                elem = tree_lub(elem, abstract_term(element, depth - 1))
            return ("l", elem)
        # Improper list: keep the cons structure, charged against depth.
        result = abstract_term(current, depth - len(elements))
        for element in reversed(elements):
            depth -= 1
            head = abstract_term(element, max(depth - 1, 0))
            result = ("f", ".", 2, (head, result))
        return result
    args = tuple(abstract_term(argument, depth - 1) for argument in term.args)
    return ("f", term.name, term.arity, args)


def tree_contains(tree: Tree, term: Term) -> bool:
    """γ-membership: does ``term`` belong to the set ``tree`` denotes?"""
    kind = tree[0]
    if kind == "s":
        sort = tree[1]
        if sort == AbsSort.ANY:
            return True
        if sort == AbsSort.EMPTY:
            return False
        if sort == AbsSort.VAR:
            return isinstance(term, Var)
        if sort == AbsSort.NV:
            return not isinstance(term, Var)
        if sort == AbsSort.GROUND:
            return is_ground(term)
        if sort == AbsSort.CONST:
            return isinstance(term, (Atom, Int, Float))
        if sort == AbsSort.ATOM:
            return isinstance(term, Atom)
        if sort == AbsSort.INTEGER:
            return isinstance(term, Int)
        raise ValueError(f"unexpected sort {sort}")
    if kind == "l":
        elem = tree[1]
        current = term
        while is_cons(current):
            assert isinstance(current, Struct)
            if not tree_contains(elem, current.args[0]):
                return False
            current = current.args[1]
        return current == NIL
    assert kind == "f"
    if not isinstance(term, Struct):
        return False
    if term.name != tree[1] or term.arity != tree[2]:
        return False
    return all(
        tree_contains(sub, argument)
        for sub, argument in zip(tree[3], term.args)
    )
