"""Type trees: the full abstract domain with lists and structures.

A *type tree* describes a set of concrete terms without aliasing
information (sharing lives in :mod:`repro.analysis.patterns`).  Trees are
hashable nested tuples:

* ``('s', sort)`` — a simple sort leaf (:class:`~repro.domain.sorts.AbsSort`);
* ``('l', elem)`` — the paper's α-list: ``[]`` plus ``[elem | α-list]``;
  ``('l', empty)`` denotes exactly ``{[]}`` and is the canonical nil;
* ``('f', name, arity, (arg trees...))`` — structures with a fixed
  principal functor; list cells appear as ``('f', '.', 2, ...)`` when the
  term is not known to be a proper list.

Three binary combinations matter:

* :func:`tree_lub` — least upper bound (used to summarize success
  patterns);
* :func:`tree_glb` — lattice meet (exposed mainly for property tests);
* :func:`tree_unify` — *set unification*: like the meet except that a
  variable absorbs the other operand (``s_unify(var, T) = T``), which is
  the combination abstract unification actually performs.  Returns ``None``
  for guaranteed failure.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .sorts import AbsSort, sort_glb, sort_is_ground, sort_leq, sort_lub

Tree = tuple  # ('s', AbsSort) | ('l', Tree) | ('f', str, int, Tuple[Tree, ...])

# Canonical leaves.
EMPTY_T: Tree = ("s", AbsSort.EMPTY)
VAR_T: Tree = ("s", AbsSort.VAR)
ATOM_T: Tree = ("s", AbsSort.ATOM)
INTEGER_T: Tree = ("s", AbsSort.INTEGER)
CONST_T: Tree = ("s", AbsSort.CONST)
GROUND_T: Tree = ("s", AbsSort.GROUND)
NV_T: Tree = ("s", AbsSort.NV)
ANY_T: Tree = ("s", AbsSort.ANY)
#: The canonical tree for ``[]``.
NIL_T: Tree = ("l", EMPTY_T)


def make_list_tree(elem: Tree) -> Tree:
    return ("l", elem)


def make_struct_tree(name: str, args: Tuple[Tree, ...]) -> Tree:
    return ("f", name, len(args), tuple(args))


def is_simple(tree: Tree) -> bool:
    return tree[0] == "s"


def tree_is_ground(tree: Tree) -> bool:
    """Does the tree denote only ground terms?  (Empty is vacuously ground,
    including composite trees that denote the empty set.)"""
    if tree_is_empty(tree):
        return True
    kind = tree[0]
    if kind == "s":
        return sort_is_ground(tree[1])
    if kind == "l":
        return tree_is_ground(tree[1])
    return all(tree_is_ground(arg) for arg in tree[3])


def tree_is_empty(tree: Tree) -> bool:
    """Does the tree denote the empty set of terms?

    ``('l', empty)`` is *not* empty (it is ``{[]}``), but a structure with
    an empty argument position is.
    """
    kind = tree[0]
    if kind == "s":
        return tree[1] == AbsSort.EMPTY
    if kind == "l":
        return False
    return any(tree_is_empty(arg) for arg in tree[3])


def _list_elem_view(tree: Tree) -> Optional[Tree]:
    """If every term in ``tree`` is a proper list, an element type; else None."""
    kind = tree[0]
    if kind == "l":
        return tree[1]
    if kind == "f" and tree[1] == "." and tree[2] == 2:
        head, tail = tree[3]
        tail_elem = _list_elem_view(tail)
        if tail_elem is None:
            return None
        return tree_lub(head, tail_elem)
    return None


# ----------------------------------------------------------------------
# Order.

def tree_leq(lower: Tree, upper: Tree) -> bool:
    """Set inclusion on type trees."""
    if tree_is_empty(lower):
        return True
    if upper == ANY_T:
        return True
    lower_kind, upper_kind = lower[0], upper[0]
    if lower_kind == "s":
        if upper_kind == "s":
            return sort_leq(lower[1], upper[1])
        return False
    if lower_kind == "l":
        if upper_kind == "s":
            sort = upper[1]
            if sort == AbsSort.NV:
                return True
            if sort == AbsSort.GROUND:
                return tree_is_ground(lower)
            if sort in (AbsSort.CONST, AbsSort.ATOM):
                # Only {[]} fits inside the constants.
                return tree_is_empty(lower[1])
            return False
        if upper_kind == "l":
            return tree_leq(lower[1], upper[1])
        return False
    assert lower_kind == "f"
    if upper_kind == "s":
        sort = upper[1]
        if sort == AbsSort.NV:
            return True
        if sort == AbsSort.GROUND:
            return tree_is_ground(lower)
        return False
    if upper_kind == "l":
        if lower[1] == "." and lower[2] == 2:
            head, tail = lower[3]
            return tree_leq(head, upper[1]) and tree_leq(tail, upper)
        return False
    return (
        lower[1] == upper[1]
        and lower[2] == upper[2]
        and all(tree_leq(a, b) for a, b in zip(lower[3], upper[3]))
    )


# ----------------------------------------------------------------------
# Least upper bound.

def _covering_sort(a: Tree, b: Tree) -> Tree:
    """Smallest simple sort covering two structured trees."""
    if tree_is_ground(a) and tree_is_ground(b):
        return GROUND_T
    return NV_T


def tree_lub(a: Tree, b: Tree) -> Tree:
    """Least upper bound of two type trees."""
    if tree_leq(a, b):
        return b
    if tree_leq(b, a):
        return a
    a_kind, b_kind = a[0], b[0]
    if a_kind == "s" and b_kind == "s":
        return ("s", sort_lub(a[1], b[1]))
    if a_kind == "s" or b_kind == "s":
        simple, other = (a, b) if a_kind == "s" else (b, a)
        sort = simple[1]
        if sort == AbsSort.VAR or sort == AbsSort.ANY:
            return ANY_T
        if tree_leq(other, ATOM_T):
            # The structured side denotes at most {[]}, an atom: the join
            # stays within the constants (e.g. lub(integer, []) = const).
            return ("s", sort_lub(sort, AbsSort.ATOM))
        if sort_is_ground(sort) and tree_is_ground(other):
            return GROUND_T
        return NV_T
    if a_kind == "l" and b_kind == "l":
        return ("l", tree_lub(a[1], b[1]))
    # A list type against a cons structure (or vice versa): if the cons
    # side is list-shaped, stay a list; otherwise fall back to nv/ground.
    if {a_kind, b_kind} == {"l", "f"}:
        list_tree, struct_tree = (a, b) if a_kind == "l" else (b, a)
        elem = _list_elem_view(struct_tree)
        if elem is not None:
            return ("l", tree_lub(list_tree[1], elem))
        return _covering_sort(a, b)
    assert a_kind == "f" and b_kind == "f"
    if a[1] == b[1] and a[2] == b[2]:
        return (
            "f",
            a[1],
            a[2],
            tuple(tree_lub(x, y) for x, y in zip(a[3], b[3])),
        )
    return _covering_sort(a, b)


# ----------------------------------------------------------------------
# Greatest lower bound (pure lattice meet).

def tree_glb(a: Tree, b: Tree) -> Tree:
    """Lattice meet; may return a tree denoting the empty set."""
    if tree_leq(a, b):
        return a
    if tree_leq(b, a):
        return b
    a_kind, b_kind = a[0], b[0]
    if a_kind == "s" and b_kind == "s":
        return ("s", sort_glb(a[1], b[1]))
    if a_kind == "s" or b_kind == "s":
        simple, other = (a, b) if a_kind == "s" else (b, a)
        return _meet_simple_with_structured(simple[1], other, tree_glb)
    if a_kind == "l" and b_kind == "l":
        return ("l", tree_glb(a[1], b[1]))
    if {a_kind, b_kind} == {"l", "f"}:
        list_tree, struct_tree = (a, b) if a_kind == "l" else (b, a)
        if struct_tree[1] == "." and struct_tree[2] == 2:
            head, tail = struct_tree[3]
            return (
                "f",
                ".",
                2,
                (tree_glb(head, list_tree[1]), tree_glb(tail, list_tree)),
            )
        return EMPTY_T
    assert a_kind == "f" and b_kind == "f"
    if a[1] == b[1] and a[2] == b[2]:
        return (
            "f",
            a[1],
            a[2],
            tuple(tree_glb(x, y) for x, y in zip(a[3], b[3])),
        )
    return EMPTY_T


def _meet_simple_with_structured(sort: AbsSort, other: Tree, combine) -> Tree:
    """Meet/unify a simple sort with a list or structure tree.

    ``combine`` is the recursive combination (glb or unify), so the
    var-absorption difference between the two flows into the components.
    """
    if sort in (AbsSort.ANY, AbsSort.NV):
        return other
    if sort == AbsSort.GROUND:
        if other[0] == "l":
            return ("l", combine(GROUND_T, other[1]))
        args = tuple(combine(GROUND_T, arg) for arg in other[3])
        result = ("f", other[1], other[2], args)
        return EMPTY_T if tree_is_empty(result) else result
    if sort in (AbsSort.CONST, AbsSort.ATOM):
        if other[0] == "l":
            return NIL_T
        return EMPTY_T
    # integer, var, empty: no overlap with lists or structures.
    return EMPTY_T


# ----------------------------------------------------------------------
# Set unification (the operational combination).

def tree_unify(a: Tree, b: Tree) -> Optional[Tree]:
    """Abstract (set) unification of type trees; None on sure failure.

    Differs from :func:`tree_glb` exactly where variables occur: a free
    variable unifies with anything and takes its value, so ``var`` and the
    variable part of ``any`` absorb the other operand.
    """
    result = _unify(a, b)
    if result is None or tree_is_empty(result):
        return None
    return result


def _unify_or_empty(a: Tree, b: Tree) -> Tree:
    """Component-level unify where an empty result is a value, not failure
    (list element positions)."""
    result = _unify(a, b)
    return EMPTY_T if result is None else result


def _unify(a: Tree, b: Tree) -> Optional[Tree]:
    if a == VAR_T:
        return b
    if b == VAR_T:
        return a
    if a == ANY_T:
        return b
    if b == ANY_T:
        return a
    a_kind, b_kind = a[0], b[0]
    if a_kind == "s" and b_kind == "s":
        result = sort_glb(a[1], b[1])
        return None if result == AbsSort.EMPTY else ("s", result)
    if a_kind == "s" or b_kind == "s":
        simple, other = (a, b) if a_kind == "s" else (b, a)
        met = _meet_simple_with_structured(simple[1], other, _unify_or_empty)
        return None if tree_is_empty(met) and met[0] != "l" else met
    if a_kind == "l" and b_kind == "l":
        return ("l", _unify_or_empty(a[1], b[1]))
    if {a_kind, b_kind} == {"l", "f"}:
        list_tree, struct_tree = (a, b) if a_kind == "l" else (b, a)
        if struct_tree[1] == "." and struct_tree[2] == 2:
            head, tail = struct_tree[3]
            new_head = _unify(head, list_tree[1])
            new_tail = _unify(tail, list_tree)
            if new_head is None or new_tail is None:
                return None
            return ("f", ".", 2, (new_head, new_tail))
        return None
    assert a_kind == "f" and b_kind == "f"
    if a[1] != b[1] or a[2] != b[2]:
        return None
    args = []
    for x, y in zip(a[3], b[3]):
        combined = _unify(x, y)
        if combined is None:
            return None
        args.append(combined)
    return ("f", a[1], a[2], tuple(args))


# ----------------------------------------------------------------------
# Summaries and display.

def tree_summary_sort(tree: Tree) -> AbsSort:
    """The most precise *simple* sort covering the tree (depth cut-off)."""
    if tree[0] == "s":
        return tree[1]
    if tree_is_ground(tree):
        return AbsSort.GROUND
    return AbsSort.NV


_SHORT = {
    AbsSort.EMPTY: "empty",
    AbsSort.VAR: "var",
    AbsSort.ATOM: "atom",
    AbsSort.INTEGER: "int",
    AbsSort.CONST: "const",
    AbsSort.GROUND: "g",
    AbsSort.NV: "nv",
    AbsSort.ANY: "any",
}


def tree_to_text(tree: Tree) -> str:
    """Paper-style rendering: ``g``, ``g-list``, ``f(any, g)``."""
    kind = tree[0]
    if kind == "s":
        return _SHORT[tree[1]]
    if kind == "l":
        if tree[1] == EMPTY_T:
            return "[]"
        return f"{tree_to_text(tree[1])}-list"
    name, _, args = tree[1], tree[2], tree[3]
    if name == "." and len(args) == 2:
        return f"[{tree_to_text(args[0])}|{tree_to_text(args[1])}]"
    inner = ", ".join(tree_to_text(arg) for arg in args)
    return f"{name}({inner})"
