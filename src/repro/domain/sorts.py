"""The simple (non-parameterized) abstract sorts of the analysis domain.

The paper's Section 3 domain, minus the two parameterized families
(``α-list`` and ``struct(f/n, ...)``, which live at the type-tree level in
:mod:`repro.domain.lattice`):

* ``any`` — all terms (top);
* ``nv`` — non-variable terms;
* ``ground`` — ground terms;
* ``const`` — constants = ``atom`` ∪ ``integer``;
* ``atom``, ``integer`` — the two constant classes;
* ``var`` — variables;
* ``empty`` — no terms (bottom).

The Hasse diagram of the simple sorts::

                 any
                /   \\
              nv    var
               |
             ground
               |
             const
              / \\
          atom   integer
              \\ /
             empty

``sort_leq``/``sort_lub``/``sort_glb`` implement the order restricted to
these sorts; ``sort_unify`` is the *set unification* combination where a
variable absorbs the other operand (``s_unify(var, T) = T``), which is the
operational rule used by abstract unification.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple


class AbsSort(enum.IntEnum):
    """A simple abstract sort.

    An ``IntEnum`` so that hashing tree nodes (which embed sorts) costs an
    integer hash — sorts are hashed millions of times per analysis.
    """

    EMPTY = 0
    VAR = 1
    ATOM = 2
    INTEGER = 3
    CONST = 4
    GROUND = 5
    NV = 6
    ANY = 7
    # Parameterized families; they appear as tree nodes, never as plain
    # sorts in lattice tables, but the enum members give them names.
    LIST = 8
    STRUCT = 9

    def __str__(self) -> str:
        return self.name.lower()


#: Sorts that can appear in an ``abs`` heap cell or as a tree leaf.
SIMPLE_SORTS: Tuple[AbsSort, ...] = (
    AbsSort.EMPTY,
    AbsSort.VAR,
    AbsSort.ATOM,
    AbsSort.INTEGER,
    AbsSort.CONST,
    AbsSort.GROUND,
    AbsSort.NV,
    AbsSort.ANY,
)

#: For each simple sort, the set of simple sorts below or equal to it.
_DOWNSETS: Dict[AbsSort, FrozenSet[AbsSort]] = {
    AbsSort.EMPTY: frozenset({AbsSort.EMPTY}),
    AbsSort.VAR: frozenset({AbsSort.EMPTY, AbsSort.VAR}),
    AbsSort.ATOM: frozenset({AbsSort.EMPTY, AbsSort.ATOM}),
    AbsSort.INTEGER: frozenset({AbsSort.EMPTY, AbsSort.INTEGER}),
    AbsSort.CONST: frozenset(
        {AbsSort.EMPTY, AbsSort.ATOM, AbsSort.INTEGER, AbsSort.CONST}
    ),
    AbsSort.GROUND: frozenset(
        {
            AbsSort.EMPTY,
            AbsSort.ATOM,
            AbsSort.INTEGER,
            AbsSort.CONST,
            AbsSort.GROUND,
        }
    ),
    AbsSort.NV: frozenset(
        {
            AbsSort.EMPTY,
            AbsSort.ATOM,
            AbsSort.INTEGER,
            AbsSort.CONST,
            AbsSort.GROUND,
            AbsSort.NV,
        }
    ),
    AbsSort.ANY: frozenset(
        {
            AbsSort.EMPTY,
            AbsSort.VAR,
            AbsSort.ATOM,
            AbsSort.INTEGER,
            AbsSort.CONST,
            AbsSort.GROUND,
            AbsSort.NV,
            AbsSort.ANY,
        }
    ),
}


#: Flat table: _LEQ[lower * 10 + upper], sized for all ten members so a
#: stray LIST/STRUCT argument reads False instead of raising.
_LEQ = [False] * 100
for _upper, _downset in _DOWNSETS.items():
    for _lower in _downset:
        _LEQ[int(_lower) * 10 + int(_upper)] = True


def sort_leq(lower: AbsSort, upper: AbsSort) -> bool:
    """Is ``lower`` ⊑ ``upper`` among the simple sorts?"""
    return _LEQ[lower * 10 + upper]


def sort_lub(a: AbsSort, b: AbsSort) -> AbsSort:
    """Least upper bound of two simple sorts."""
    if sort_leq(a, b):
        return b
    if sort_leq(b, a):
        return a
    if a == AbsSort.VAR or b == AbsSort.VAR:
        return AbsSort.ANY
    # Remaining incomparable pair within the nv chain: atom and integer.
    if {a, b} == {AbsSort.ATOM, AbsSort.INTEGER}:
        return AbsSort.CONST
    return AbsSort.ANY


def sort_glb(a: AbsSort, b: AbsSort) -> AbsSort:
    """Greatest lower bound of two simple sorts."""
    if sort_leq(a, b):
        return a
    if sort_leq(b, a):
        return b
    common = _DOWNSETS[a] & _DOWNSETS[b]
    # The common downset of any two simple sorts has a maximum element.
    best = AbsSort.EMPTY
    for sort in common:
        if sort_leq(best, sort):
            best = sort
    return best


def sort_unify(a: AbsSort, b: AbsSort) -> AbsSort:
    """Set unification of simple sorts: a variable absorbs the other side.

    ``s_unify(var, T) = T`` because unifying a free variable with any term
    yields that term; everything else is the lattice glb.
    """
    if a == AbsSort.VAR:
        return b
    if b == AbsSort.VAR:
        return a
    return sort_glb(a, b)


def sort_is_ground(sort: AbsSort) -> bool:
    """Does the sort contain only ground terms?"""
    return sort_leq(sort, AbsSort.GROUND)
