"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  The subclasses mirror the
major subsystems: reading Prolog text, compiling it to WAM code, running
the concrete machine, and running the analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``partial_result`` carries whatever sound-but-incomplete result the
    raising subsystem managed to compute before failing (a degraded
    analysis table, for instance); None when nothing usable survived.
    """

    #: Partial result attached by resource-governed analyzers; see
    #: :mod:`repro.robust`.
    partial_result = None


class PrologSyntaxError(ReproError):
    """A Prolog source text could not be tokenized or parsed.

    Carries the position of the offending token so tools can point at it.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class PrologError(ReproError):
    """A runtime error in Prolog execution (solver or concrete WAM).

    The ISO error classes we need are represented by ``kind`` ("type_error",
    "instantiation_error", "existence_error", "evaluation_error", ...) and a
    human-readable message.
    """

    def __init__(self, kind: str, message: str):
        self.kind = kind
        super().__init__(f"{kind}: {message}")


class CompileError(ReproError):
    """A clause could not be compiled to WAM code."""


class MachineError(ReproError):
    """The concrete WAM reached an inconsistent state (a bug, not a goal failure)."""


class AnalysisError(ReproError):
    """The abstract machine or fixpoint driver reached an inconsistent state."""


class BudgetExceeded(AnalysisError):
    """A resource budget dimension was exhausted (see :mod:`repro.robust`).

    ``dimension`` names the tripped limit: ``"steps"`` (abstract-machine
    instructions), ``"iterations"`` (fixpoint passes), ``"table"``
    (extension-table entries) or ``"deadline"`` (wall clock).  Subclasses
    :class:`AnalysisError` so pre-budget callers that caught iteration
    exhaustion keep working.
    """

    def __init__(self, dimension: str, message: str):
        self.dimension = dimension
        super().__init__(message)


class InjectedFault(AnalysisError):
    """A deterministic fault raised by a :class:`repro.robust.FaultPlan`.

    ``site`` is the instrumented event kind (``"step"``, ``"unify"``,
    ``"table"``, ``"iteration"``) and ``count`` the 1-based event ordinal
    at which the fault fired.
    """

    def __init__(self, site: str, count: int):
        self.site = site
        self.count = count
        super().__init__(f"injected fault at {site} #{count}")
