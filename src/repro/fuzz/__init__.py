"""repro.fuzz — generative differential soundness fuzzer.

The package closes the testing loop around every executable artifact in
the repo: a seeded grammar generates Prolog programs that are parseable,
compilable and terminating by construction (:mod:`.grammar`), a seeded
mutation engine perturbs them and the benchmark suite (:mod:`.mutate`),
a battery of differential oracles checks the concrete WAM against the
SLD solver, the abstract WAM against its observed runs and against both
baseline analyzers, the optimizer against translation validation, and
the incremental server against from-scratch analysis (:mod:`.oracles`).
Violations are delta-debugged to minimal reproducers (:mod:`.shrink`)
and stored in a managed corpus (:mod:`.corpus`); :mod:`.runner` drives
deterministic, budgeted campaigns behind the ``repro-fuzz`` CLI.
"""

from .corpus import Corpus, benchmark_seed_sources
from .grammar import (
    CURATED_BUILTINS,
    GenConfig,
    GeneratedProgram,
    ProgramGenerator,
    generate_program,
)
from .mutate import (
    MUTATION_OPS,
    STRUCTURAL_OPS,
    Mutator,
    render_program,
)
from .oracles import (
    ORACLE_NAMES,
    ExecutionAgreementOracle,
    IncrementalServeOracle,
    LatticeAgreementOracle,
    OptValidationOracle,
    Oracle,
    SoundnessOracle,
    Subject,
    Verdict,
    default_oracles,
    entry_from_goal,
    oracles_by_name,
)
from .runner import Campaign, CampaignConfig, run_campaign
from .shrink import ShrinkResult, shrink

__all__ = [
    "CURATED_BUILTINS",
    "MUTATION_OPS",
    "ORACLE_NAMES",
    "STRUCTURAL_OPS",
    "Campaign",
    "CampaignConfig",
    "Corpus",
    "ExecutionAgreementOracle",
    "GenConfig",
    "GeneratedProgram",
    "IncrementalServeOracle",
    "LatticeAgreementOracle",
    "Mutator",
    "OptValidationOracle",
    "Oracle",
    "ProgramGenerator",
    "ShrinkResult",
    "SoundnessOracle",
    "Subject",
    "Verdict",
    "benchmark_seed_sources",
    "default_oracles",
    "entry_from_goal",
    "generate_program",
    "oracles_by_name",
    "render_program",
    "run_campaign",
    "shrink",
]
