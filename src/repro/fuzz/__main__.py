"""``python -m repro.fuzz`` — the repro-fuzz campaign CLI."""

import sys

from ..cli import main_fuzz

if __name__ == "__main__":
    sys.exit(main_fuzz())
