"""Managed reproducer corpus for the fuzz campaign.

A corpus directory holds one subdirectory per minimized failure:

    corpus/
      execution-000123-9f2a41c8/
        repro.pl     # the minimized program
        meta.json    # seed, oracle verdict, goals/entries, shrink stats

The directory name is ``<oracle>-<seed>-<fingerprint8>``; the
fingerprint is the SHA-256 of the *minimized* source, so two seeds
shrinking to the same program dedup into one entry (the second write
is refused and reported as a duplicate).

The corpus doubles as a mutation seed pool: :meth:`Corpus.seed_sources`
returns every stored reproducer (plus, via
:func:`benchmark_seed_sources`, the Table 1 benchmark suite) so future
campaigns mutate yesterday's failures first — the classic corpus
feedback loop, kept deterministic by sorting entries by name.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def source_fingerprint(source: str) -> str:
    """Stable content fingerprint of a program text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class Reproducer:
    """One stored failure: everything needed to replay it."""

    name: str
    oracle: str
    seed: int
    source: str
    meta: Dict

    @property
    def goals(self) -> List[str]:
        return list(self.meta.get("goals", []))

    @property
    def entries(self) -> List[str]:
        return list(self.meta.get("entries", []))


class Corpus:
    """Filesystem-backed reproducer store."""

    def __init__(self, root: str) -> None:
        self.root = root

    def _ensure_root(self) -> None:
        os.makedirs(self.root, exist_ok=True)

    def add(
        self,
        oracle: str,
        seed: int,
        source: str,
        verdict_detail: str,
        goals: List[str],
        entries: List[str],
        shrink_stats: Optional[Dict] = None,
        original_source: Optional[str] = None,
    ) -> Tuple[str, bool]:
        """Store a minimized reproducer.  Returns ``(name, created)``;
        ``created`` is False when an entry with the same minimized
        fingerprint already exists (duplicate failure)."""
        fingerprint = source_fingerprint(source)[:8]
        name = f"{oracle}-{seed:06d}-{fingerprint}"
        for existing in self.names():
            if existing.endswith(f"-{fingerprint}") \
                    and existing.startswith(f"{oracle}-"):
                return existing, False
        self._ensure_root()
        directory = os.path.join(self.root, name)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "repro.pl"), "w",
                  encoding="utf-8") as handle:
            handle.write(source)
        meta = {
            "oracle": oracle,
            "seed": seed,
            "verdict": verdict_detail,
            "goals": list(goals),
            "entries": list(entries),
            "fingerprint": source_fingerprint(source),
            "shrink": dict(shrink_stats or {}),
        }
        if original_source is not None:
            meta["original_clauses"] = original_source.count(".\n")
            with open(os.path.join(directory, "original.pl"), "w",
                      encoding="utf-8") as handle:
                handle.write(original_source)
        with open(os.path.join(directory, "meta.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return name, True

    def names(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name for name in os.listdir(self.root)
            if os.path.isfile(os.path.join(self.root, name, "meta.json"))
        )

    def load(self, name: str) -> Reproducer:
        directory = os.path.join(self.root, name)
        with open(os.path.join(directory, "repro.pl"), encoding="utf-8") \
                as handle:
            source = handle.read()
        with open(os.path.join(directory, "meta.json"), encoding="utf-8") \
                as handle:
            meta = json.load(handle)
        return Reproducer(
            name=name,
            oracle=meta.get("oracle", "?"),
            seed=meta.get("seed", -1),
            source=source,
            meta=meta,
        )

    def entries(self) -> List[Reproducer]:
        return [self.load(name) for name in self.names()]

    def seed_sources(self) -> List[Tuple[str, str, List[str], List[str]]]:
        """(label, source, goals, entries) for every stored reproducer,
        deterministically ordered."""
        out = []
        for reproducer in self.entries():
            out.append((
                f"corpus:{reproducer.name}",
                reproducer.source,
                reproducer.goals,
                reproducer.entries,
            ))
        return out


def benchmark_seed_sources() -> List[Tuple[str, str, List[str], List[str]]]:
    """The Table 1 benchmarks as mutation seeds: (label, source, goals,
    entries), ordered as in the paper."""
    from ..bench.programs import BENCHMARKS

    return [
        (
            f"bench:{benchmark.name}",
            benchmark.source,
            [benchmark.test_goal],
            [benchmark.entry],
        )
        for benchmark in BENCHMARKS
    ]
