"""Seeded, size-budgeted random Prolog program generator.

Every generated program is **parseable, compilable, analyzable and
terminating by construction**:

* programs are built as ASTs and rendered through the writer — no
  string splicing, so syntax is correct by construction;
* predicates are *stratified*: non-recursive predicates only call
  predicates generated before them (plus builtins), and the only
  recursion emitted is structural recursion on the tail of a list
  argument — so every query whose list inputs are ground proper lists
  terminates on both engines;
* a *mode discipline* is enforced during generation.  Every predicate
  carries a signature of roles — ``("in", type)`` arguments the caller
  grounds, ``("out", type)`` arguments the predicate grounds on
  success, ``("enum", type)`` arguments that may be called open
  (member-style) — and clause bodies are generated against a
  bound-variable environment, so arithmetic never sees an unbound
  variable;
* the builtin subset is curated to what the abstract analysis, both
  baselines, the SLD solver and the WAM all implement with the same
  semantics, and atom/functor pools avoid the sort atoms the
  PrologAnalyzer baseline reserves (``g``, ``var``, ``intlist``, ...).

The generator reports *feature coverage* (templates, builtins, cut,
head-index shapes) so the campaign runner can show which parts of the
opcode/builtin space a run actually exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..prolog.terms import Atom, Int, Struct, Term, Var, cons, make_list
from ..prolog.writer import term_to_text
from .mutate import ATOM_POOL, CUT

#: Builtins every engine in the repo agrees on (concrete WAM, SLD
#: solver, abstract WAM, meta/Prolog baselines).  The generator emits
#: nothing outside this set.
CURATED_BUILTINS: Tuple[str, ...] = (
    "is", "=", "<", "=<", ">", ">=", "integer", "atom", "nonvar", "!",
)

#: Comparison operators usable as int guards.
_COMPARISONS = ("<", "=<", ">", ">=")
_ARITH_OPS = ("+", "-", "*")

Role = Tuple[str, str]  # ("in" | "out" | "enum", "int" | "term" | "list")


@dataclass(frozen=True)
class GenConfig:
    """Size budget and feature switches for one generated program."""

    #: hard cap on total clauses (the size budget).
    size_budget: int = 30
    #: helper predicates below ``main`` (actual count is random ≤ this).
    max_helpers: int = 5
    max_clauses: int = 3
    max_body_goals: int = 3
    max_term_depth: int = 2
    max_list_length: int = 5
    max_int: int = 9
    recursion: bool = True
    arithmetic: bool = True
    cut: bool = True
    queries_per_program: int = 3


@dataclass(frozen=True)
class PredSig:
    """The mode/type contract of a generated predicate."""

    name: str
    roles: Tuple[Role, ...]
    kind: str  # template name, for coverage reporting

    @property
    def arity(self) -> int:
        return len(self.roles)


@dataclass
class GeneratedProgram:
    """One generated program plus everything the oracles need."""

    seed: int
    source: str
    #: concrete query texts, each terminating on ground inputs.
    goals: List[str]
    #: abstract entry-spec texts covering the goals, index-aligned.
    entries: List[str]
    #: feature counters (templates, builtins, cut sites, ...).
    features: Dict[str, int] = field(default_factory=dict)


def _clause_text(head: Term, body: Sequence[Term]) -> str:
    if not body:
        return term_to_text(head, quoted=True) + "."
    conj: Term = body[-1]
    for goal in reversed(list(body)[:-1]):
        conj = Struct(",", (goal, conj))
    return term_to_text(Struct(":-", (head, conj)), quoted=True) + "."


class ProgramGenerator:
    """Deterministic generator: same seed + config, same program."""

    def __init__(self, seed: int, config: Optional[GenConfig] = None) -> None:
        self.seed = seed
        self.rng = random.Random(f"repro.fuzz.grammar:{seed}")
        self.config = config or GenConfig()
        self._var_counter = 0
        self._clauses: List[str] = []
        self._pool: List[PredSig] = []
        self.features: Dict[str, int] = {}

    # -- feature accounting --------------------------------------------

    def _feat(self, name: str) -> None:
        self.features[name] = self.features.get(name, 0) + 1

    # -- fresh names and ground values ---------------------------------

    def _fresh_var(self, prefix: str = "V") -> Var:
        self._var_counter += 1
        return Var(f"{prefix}{self._var_counter}")

    def _ground_int(self) -> Int:
        return Int(self.rng.randint(0, self.config.max_int))

    def _ground_list(self) -> Term:
        length = self.rng.randint(0, self.config.max_list_length)
        return make_list([self._ground_int() for _ in range(length)])

    def _ground_term(self, depth: Optional[int] = None) -> Term:
        if depth is None:
            depth = self.config.max_term_depth
        choice = self.rng.randrange(6)
        if choice == 0:
            return self._ground_int()
        if choice <= 2 or depth <= 0:
            return Atom(self.rng.choice(ATOM_POOL))
        if choice == 3:
            length = self.rng.randint(0, 3)
            return make_list(
                [self._ground_term(depth - 1) for _ in range(length)]
            )
        name = self.rng.choice(("f", "g", "h"))
        args = tuple(
            self._ground_term(depth - 1)
            for _ in range(self.rng.randint(1, 2))
        )
        return Struct(name, args)

    def _ground_of(self, type_name: str) -> Term:
        if type_name == "int":
            return self._ground_int()
        if type_name == "list":
            return self._ground_list()
        return self._ground_term()

    # -- recursive templates -------------------------------------------

    def _emit(self, head: Term, body: Sequence[Term]) -> None:
        self._clauses.append(_clause_text(head, body))

    def _template_fold(self, name: str) -> PredSig:
        """``name(IntList, Acc0, Acc)`` — structural fold, optionally
        with a guarded (cut) clause pair."""
        op = self.rng.choice(_ARITH_OPS)
        use_element = self.rng.random() < 0.7
        head_var, tail, acc, acc2, out = (
            Var("H"), Var("T"), Var("A"), Var("A2"), Var("R"),
        )
        step = Struct(op, (acc, head_var if use_element else Int(1)))
        base = (Struct(name, (Atom("[]"), acc, acc)), ())
        guarded = self.config.cut and self.rng.random() < 0.4
        recursive_clauses = []
        if guarded:
            guard = Struct(
                self.rng.choice(_COMPARISONS), (head_var, self._ground_int())
            )
            recursive_clauses.append((
                Struct(name, (cons(head_var, tail), acc, out)),
                (guard, CUT, Struct("is", (acc2, step)),
                 Struct(name, (tail, acc2, out))),
            ))
            recursive_clauses.append((
                Struct(name, (cons(Var("_"), tail), acc, out)),
                (Struct(name, (tail, acc, out)),),
            ))
            self._feat("template.fold.guarded")
            self._feat("builtin.!")
        else:
            recursive_clauses.append((
                Struct(name, (cons(head_var, tail), acc, out)),
                (Struct("is", (acc2, step)), Struct(name, (tail, acc2, out))),
            ))
            self._feat("template.fold")
        self._feat("builtin.is")
        clauses = recursive_clauses
        if self.rng.random() < 0.5:
            clauses = [base] + clauses
        else:
            clauses = clauses + [base]
        for head, body in clauses:
            self._emit(head, body)
        return PredSig(
            name, (("in", "list"), ("in", "int"), ("out", "int")), "fold"
        )

    def _template_map(self, name: str) -> PredSig:
        """``name(IntList, List)`` — map each element through an
        arithmetic step, or filter with cut."""
        head_var, tail, out_head, out_tail = (
            Var("H"), Var("T"), Var("H2"), Var("R"),
        )
        filtering = self.config.cut and self.rng.random() < 0.4
        base = (Struct(name, (Atom("[]"), Atom("[]"))), ())
        if filtering:
            guard = Struct(
                self.rng.choice(_COMPARISONS), (head_var, self._ground_int())
            )
            keep = (
                Struct(name, (
                    cons(head_var, tail),
                    cons(head_var, out_tail),
                )),
                (guard, CUT, Struct(name, (tail, out_tail))),
            )
            drop = (
                Struct(name, (cons(Var("_"), tail), out_tail)),
                (Struct(name, (tail, out_tail)),),
            )
            clauses = [base, keep, drop] if self.rng.random() < 0.5 \
                else [keep, drop, base]
            self._feat("template.filter")
            self._feat("builtin.!")
        else:
            step = Struct(
                self.rng.choice(_ARITH_OPS), (head_var, self._ground_int())
            )
            recursive = (
                Struct(name, (
                    cons(head_var, tail),
                    cons(out_head, out_tail),
                )),
                (Struct("is", (out_head, step)),
                 Struct(name, (tail, out_tail))),
            )
            clauses = [base, recursive] if self.rng.random() < 0.5 \
                else [recursive, base]
            self._feat("template.map")
            self._feat("builtin.is")
        for head, body in clauses:
            self._emit(head, body)
        return PredSig(name, (("in", "list"), ("out", "list")), "map")

    def _template_append(self, name: str) -> PredSig:
        head_var, tail, second, out = Var("H"), Var("T"), Var("L"), Var("R")
        base = (Struct(name, (Atom("[]"), second, second)), ())
        recursive = (
            Struct(name, (
                cons(head_var, tail), second,
                cons(head_var, out),
            )),
            (Struct(name, (tail, second, out)),),
        )
        clauses = [base, recursive] if self.rng.random() < 0.7 \
            else [recursive, base]
        for head, body in clauses:
            self._emit(head, body)
        self._feat("template.append")
        return PredSig(
            name, (("in", "list"), ("in", "list"), ("out", "list")), "append"
        )

    def _template_member(self, name: str) -> PredSig:
        element, tail = Var("X"), Var("T")
        self._emit(
            Struct(name, (element, cons(element, Var("_")))), ()
        )
        self._emit(
            Struct(name, (element, cons(Var("_"), tail))),
            (Struct(name, (element, tail)),),
        )
        self._feat("template.member")
        return PredSig(name, (("enum", "int"), ("in", "list")), "member")

    def _template_facts(self, name: str) -> PredSig:
        arity = self.rng.randint(1, 2)
        count = self.rng.randint(2, 4)
        # Sometimes every fact shares its first argument, so indexing
        # emits a try/retry/trust chain instead of a jump-per-key.
        shared_key = (
            Atom(self.rng.choice(ATOM_POOL))
            if self.rng.random() < 0.3 else None
        )
        if shared_key is not None:
            self._feat("facts.shared_key")
        for _ in range(count):
            args = tuple(self._ground_term() for _ in range(arity))
            if shared_key is not None:
                args = (shared_key,) + args[1:]
            self._emit(Struct(name, args), ())
        self._feat("template.facts")
        return PredSig(name, tuple(("enum", "term") for _ in range(arity)),
                       "facts")

    # -- free-form non-recursive predicates ----------------------------

    def _roles_for_rule(self) -> Tuple[Role, ...]:
        arity = self.rng.randint(1, 3)
        roles: List[Role] = []
        for _ in range(arity):
            kind = self.rng.random()
            if kind < 0.45:
                roles.append(("in", self.rng.choice(("int", "term", "list"))))
            elif kind < 0.75:
                roles.append(("out", self.rng.choice(("int", "term", "list"))))
            else:
                roles.append(("in", "int"))
        if not any(role[0] == "in" for role in roles):
            roles[0] = ("in", "int")
        return tuple(roles)

    def _arith_expr(self, bound_ints: List[Var], depth: int = 1) -> Term:
        if depth > 0 and self.rng.random() < 0.5:
            op = self.rng.choice(_ARITH_OPS)
            return Struct(op, (
                self._arith_expr(bound_ints, depth - 1),
                self._arith_expr(bound_ints, depth - 1),
            ))
        if bound_ints and self.rng.random() < 0.6:
            return self.rng.choice(bound_ints)
        return self._ground_int()

    def _call_args(
        self,
        sig: PredSig,
        bound: Dict[str, List[Var]],
        unbound_outs: Dict[Var, str],
    ) -> Tuple[List[Term], List[Tuple[Var, str]]]:
        """Arguments for a body call of ``sig`` respecting modes.
        Returns (args, newly-bound out vars with their types)."""
        args: List[Term] = []
        binds: List[Tuple[Var, str]] = []
        for direction, type_name in sig.roles:
            if direction == "in":
                candidates = bound.get(type_name, [])
                if candidates and self.rng.random() < 0.6:
                    args.append(self.rng.choice(candidates))
                else:
                    args.append(self._ground_of(type_name))
            elif direction == "enum":
                roll = self.rng.random()
                if roll < 0.4:
                    args.append(self._ground_of(type_name))
                else:
                    fresh = self._fresh_var()
                    args.append(fresh)
                    binds.append((fresh, type_name))
            else:  # out
                matching = [
                    var for var, ty in unbound_outs.items() if ty == type_name
                ]
                if matching and self.rng.random() < 0.7:
                    var = matching[0]
                    del unbound_outs[var]
                else:
                    var = self._fresh_var()
                args.append(var)
                binds.append((var, type_name))
        return args, binds

    def _rule_predicate(self, name: str) -> PredSig:
        roles = self._roles_for_rule()
        sig = PredSig(name, roles, "rule")
        for _ in range(self.rng.randint(1, self.config.max_clauses)):
            self._rule_clause(sig)
        self._feat("template.rule")
        return sig

    def _rule_clause(self, sig: PredSig) -> None:
        bound: Dict[str, List[Var]] = {"int": [], "term": [], "list": []}
        unbound_outs: Dict[Var, str] = {}
        head_args: List[Term] = []
        for direction, type_name in sig.roles:
            if direction == "in":
                # Mostly a variable (bound ground at call time); sometimes
                # a selective constant or list destructuring pattern.
                roll = self.rng.random()
                if roll < 0.6:
                    var = self._fresh_var()
                    head_args.append(var)
                    bound[type_name].append(var)
                    if type_name != "term":
                        bound["term"].append(var)
                elif type_name == "list" and roll < 0.8:
                    head_var, tail = self._fresh_var(), self._fresh_var()
                    head_args.append(cons(head_var, tail))
                    bound["int"].append(head_var)
                    bound["list"].append(tail)
                    bound["term"].extend([head_var, tail])
                    self._feat("head.destructure")
                else:
                    head_args.append(self._ground_of(type_name))
                    self._feat("head.constant")
            else:  # out / enum in the head: var or direct ground binding
                if self.rng.random() < 0.8:
                    var = self._fresh_var()
                    head_args.append(var)
                    unbound_outs[var] = type_name
                else:
                    head_args.append(self._ground_of(type_name))
        head = Struct(sig.name, tuple(head_args))

        body: List[Term] = []
        for _ in range(self.rng.randint(0, self.config.max_body_goals)):
            body.extend(self._body_goal(bound, unbound_outs))
        # Close the contract: ground every remaining out variable.
        for var, type_name in list(unbound_outs.items()):
            if type_name == "int" and self.config.arithmetic \
                    and self.rng.random() < 0.5:
                body.append(
                    Struct("is", (var, self._arith_expr(bound["int"])))
                )
                self._feat("builtin.is")
            else:
                body.append(Struct("=", (var, self._ground_of(type_name))))
                self._feat("builtin.=")
            bound[type_name].append(var)
        if self.config.cut and body and self.rng.random() < 0.15:
            body.insert(self.rng.randrange(len(body) + 1), CUT)
            self._feat("builtin.!")
        self._emit(head, body)

    def _body_goal(
        self,
        bound: Dict[str, List[Var]],
        unbound_outs: Dict[Var, str],
    ) -> List[Term]:
        """One body goal respecting the bound environment."""
        choice = self.rng.random()
        if choice < 0.45 and self._pool:
            sig = self.rng.choice(self._pool)
            args, binds = self._call_args(sig, bound, unbound_outs)
            for var, type_name in binds:
                bound[type_name].append(var)
                if type_name != "term":
                    bound["term"].append(var)
            self._feat(f"call.{sig.kind}")
            return [Struct(sig.name, tuple(args))]
        if choice < 0.65 and self.config.arithmetic:
            left = (
                self.rng.choice(bound["int"])
                if bound["int"] and self.rng.random() < 0.7
                else self._ground_int()
            )
            op = self.rng.choice(_COMPARISONS)
            self._feat(f"builtin.{op}")
            return [Struct(op, (left, self._ground_int()))]
        if choice < 0.8:
            everything = bound["int"] + bound["term"] + bound["list"]
            if everything:
                test = self.rng.choice(("integer", "atom", "nonvar"))
                self._feat(f"builtin.{test}")
                return [Struct(test, (self.rng.choice(everything),))]
            return []
        if self.config.arithmetic:
            var = self._fresh_var()
            expression = self._arith_expr(bound["int"])
            bound["int"].append(var)
            bound["term"].append(var)
            self._feat("builtin.is")
            return [Struct("is", (var, expression))]
        return []

    # -- main driver and queries ---------------------------------------

    def _main_predicate(self) -> PredSig:
        """``main`` chains helper calls, feeding outputs to inputs when
        the types line up (like the Table 1 benchmark drivers)."""
        bound: Dict[str, List[Var]] = {"int": [], "term": [], "list": []}
        body: List[Term] = []
        for _ in range(self.rng.randint(1, 4)):
            sig = self.rng.choice(self._pool)
            args, binds = self._call_args(sig, bound, {})
            for var, type_name in binds:
                bound[type_name].append(var)
                if type_name != "term":
                    bound["term"].append(var)
            body.append(Struct(sig.name, tuple(args)))
            self._feat(f"call.{sig.kind}")
        self._emit(Atom("main"), body)
        return PredSig("main", (), "main")

    def _query_for(self, sig: PredSig) -> Tuple[str, str]:
        """A concrete goal plus a covering abstract entry spec."""
        if not sig.roles:
            return sig.name, sig.name
        args: List[str] = []
        spec: List[str] = []
        out_counter = 0
        for direction, type_name in sig.roles:
            if direction == "in":
                args.append(term_to_text(self._ground_of(type_name),
                                         quoted=True))
                spec.append("glist" if type_name == "list" else "g")
            elif direction == "enum" and self.rng.random() < 0.5:
                args.append(term_to_text(self._ground_of(type_name),
                                         quoted=True))
                spec.append("g")
            else:
                out_counter += 1
                args.append(f"R{out_counter}")
                spec.append("var")
        goal = f"{sig.name}({', '.join(args)})"
        entry = f"{sig.name}({', '.join(spec)})"
        return goal, entry

    # -- entry point ----------------------------------------------------

    def generate(self) -> GeneratedProgram:
        config = self.config
        helper_budget = self.rng.randint(1, max(1, config.max_helpers))
        templates = ["facts", "rule"]
        if config.recursion:
            templates += ["fold", "map", "append", "member"]
        index = 0
        while (
            len(self._pool) < helper_budget
            and len(self._clauses) < config.size_budget - 1
        ):
            kind = self.rng.choice(templates)
            name = f"p{index}"
            index += 1
            if kind == "facts":
                sig = self._template_facts(name)
            elif kind == "fold" and config.arithmetic:
                sig = self._template_fold(name)
            elif kind == "map":
                sig = self._template_map(name)
            elif kind == "append":
                sig = self._template_append(name)
            elif kind == "member":
                sig = self._template_member(name)
            else:
                sig = self._rule_predicate(name)
            self._pool.append(sig)
        main_sig = self._main_predicate()

        goals: List[str] = []
        entries: List[str] = []
        goal, entry = self._query_for(main_sig)
        goals.append(goal)
        entries.append(entry)
        queryable = list(self._pool)
        self.rng.shuffle(queryable)
        for sig in queryable[: max(0, config.queries_per_program - 1)]:
            goal, entry = self._query_for(sig)
            goals.append(goal)
            entries.append(entry)

        source = "\n".join(self._clauses) + "\n"
        return GeneratedProgram(
            seed=self.seed,
            source=source,
            goals=goals,
            entries=entries,
            features=dict(self.features),
        )


def generate_program(
    seed: int, config: Optional[GenConfig] = None
) -> GeneratedProgram:
    """Convenience wrapper: one seeded program."""
    return ProgramGenerator(seed, config).generate()
