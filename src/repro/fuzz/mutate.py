"""Seeded mutation engine over parsed Prolog programs.

One source of randomness for every random-edit surface in the repo: the
serve incremental property tests, the optimizer random-edit property
tests, and the fuzz campaign all draw their edits from :class:`Mutator`.

Mutations operate on the :class:`~repro.prolog.program.Program` AST and
are re-rendered through the writer, so every mutant is parseable by
construction.  Each operator is registered in :data:`MUTATION_OPS` with
a *safety class*:

* ``structural`` — changes clause structure but cannot make a
  well-moded program ill-moded (duplicate/swap/append-variant/add a
  fresh predicate).  Solution *sets* may change (multiplicity, order of
  success), but every engine sees the same program, so differential
  oracles still apply.
* ``aggressive`` — may change bindings or control (delete a clause,
  drop or swap body goals, tweak constants, insert/remove cut).  Can
  produce programs that raise instantiation errors at runtime; the
  oracles classify agreeing errors as agreement.

Operators *decline* (return ``False``) when a program offers no
applicable site, so a mutation round always terminates and the RNG
stream stays aligned across runs — the per-round choices are a pure
function of the seed and the program text.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..prolog.program import Clause, Program
from ..prolog.terms import Atom, Int, Struct, Term, Var
from ..prolog.writer import term_to_text

#: Atoms the PrologAnalyzer baseline reserves for abstract sorts; a
#: mutation must never introduce one into a program (see
#: repro.baselines.prolog_analyzer).
RESERVED_ATOMS = frozenset(
    {"any", "nv", "g", "ground", "const", "atom", "int", "integer", "var"}
    | {
        f"{name}list"
        for name in ("any", "nv", "g", "ground", "const", "atom",
                     "int", "integer", "var")
    }
)

#: Replacement pools for constant tweaks (disjoint from RESERVED_ATOMS).
ATOM_POOL: Tuple[str, ...] = ("a", "b", "c", "d", "k1", "k2")

CUT = Atom("!")


def render_program(program: Program) -> str:
    """A :class:`Program` back to parseable text, clause order preserved.

    The canonical rendering used by the serve fingerprint tests and the
    fuzz pipeline: directives first, then every clause quoted through
    the writer with the program's own operator table.
    """
    lines = []
    for directive in program.directives:
        lines.append(
            ":- " + term_to_text(
                directive, quoted=True, operators=program.operators
            ) + "."
        )
    for predicate in program.predicates.values():
        for clause in predicate.clauses:
            lines.append(
                term_to_text(
                    clause.to_term(), quoted=True, operators=program.operators
                ) + "."
            )
    return "\n".join(lines) + "\n"


def _predicates_with_clauses(program: Program):
    return [p for p in program.predicates.values() if p.clauses]


def _copy_clause(clause: Clause) -> Clause:
    """An independent copy (fresh variable identities via rename)."""
    return clause.rename()


# ----------------------------------------------------------------------
# Term-level helpers for the aggressive operators.


def _map_term(term: Term, fn: Callable[[Term], Optional[Term]]) -> Term:
    """Rebuild ``term`` bottom-up; ``fn`` may replace any subterm."""
    if isinstance(term, Struct):
        term = Struct(term.name, tuple(_map_term(a, fn) for a in term.args))
    replacement = fn(term)
    return term if replacement is None else replacement


def _atoms_of(term: Term) -> List[Atom]:
    out: List[Atom] = []

    def visit(t: Term) -> None:
        if isinstance(t, Atom) and t.name not in ("[]", "!"):
            out.append(t)
        elif isinstance(t, Struct):
            for a in t.args:
                visit(a)

    visit(term)
    return out


def _ints_of(term: Term) -> List[Int]:
    out: List[Int] = []

    def visit(t: Term) -> None:
        if isinstance(t, Int):
            out.append(t)
        elif isinstance(t, Struct):
            for a in t.args:
                visit(a)

    visit(term)
    return out


# ----------------------------------------------------------------------
# Mutation operators.  Each takes (program, rng) and returns True when it
# changed the program, False when no applicable site existed.


def duplicate_clause(program: Program, rng: random.Random) -> bool:
    predicates = _predicates_with_clauses(program)
    if not predicates:
        return False
    predicate = rng.choice(predicates)
    clause = rng.choice(predicate.clauses)
    predicate.clauses.append(_copy_clause(clause))
    return True


def delete_clause(program: Program, rng: random.Random) -> bool:
    predicates = [
        p for p in _predicates_with_clauses(program) if len(p.clauses) > 1
    ]
    if not predicates:
        return False
    predicate = rng.choice(predicates)
    predicate.clauses.pop(rng.randrange(len(predicate.clauses)))
    return True


def swap_clauses(program: Program, rng: random.Random) -> bool:
    predicates = [
        p for p in _predicates_with_clauses(program) if len(p.clauses) > 1
    ]
    if not predicates:
        return False
    predicate = rng.choice(predicates)
    index = rng.randrange(len(predicate.clauses) - 1)
    clauses = predicate.clauses
    clauses[index], clauses[index + 1] = clauses[index + 1], clauses[index]
    return True


def append_variant_clause(program: Program, rng: random.Random) -> bool:
    """Duplicate a clause with one constant perturbed — a near-miss
    clause, the classic way to stress first-argument indexing."""
    predicates = _predicates_with_clauses(program)
    if not predicates:
        return False
    predicate = rng.choice(predicates)
    clause = _copy_clause(rng.choice(predicate.clauses))
    atoms = _atoms_of(clause.head)
    if atoms:
        victim = rng.choice(atoms)
        replacement = Atom(rng.choice(ATOM_POOL))

        def swap(t: Term) -> Optional[Term]:
            return replacement if t is victim else None

        clause.head = _map_term(clause.head, swap)
    predicate.clauses.append(clause)
    return True


def add_fact_predicate(program: Program, rng: random.Random) -> bool:
    """A fresh, unreached fact predicate (never collides: the name
    embeds the current predicate count)."""
    name = f"extra_{len(program.predicates)}_{rng.randrange(10)}"
    program.add_clause(Clause(Struct(name, (Atom(rng.choice(ATOM_POOL)),))))
    return True


def drop_goal(program: Program, rng: random.Random) -> bool:
    sites = [
        (predicate, clause)
        for predicate in _predicates_with_clauses(program)
        for clause in predicate.clauses
        if clause.body
    ]
    if not sites:
        return False
    _, clause = rng.choice(sites)
    clause.body.pop(rng.randrange(len(clause.body)))
    return True


def swap_goals(program: Program, rng: random.Random) -> bool:
    sites = [
        clause
        for predicate in _predicates_with_clauses(program)
        for clause in predicate.clauses
        if len(clause.body) > 1
    ]
    if not sites:
        return False
    clause = rng.choice(sites)
    index = rng.randrange(len(clause.body) - 1)
    body = clause.body
    body[index], body[index + 1] = body[index + 1], body[index]
    return True


def replace_atom(program: Program, rng: random.Random) -> bool:
    sites = []
    for predicate in _predicates_with_clauses(program):
        for clause in predicate.clauses:
            for atom in _atoms_of(clause.head):
                sites.append((clause, "head", atom))
            for position, goal in enumerate(clause.body):
                if isinstance(goal, Struct):
                    for atom in _atoms_of(goal):
                        sites.append((clause, position, atom))
    if not sites:
        return False
    clause, where, victim = rng.choice(sites)
    replacement = Atom(rng.choice([n for n in ATOM_POOL if n != victim.name]))

    def swap(t: Term) -> Optional[Term]:
        return replacement if t is victim else None

    if where == "head":
        clause.head = _map_term(clause.head, swap)
    else:
        clause.body[where] = _map_term(clause.body[where], swap)
    return True


def tweak_int(program: Program, rng: random.Random) -> bool:
    sites = []
    for predicate in _predicates_with_clauses(program):
        for clause in predicate.clauses:
            for value in _ints_of(clause.head):
                sites.append((clause, "head", value))
            for position, goal in enumerate(clause.body):
                if isinstance(goal, Struct):
                    for value in _ints_of(goal):
                        sites.append((clause, position, value))
    if not sites:
        return False
    clause, where, victim = rng.choice(sites)
    replacement = Int(victim.value + rng.choice([-1, 1]))

    def swap(t: Term) -> Optional[Term]:
        return replacement if t is victim else None

    if where == "head":
        clause.head = _map_term(clause.head, swap)
    else:
        clause.body[where] = _map_term(clause.body[where], swap)
    return True


def insert_cut(program: Program, rng: random.Random) -> bool:
    sites = [
        clause
        for predicate in _predicates_with_clauses(program)
        for clause in predicate.clauses
        if CUT not in clause.body
    ]
    if not sites:
        return False
    clause = rng.choice(sites)
    clause.body.insert(rng.randrange(len(clause.body) + 1), CUT)
    return True


def remove_cut(program: Program, rng: random.Random) -> bool:
    sites = [
        clause
        for predicate in _predicates_with_clauses(program)
        for clause in predicate.clauses
        if CUT in clause.body
    ]
    if not sites:
        return False
    clause = rng.choice(sites)
    positions = [i for i, goal in enumerate(clause.body) if goal == CUT]
    clause.body.pop(rng.choice(positions))
    return True


#: op name -> (function, safety class).
MUTATION_OPS: Dict[str, Tuple[Callable[[Program, random.Random], bool], str]]
MUTATION_OPS = {
    "duplicate_clause": (duplicate_clause, "structural"),
    "swap_clauses": (swap_clauses, "structural"),
    "append_variant_clause": (append_variant_clause, "structural"),
    "add_fact_predicate": (add_fact_predicate, "structural"),
    "delete_clause": (delete_clause, "aggressive"),
    "drop_goal": (drop_goal, "aggressive"),
    "swap_goals": (swap_goals, "aggressive"),
    "replace_atom": (replace_atom, "aggressive"),
    "tweak_int": (tweak_int, "aggressive"),
    "insert_cut": (insert_cut, "aggressive"),
    "remove_cut": (remove_cut, "aggressive"),
}

STRUCTURAL_OPS: Tuple[str, ...] = tuple(
    name for name, (_, safety) in MUTATION_OPS.items()
    if safety == "structural"
)


class Mutator:
    """Apply seeded random edits to programs.

    ``ops`` restricts the operator pool (default: every registered
    operator); pass :data:`STRUCTURAL_OPS` for edits that keep
    well-moded programs well-moded.
    """

    def __init__(
        self,
        rng: random.Random,
        ops: Optional[Sequence[str]] = None,
    ) -> None:
        self.rng = rng
        names = tuple(ops) if ops is not None else tuple(MUTATION_OPS)
        unknown = [name for name in names if name not in MUTATION_OPS]
        if unknown:
            raise ValueError(f"unknown mutation ops: {unknown}")
        self.ops = names

    def mutate_program(self, program: Program) -> Optional[str]:
        """One random edit, in place.  Returns the operator name, or
        None when no operator in the pool was applicable."""
        order = list(self.ops)
        self.rng.shuffle(order)
        for name in order:
            fn, _ = MUTATION_OPS[name]
            if fn(program, self.rng):
                return name
        return None

    def mutate_text(self, text: str, count: int = 1) -> Tuple[str, List[str]]:
        """Parse, apply ``count`` random edits, re-render."""
        program = Program.from_text(text)
        applied: List[str] = []
        for _ in range(count):
            name = self.mutate_program(program)
            if name is not None:
                applied.append(name)
        return render_program(program), applied
