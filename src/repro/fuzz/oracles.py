"""Differential oracles: the correctness contracts the fuzzer checks.

Every oracle takes one :class:`Subject` (a program plus its goals and
abstract entries) and returns a :class:`Verdict` — ``ok``,
``violation``, or ``skip`` (the subject exhausted a resource budget or
sits outside the oracle's precondition; skips are counted, never
silently dropped).  The catalog:

``execution``
    The concrete WAM and the SLD solver must produce the *same ordered
    solution sequence* (canonically renamed) and the same builtin
    output on every goal.  Agreeing runtime errors count as agreement;
    a one-sided error or any solution/output difference is a violation.

``soundness``
    The global safety statement of abstract interpretation: every
    concrete answer the WAM produces for a goal must be contained in
    the success pattern the analysis computes for the *abstraction* of
    that goal (and an answer for a goal whose entry the analysis claims
    cannot succeed is an immediate violation).  The same containment is
    required of the PrologAnalyzer baseline — it is a theorem for any
    sound analysis, which makes it the right cross-check for an engine
    whose precision is incomparable with the compiled analyzer's.

``lattice``
    Implementation agreement on the analysis itself: the compiled
    abstract WAM and the meta-interpreter baseline must compute
    *identical* fixpoint tables (after canonicalization) — two
    codebases, one fixpoint, the paper's core claim.

``opt``
    Translation validation of :mod:`repro.opt` on the generated
    program: optimized code must be verifier-clean and
    solution-identical on every goal.  The transform is injectable so
    tests can plant a deliberately unsound one and watch it get caught.

``serve``
    Incremental re-analysis equivalence: analyzing an edited program
    through a warm :class:`~repro.serve.service.AnalysisService` must
    produce the same stable lattice facts as a from-scratch analysis of
    the edited text.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.driver import Analyzer, EntrySpec, analyze
from ..analysis.patterns import (
    Pattern,
    canonicalize,
    pattern_to_trees,
    tree_to_node,
)
from ..baselines import MetaAnalyzer, PrologAnalyzer
from ..domain import AbsSort, abstract_term, tree_contains
from ..errors import BudgetExceeded, PrologError, ReproError
from ..opt import goal_entry_specs, optimize_program, validate
from ..prolog.parser import parse_term
from ..prolog.program import Program
from ..prolog.solver import Solver
from ..prolog.terms import Struct, Term, Var, indicator_of
from ..prolog.writer import term_to_text
from ..robust import Budget
from ..wam.compile import compile_program
from ..wam.machine import Machine

OK = "ok"
VIOLATION = "violation"
SKIP = "skip"


@dataclass
class Verdict:
    """One oracle's judgement on one subject."""

    oracle: str
    status: str
    detail: str = ""

    @property
    def is_violation(self) -> bool:
        return self.status == VIOLATION

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "status": self.status,
                "detail": self.detail}


@dataclass
class Subject:
    """A program under test, with its goals and covering entries."""

    source: str
    goals: List[str] = field(default_factory=list)
    entries: List[str] = field(default_factory=list)
    #: seed for oracle-internal randomness (the serve oracle's edit).
    edit_seed: int = 0
    max_steps: int = 200_000
    max_solutions: int = 30
    #: SLD solver call-depth cap.  The solver is generator-recursive,
    #: so a runaway-recursion mutant overflows the C stack (a hard
    #: crash, not RecursionError) long before a 200k step budget
    #: trips; past this depth the run is classified as budget.
    max_depth: int = 2_000


def entry_from_goal(goal: Term) -> EntrySpec:
    """Abstract a concrete goal into an entry spec (shared variables
    alias).  The analysis of this spec covers the concrete call."""
    counter = itertools.count()
    var_ids: Dict[int, int] = {}
    nodes = []
    arguments = goal.args if isinstance(goal, Struct) else ()
    for argument in arguments:
        if isinstance(argument, Var):
            ident = var_ids.get(id(argument))
            if ident is None:
                ident = next(counter)
                var_ids[id(argument)] = ident
            nodes.append(("i", AbsSort.VAR, ident))
        else:
            nodes.append(tree_to_node(abstract_term(argument), counter))
    return EntrySpec(indicator_of(goal), canonicalize(Pattern(tuple(nodes))))


# ----------------------------------------------------------------------
# Concrete runs with classification.


def _canonical_solution(solution: Dict[str, Term]) -> Tuple:
    from ..opt.validate import _canonical_text

    names: Dict[int, str] = {}
    return tuple(
        (name, _canonical_text(solution[name], names))
        for name in sorted(solution)
    )


def _classify_run(runner: Callable) -> Tuple[str, object]:
    """Run an engine; classify as ('ok', payload) / ('budget', msg) /
    ('error', message)."""
    try:
        return "ok", runner()
    except BudgetExceeded as exc:
        return "budget", str(exc)
    except RecursionError:
        return "budget", "python recursion limit"
    except PrologError as exc:
        if getattr(exc, "kind", "") == "resource_error":
            return "budget", str(exc)
        return "error", f"{exc.kind}: {exc}"
    except ReproError as exc:
        return "error", f"{type(exc).__name__}: {exc}"


def _wam_solutions(
    text: str, goal: Term, max_steps: int, max_solutions: int,
    raw: bool = False,
):
    def run():
        machine = Machine(compile_program(Program.from_text(text)))
        budget = Budget(max_steps=max_steps).start()
        machine.step_monitor = budget.charge_step
        solutions = []
        for count, solution in enumerate(machine.run(goal), start=1):
            solutions.append(
                dict(solution) if raw else _canonical_solution(solution)
            )
            if count >= max_solutions:
                break
        return solutions, tuple(machine.output)

    return _classify_run(run)


def _solver_solutions(
    text: str, goal: Term, max_steps: int, max_solutions: int,
    max_depth: Optional[int] = None,
):
    def run():
        solver = Solver(
            Program.from_text(text), max_steps=max_steps,
            max_depth=max_depth,
        )
        solutions = []
        for count, solution in enumerate(solver.solve(goal), start=1):
            solutions.append(_canonical_solution(solution))
            if count >= max_solutions:
                break
        return solutions, tuple(solver.output)

    return _classify_run(run)


# ----------------------------------------------------------------------
# The oracles.


class Oracle:
    name = "?"

    def check(self, subject: Subject) -> Verdict:  # pragma: no cover
        raise NotImplementedError

    def _ok(self, detail: str = "") -> Verdict:
        return Verdict(self.name, OK, detail)

    def _skip(self, detail: str) -> Verdict:
        return Verdict(self.name, SKIP, detail)

    def _violation(self, detail: str) -> Verdict:
        return Verdict(self.name, VIOLATION, detail)


class ExecutionAgreementOracle(Oracle):
    """Concrete WAM ≡ SLD solver on every goal (ordered solutions)."""

    name = "execution"

    def check(self, subject: Subject) -> Verdict:
        skipped = 0
        for goal_text in subject.goals:
            goal = parse_term(goal_text)
            wam_status, wam = _wam_solutions(
                subject.source, goal, subject.max_steps,
                subject.max_solutions,
            )
            solver_status, solver = _solver_solutions(
                subject.source, goal, subject.max_steps,
                subject.max_solutions, subject.max_depth,
            )
            if "budget" in (wam_status, solver_status):
                skipped += 1
                continue
            if wam_status == "error" and solver_status == "error":
                continue  # agreeing failure is agreement
            if wam_status != solver_status:
                return self._violation(
                    f"{goal_text}: wam={wam_status} ({wam if wam_status == 'error' else '...'}) "
                    f"solver={solver_status} "
                    f"({solver if solver_status == 'error' else '...'})"
                )
            wam_solutions, wam_output = wam
            solver_solutions, solver_output = solver
            if wam_solutions != solver_solutions:
                return self._violation(
                    f"{goal_text}: solutions diverge "
                    f"({len(wam_solutions)} vs {len(solver_solutions)}; "
                    f"first wam={wam_solutions[:1]} "
                    f"solver={solver_solutions[:1]})"
                )
            if wam_output != solver_output:
                return self._violation(f"{goal_text}: builtin output diverges")
        if skipped == len(subject.goals):
            return self._skip("every goal exhausted its step budget")
        return self._ok()


class SoundnessOracle(Oracle):
    """Observed concrete answers ∈ abstract success patterns.

    Checked against the compiled analyzer *and* the PrologAnalyzer
    baseline: containment of every observed answer is a theorem for
    any sound analysis, so it cross-checks engines whose precision is
    otherwise incomparable (the baseline abstracts calls more coarsely
    but can compute tighter successes in corners).
    """

    name = "soundness"

    def check(self, subject: Subject) -> Verdict:
        program = Program.from_text(subject.source)
        checked = 0
        for goal_text in subject.goals:
            goal = parse_term(goal_text)
            status, payload = _wam_solutions(
                subject.source, goal, subject.max_steps,
                subject.max_solutions, raw=True,
            )
            if status != "ok":
                continue  # errors/budget: nothing observed to check
            answers, _ = payload
            spec = entry_from_goal(goal)
            try:
                result = Analyzer(program).analyze([spec])
            except BudgetExceeded as exc:
                return self._skip(f"{goal_text}: analysis budget: {exc}")
            except ReproError as exc:
                return self._skip(f"{goal_text}: analysis failed: {exc}")
            entry = result.table.find(spec.indicator, spec.pattern)
            if entry is None:
                return self._violation(
                    f"{goal_text}: entry vanished from the extension table"
                )
            if not answers:
                continue  # concrete failure needs nothing from the analysis
            checked += 1
            if entry.success is None:
                return self._violation(
                    f"{goal_text}: analysis claims the goal cannot "
                    f"succeed, but it produced {len(answers)} answer(s)"
                )
            success_trees = pattern_to_trees(entry.success)
            goal_args = goal.args if isinstance(goal, Struct) else ()
            violation = self._check_answers(
                goal_text, goal_args, answers, success_trees, "analysis"
            )
            if violation is not None:
                return violation
            violation = self._check_baseline(
                subject, goal_text, goal_args, answers, spec
            )
            if violation is not None:
                return violation
        if not checked:
            return self._skip("no goal produced observable answers")
        return self._ok(f"{checked} goal(s) with answers checked")

    def _check_answers(
        self, goal_text, goal_args, answers, success_trees, engine
    ) -> Optional[Verdict]:
        for answer in answers:
            for position, argument in enumerate(goal_args):
                concrete = _substitute(argument, answer)
                if not tree_contains(success_trees[position], concrete):
                    return self._violation(
                        f"{goal_text}: answer arg {position + 1} = "
                        f"{term_to_text(concrete)} escapes {engine} "
                        f"success type {success_trees[position]}"
                    )
        return None

    def _check_baseline(
        self, subject, goal_text, goal_args, answers, spec
    ) -> Optional[Verdict]:
        try:
            baseline = PrologAnalyzer(subject.source).analyze([spec])
        except (BudgetExceeded, ReproError):
            return None  # the baseline giving up observes nothing
        success = _per_pred_success(baseline.table).get(spec.indicator)
        if success is None:
            return self._violation(
                f"{goal_text}: prolog baseline claims the goal cannot "
                f"succeed, but it produced {len(answers)} answer(s)"
            )
        return self._check_answers(
            goal_text, goal_args, answers, success, "prolog-baseline"
        )


def _substitute(term: Term, answer: Dict[str, Term]) -> Term:
    if isinstance(term, Var):
        return answer.get(term.name, term)
    if isinstance(term, Struct):
        return Struct(term.name, tuple(_substitute(a, answer) for a in term.args))
    return term


class LatticeAgreementOracle(Oracle):
    """Abstract WAM ≡ meta-interpreter baseline, table for table.

    This is the paper's core claim: the compiled abstract machine
    computes exactly the fixpoint the meta-level analyzer does, so the
    tables must be *equal* (after canonicalization).  The PrologAnalyzer
    baseline is NOT compared here — it abstracts calls differently, so
    neither direction of precision is a theorem; its sound obligation
    (observed answers ∈ success patterns) lives in the soundness
    oracle instead.
    """

    name = "lattice"

    def check(self, subject: Subject) -> Verdict:
        if not subject.entries:
            return self._skip("no entries")
        try:
            fast = Analyzer(subject.source).analyze(subject.entries)
            meta = MetaAnalyzer(subject.source).analyze(subject.entries)
        except BudgetExceeded as exc:
            return self._skip(f"analysis budget: {exc}")
        except ReproError as exc:
            return self._skip(f"analysis failed: {exc}")
        fast_map = _table_map(fast.table)
        meta_map = _table_map(meta.table)
        if fast_map != meta_map:
            return self._violation(_first_table_difference(fast_map, meta_map))
        return self._ok()


def _table_map(table):
    # Compare canonical forms: engines may differ in vacuous detail
    # (e.g. must-aliasing annotations on ground arguments) that
    # canonicalization erases.
    return {
        (indicator, canonicalize(entry.calling)): (
            None if entry.success is None
            else canonicalize(entry.success)
        )
        for indicator, entry in table.all_entries()
    }


def _per_pred_success(table):
    from ..domain import tree_lub

    out: Dict[Tuple[str, int], Tuple] = {}
    for indicator, entry in table.all_entries():
        if entry.success is None:
            continue
        trees = pattern_to_trees(entry.success)
        if indicator in out:
            out[indicator] = tuple(
                tree_lub(a, b) for a, b in zip(out[indicator], trees)
            )
        else:
            out[indicator] = trees
    return out


def _first_table_difference(left: Dict, right: Dict) -> str:
    for key in sorted(set(left) | set(right), key=repr):
        if left.get(key, "<absent>") != right.get(key, "<absent>"):
            return (
                f"table entry {key}: abstract-WAM {left.get(key, '<absent>')} "
                f"vs meta baseline {right.get(key, '<absent>')}"
            )
    return "tables differ"


class OptValidationOracle(Oracle):
    """repro.opt translation validation on the subject program.

    ``transform`` is injectable (default: the real
    :func:`repro.opt.optimize_program`) so the test suite can plant an
    unsound transform and verify the oracle catches and shrinks it.
    """

    name = "opt"

    def __init__(self, transform: Optional[Callable] = None) -> None:
        self.transform = transform or optimize_program

    def check(self, subject: Subject) -> Verdict:
        # Only goals that run cleanly on the original program can be
        # diff-executed: repro.opt's validate() deliberately reports
        # *any* machine error as divergence (even an agreeing one),
        # which is right for the CLI but a false alarm on mutants that
        # error identically on both sides.  Error agreement between
        # engines is the execution oracle's job, not this one's.
        goal_terms = []
        for text in subject.goals:
            goal = parse_term(text)
            status, _ = _wam_solutions(
                subject.source, goal, subject.max_steps,
                subject.max_solutions,
            )
            if status == "ok":
                goal_terms.append(goal)
        if not goal_terms and subject.goals:
            return self._skip("no goal runs cleanly on the original")
        try:
            compiled = compile_program(Program.from_text(subject.source))
            specs: List = list(subject.entries)
            for goal in goal_terms:
                specs.extend(goal_entry_specs(compiled.program, goal))
            result = analyze(compiled, *specs)
            optimized = self.transform(compiled, result)
            optimized_compiled = getattr(optimized, "compiled", optimized)
        except BudgetExceeded as exc:
            return self._skip(f"analysis budget: {exc}")
        except ReproError as exc:
            return self._skip(f"optimize pipeline failed: {exc}")
        report = validate(
            compiled, optimized_compiled, goal_terms,
            max_solutions=subject.max_solutions,
        )
        if report.ok:
            return self._ok()
        return self._violation(report.to_text())


class IncrementalServeOracle(Oracle):
    """Warm incremental re-analysis ≡ from-scratch on an edited text."""

    name = "serve"

    #: structural edits keep generated programs well-defined, so the
    #: serve comparison is always exact-vs-exact.
    EDIT_OPS = ("duplicate_clause", "swap_clauses", "append_variant_clause",
                "add_fact_predicate")

    def check(self, subject: Subject) -> Verdict:
        from ..serve import AnalysisService, ServiceConfig
        from .mutate import Mutator

        if not subject.entries:
            return self._skip("no entries")
        rng = random.Random(f"repro.fuzz.serve-edit:{subject.edit_seed}")
        mutator = Mutator(rng, ops=self.EDIT_OPS)
        edited, applied = mutator.mutate_text(
            subject.source, count=rng.randint(1, 2)
        )
        service = AnalysisService(ServiceConfig())
        try:
            warm = service.handle({
                "op": "analyze", "text": subject.source,
                "entries": list(subject.entries),
            })
            if not warm.get("ok"):
                return self._skip(
                    f"base analysis failed: {warm.get('error')}"
                )
            response = service.handle({
                "op": "analyze", "text": edited,
                "entries": list(subject.entries),
            })
        except ReproError as exc:
            return self._skip(f"service failed: {exc}")
        # response["ok"] is transport-level ("request handled");
        # response["status"] carries the analysis outcome — 'failed'
        # means the service hit the same analysis error a from-scratch
        # run raises, so the comparison is status-vs-status.
        status = response.get("status") if response.get("ok") else None
        try:
            scratch = Analyzer(Program.from_text(edited)).analyze(
                subject.entries
            ).stable_dict()
        except ReproError as exc:
            if status == "failed":
                return self._ok(
                    f"both failed on edited program (edits: {applied})"
                )
            if response.get("ok"):
                return self._violation(
                    f"service served status={status} but from-scratch "
                    f"analysis raised {type(exc).__name__}: {exc} "
                    f"(edits: {applied})"
                )
            return self._skip(f"edited program unanalyzable: {exc}")
        if not response.get("ok"):
            return self._violation(
                f"service failed on analyzable edit: "
                f"{response.get('error')} (edits: {applied})"
            )
        if status == "failed":
            return self._violation(
                f"service reported analysis failure on an edit "
                f"from-scratch analysis handles (edits: {applied})"
            )
        if status != "exact":
            return self._skip(f"service degraded: {status}")
        if response["result"] != scratch:
            return self._violation(
                f"incremental facts differ from from-scratch after "
                f"edits {applied}"
            )
        probe = self._resume_probe(subject)
        if probe is not None:
            return probe
        return self._ok(f"edits: {','.join(applied) or 'none'}")

    def _resume_probe(self, subject: Subject):
        """Crash-mid-fixpoint-then-resume: trip a one-iteration budget
        with checkpointing at every pass, then re-issue the request with
        no budget — the service must resume from the persisted snapshot
        and serve exactly the from-scratch result.  Returns a violation
        Verdict or None (the probe folds into the oracle's verdict)."""
        from ..serve import AnalysisService, ServiceConfig

        service = AnalysisService(ServiceConfig(checkpoint_every=1))
        request = {
            "op": "analyze", "text": subject.source,
            "entries": list(subject.entries),
        }
        try:
            degraded = service.handle(dict(
                request, budget={"max_iterations": 1}
            ))
            if not degraded.get("ok") or degraded.get("status") != "degraded":
                return None  # too small to trip — nothing to resume
            resumed = service.handle(dict(request))
        except ReproError:
            return None
        try:
            scratch = Analyzer(Program.from_text(subject.source)).analyze(
                subject.entries
            ).stable_dict()
        except ReproError:
            return None
        if not resumed.get("ok") or resumed.get("status") != "exact":
            return self._violation(
                "resume after a mid-fixpoint budget trip did not "
                f"complete exactly (status={resumed.get('status')})"
            )
        if resumed["result"] != scratch:
            return self._violation(
                "resumed-from-checkpoint facts differ from from-scratch "
                "analysis after a mid-fixpoint budget trip"
            )
        return None


def default_oracles() -> List[Oracle]:
    """The standing oracle battery, in campaign order."""
    return [
        ExecutionAgreementOracle(),
        SoundnessOracle(),
        LatticeAgreementOracle(),
        OptValidationOracle(),
        IncrementalServeOracle(),
    ]


ORACLE_NAMES: Tuple[str, ...] = (
    "execution", "soundness", "lattice", "opt", "serve",
)


def oracles_by_name(names: Optional[Sequence[str]] = None) -> List[Oracle]:
    battery = {oracle.name: oracle for oracle in default_oracles()}
    if names is None:
        return list(battery.values())
    unknown = [name for name in names if name not in battery]
    if unknown:
        raise ValueError(
            f"unknown oracles {unknown}; available: {sorted(battery)}"
        )
    return [battery[name] for name in names]
