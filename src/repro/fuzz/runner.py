"""Budgeted fuzz campaigns: generate → check → shrink → report.

:func:`run_campaign` drives the whole loop.  Each iteration either
generates a fresh program (:mod:`repro.fuzz.grammar`) or mutates a seed
program — the Table 1 benchmarks plus any stored corpus reproducers —
with :mod:`repro.fuzz.mutate`, runs the oracle battery
(:mod:`repro.fuzz.oracles`) over it, and on a violation minimizes the
program with :mod:`repro.fuzz.shrink` and stores the reproducer in the
corpus.

Determinism contract: the summary document is a pure function of
``(seed, count, config)``.  Per-iteration randomness comes from
``random.Random(f"repro.fuzz.runner:{seed}:{index}")`` (string seeds
are PYTHONHASHSEED-independent), the document carries **no wall-clock
data**, and JSON is rendered with sorted keys — two runs with the same
arguments are byte-identical, which CI exploits by diffing them.

The budget is structural, not temporal: ``count`` programs, each goal
capped at ``max_steps`` machine steps (exhaustion is a counted *skip*,
never a hang), each shrink capped at ``shrink_attempts`` candidates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..prolog.program import Program
from ..wam.compile import compile_program
from ..wam.instructions import ALL_OPS, base_op
from .corpus import Corpus, benchmark_seed_sources
from .grammar import GenConfig, generate_program
from .mutate import Mutator
from .oracles import Oracle, Subject, Verdict, oracles_by_name

#: Pseudo-instructions that never execute; excluded from coverage.
_NON_EXECUTABLE = {"label"}


@dataclass
class CampaignConfig:
    """Everything a campaign run depends on."""

    seed: int = 0
    count: int = 100
    #: fraction of iterations that mutate a seed program instead of
    #: generating a fresh one (only when a seed pool exists).
    mutate_ratio: float = 0.25
    #: oracle names to run (None: the full battery).
    oracles: Optional[Sequence[str]] = None
    gen: GenConfig = field(default_factory=GenConfig)
    max_steps: int = 200_000
    max_solutions: int = 30
    #: SLD solver call-depth cap (see Subject.max_depth): keeps
    #: runaway-recursion mutants from overflowing the C stack.
    max_depth: int = 2_000
    #: minimize violating programs (delta debugging).
    shrink: bool = True
    shrink_attempts: int = 500
    #: corpus directory for reproducers + extra mutation seeds (None:
    #: in-memory only, nothing persisted).
    corpus_dir: Optional[str] = None
    #: mutate the Table 1 benchmarks as well as corpus entries.
    use_benchmarks: bool = True


def _iteration_rng(seed: int, index: int) -> random.Random:
    return random.Random(f"repro.fuzz.runner:{seed}:{index}")


def _opcode_coverage(source: str) -> Optional[List[str]]:
    """Static base opcodes of the compiled program (None: uncompilable).

    Opcodes are mapped through :func:`base_op` — the specialized
    ``_nv``/``_w``/``_r`` variants only exist in optimizer output, so
    the coverage universe is the unspecialized instruction set."""
    try:
        compiled = compile_program(Program.from_text(source))
    except Exception:  # noqa: BLE001 - counted by the caller
        return None
    return sorted({
        base_op(instr.op) for instr in compiled.code.instructions
        if instr.op not in _NON_EXECUTABLE
    })


class Campaign:
    """One run's mutable state; :meth:`run` produces the summary."""

    def __init__(
        self,
        config: CampaignConfig,
        oracles: Optional[List[Oracle]] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config
        self.oracles = (
            oracles if oracles is not None
            else oracles_by_name(config.oracles)
        )
        self.log = log or (lambda message: None)
        self.corpus = Corpus(config.corpus_dir) if config.corpus_dir else None
        self.verdict_counts: Dict[str, Dict[str, int]] = {
            oracle.name: {"ok": 0, "violation": 0, "skip": 0}
            for oracle in self.oracles
        }
        self.violations: List[dict] = []
        self.features: Dict[str, int] = {}
        self.opcodes_seen: set = set()
        self.programs = {
            "generated": 0, "mutated": 0, "uncompilable": 0,
            "clauses_total": 0,
        }
        self.shrink_stats = {
            "runs": 0, "clauses_before": 0, "clauses_after": 0,
            "attempts": 0,
        }

    # -- subject production --------------------------------------------

    def _seed_pool(self) -> List[Tuple[str, str, List[str], List[str]]]:
        pool: List[Tuple[str, str, List[str], List[str]]] = []
        if self.config.use_benchmarks:
            pool.extend(benchmark_seed_sources())
        if self.corpus is not None:
            pool.extend(self.corpus.seed_sources())
        return pool

    def _make_subject(
        self, index: int, rng: random.Random, pool
    ) -> Tuple[Subject, str, int]:
        """(subject, origin label, program seed) for one iteration."""
        program_seed = self.config.seed * 1_000_003 + index
        if pool and rng.random() < self.config.mutate_ratio:
            label, source, goals, entries = rng.choice(pool)
            mutated, applied = Mutator(rng).mutate_text(
                source, count=rng.randint(1, 3)
            )
            self.programs["mutated"] += 1
            for name in applied:
                self._feat(f"mutation.{name}")
            return (
                Subject(
                    source=mutated, goals=list(goals), entries=list(entries),
                    edit_seed=program_seed,
                    max_steps=self.config.max_steps,
                    max_solutions=self.config.max_solutions,
                    max_depth=self.config.max_depth,
                ),
                f"mutant:{label}",
                program_seed,
            )
        generated = generate_program(program_seed, self.config.gen)
        self.programs["generated"] += 1
        for name, count in generated.features.items():
            self.features[name] = self.features.get(name, 0) + count
        return (
            Subject(
                source=generated.source, goals=generated.goals,
                entries=generated.entries, edit_seed=program_seed,
                max_steps=self.config.max_steps,
                max_solutions=self.config.max_solutions,
                max_depth=self.config.max_depth,
            ),
            f"generated:{program_seed}",
            program_seed,
        )

    def _feat(self, name: str) -> None:
        self.features[name] = self.features.get(name, 0) + 1

    # -- violation handling --------------------------------------------

    def _handle_violation(
        self, index: int, origin: str, program_seed: int,
        subject: Subject, verdict: Verdict, oracle: Oracle,
    ) -> None:
        record = {
            "iteration": index,
            "origin": origin,
            "seed": program_seed,
            "oracle": verdict.oracle,
            "detail": verdict.detail,
            "source": subject.source,
        }
        if self.config.shrink:
            from .shrink import shrink

            def still_failing(candidate: str) -> bool:
                return oracle.check(Subject(
                    source=candidate, goals=list(subject.goals),
                    entries=list(subject.entries),
                    edit_seed=subject.edit_seed,
                    max_steps=subject.max_steps,
                    max_solutions=subject.max_solutions,
                    max_depth=subject.max_depth,
                )).is_violation

            result = shrink(
                subject.source, still_failing,
                max_attempts=self.config.shrink_attempts,
            )
            record["shrink"] = result.to_dict()
            record["minimized"] = result.source
            self.shrink_stats["runs"] += 1
            self.shrink_stats["clauses_before"] += result.clauses_before
            self.shrink_stats["clauses_after"] += result.clauses_after
            self.shrink_stats["attempts"] += result.attempts
            if self.corpus is not None:
                name, created = self.corpus.add(
                    oracle=verdict.oracle, seed=program_seed,
                    source=result.source, verdict_detail=verdict.detail,
                    goals=list(subject.goals),
                    entries=list(subject.entries),
                    shrink_stats=result.to_dict(),
                    original_source=subject.source,
                )
                record["corpus"] = name
                record["corpus_new"] = created
        self.violations.append(record)
        self.log(
            f"[{index}] VIOLATION {verdict.oracle}: {verdict.detail}"
        )

    # -- the loop -------------------------------------------------------

    def run(self) -> dict:
        config = self.config
        pool = self._seed_pool()
        for index in range(config.count):
            rng = _iteration_rng(config.seed, index)
            subject, origin, program_seed = self._make_subject(
                index, rng, pool
            )
            self.programs["clauses_total"] += subject.source.count(".\n")
            opcodes = _opcode_coverage(subject.source)
            if opcodes is None:
                self.programs["uncompilable"] += 1
                continue
            self.opcodes_seen.update(opcodes)
            for oracle in self.oracles:
                try:
                    verdict = oracle.check(subject)
                except Exception as exc:  # noqa: BLE001 - an oracle crash
                    # is itself a finding; surface it as a violation.
                    verdict = Verdict(
                        oracle.name, "violation",
                        f"oracle crashed: {type(exc).__name__}: {exc}",
                    )
                self.verdict_counts[oracle.name][verdict.status] += 1
                if verdict.is_violation:
                    self._handle_violation(
                        index, origin, program_seed, subject, verdict,
                        oracle,
                    )
        return self._summary()

    def _summary(self) -> dict:
        universe = sorted({
            base_op(op) for op in ALL_OPS if op not in _NON_EXECUTABLE
        })
        covered = sorted(self.opcodes_seen)
        builtins = {
            name.split(".", 1)[1]: count
            for name, count in sorted(self.features.items())
            if name.startswith("builtin.")
        }
        return {
            "suite": "repro.fuzz differential soundness campaign",
            "seed": self.config.seed,
            "count": self.config.count,
            "oracles": {
                name: dict(counts)
                for name, counts in sorted(self.verdict_counts.items())
            },
            "programs": dict(self.programs),
            "violations": self.violations,
            "violation_count": len(self.violations),
            "shrink": dict(self.shrink_stats),
            "coverage": {
                "opcodes": covered,
                "opcodes_covered": len(covered),
                "opcode_universe": len(universe),
                "opcodes_missing": sorted(set(universe) - set(covered)),
                "builtins": builtins,
                "features": dict(sorted(self.features.items())),
            },
        }


def run_campaign(
    config: CampaignConfig,
    oracles: Optional[List[Oracle]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run one campaign; returns the (deterministic) summary document."""
    return Campaign(config, oracles=oracles, log=log).run()
