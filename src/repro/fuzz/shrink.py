"""Delta-debugging shrinker: minimize a failing program, keep the bug.

:func:`shrink` takes a program text and a *failing predicate* — a
callable that returns True when a candidate text still triggers the
same oracle violation — and greedily minimizes the text while the
predicate keeps holding.  The procedure is **fully deterministic**: it
draws no randomness, candidate order is a pure function of the input,
so the same failing input always minimizes to the same reproducer
(this is asserted by the test suite and relied on by corpus dedup).

Reduction passes, applied to fixpoint:

1. **Clause removal** (ddmin-style): drop contiguous clause chunks,
   halving the chunk size down to single clauses.  Removing a clause
   may leave a predicate undefined — that's allowed if (and only if)
   the oracle still fails identically.
2. **Body-goal removal**: drop one body goal at a time.
3. **Term simplification**: replace argument subterms with the
   simplest value of their shape (``a`` for anything, ``0`` for other
   integers, ``[]`` for non-empty lists), one site at a time.

Every candidate is rebuilt through the parser/writer pipeline, so the
shrinker can never hand the predicate unparseable text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..prolog.program import Clause, Program
from ..prolog.terms import NIL, Atom, Int, Struct, Term, is_cons
from .mutate import render_program

_SIMPLEST_ATOM = Atom("a")
_ZERO = Int(0)


@dataclass
class ShrinkResult:
    """The minimized reproducer plus how the search went."""

    source: str
    clauses_before: int
    clauses_after: int
    rounds: int
    attempts: int
    accepted: int

    def to_dict(self) -> dict:
        return {
            "clauses_before": self.clauses_before,
            "clauses_after": self.clauses_after,
            "rounds": self.rounds,
            "attempts": self.attempts,
            "accepted": self.accepted,
        }


def _render(clauses: List[Clause], directives: List[Term],
            operators) -> str:
    program = Program(operators)
    for directive in directives:
        program.directives.append(directive)
    for clause in clauses:
        program.add_clause(clause)
    return render_program(program)


def _flat_clauses(program: Program) -> List[Clause]:
    return [
        clause
        for predicate in program.predicates.values()
        for clause in predicate.clauses
    ]


def _copy(clause: Clause) -> Clause:
    return Clause(clause.head, list(clause.body), position=clause.position)


# -- term simplification sites ------------------------------------------

Path = Tuple[int, ...]


def _subterm_paths(term: Term, path: Path = ()) -> Iterator[Tuple[Path, Term]]:
    yield path, term
    if isinstance(term, Struct):
        for index, argument in enumerate(term.args):
            yield from _subterm_paths(argument, path + (index,))


def _replace_at(term: Term, path: Path, replacement: Term) -> Term:
    if not path:
        return replacement
    assert isinstance(term, Struct)
    args = list(term.args)
    args[path[0]] = _replace_at(args[path[0]], path[1:], replacement)
    return Struct(term.name, tuple(args))


def _simplifications(term: Term) -> Iterator[Term]:
    """Candidate one-point simplifications of an *argument* term, in a
    fixed order (smaller replacements first)."""
    for path, sub in _subterm_paths(term):
        if is_cons(sub):
            yield _replace_at(term, path, NIL)
        if isinstance(sub, Int) and sub.value != 0:
            yield _replace_at(term, path, _ZERO)
        if isinstance(sub, Struct) or (
            isinstance(sub, Atom) and sub not in (_SIMPLEST_ATOM, NIL)
        ):
            yield _replace_at(term, path, _SIMPLEST_ATOM)


def _clause_simplifications(clause: Clause) -> Iterator[Clause]:
    head = clause.head
    if isinstance(head, Struct):
        for index, argument in enumerate(head.args):
            for simplified in _simplifications(argument):
                args = list(head.args)
                args[index] = simplified
                yield Clause(
                    Struct(head.name, tuple(args)), list(clause.body)
                )
    for position, goal in enumerate(clause.body):
        if not isinstance(goal, Struct):
            continue
        for index, argument in enumerate(goal.args):
            for simplified in _simplifications(argument):
                args = list(goal.args)
                args[index] = simplified
                body = list(clause.body)
                body[position] = Struct(goal.name, tuple(args))
                yield Clause(clause.head, body)


# -- the search ---------------------------------------------------------


class _Search:
    def __init__(
        self,
        failing: Callable[[str], bool],
        directives: List[Term],
        operators,
        max_attempts: int,
    ) -> None:
        self.failing = failing
        self.directives = directives
        self.operators = operators
        self.max_attempts = max_attempts
        self.attempts = 0
        self.accepted = 0

    def exhausted(self) -> bool:
        return self.attempts >= self.max_attempts

    def try_candidate(self, clauses: List[Clause]) -> Optional[str]:
        if self.exhausted():
            return None
        self.attempts += 1
        text = _render(clauses, self.directives, self.operators)
        try:
            still_failing = self.failing(text)
        except Exception:  # noqa: BLE001 - a candidate that crashes the
            return None    # predicate is simply not a reproducer
        if still_failing:
            self.accepted += 1
            return text
        return None


def shrink(
    text: str,
    failing: Callable[[str], bool],
    max_attempts: int = 2000,
) -> ShrinkResult:
    """Minimize ``text`` while ``failing(candidate)`` stays True.

    ``failing`` must already hold for (the re-rendered form of)
    ``text``; if it doesn't, the input is returned unshrunk.
    """
    program = Program.from_text(text)
    clauses = [_copy(c) for c in _flat_clauses(program)]
    directives = list(program.directives)
    operators = program.operators
    search = _Search(failing, directives, operators, max_attempts)

    current = _render(clauses, directives, operators)
    before = len(clauses)
    if not failing(current):
        return ShrinkResult(
            source=current, clauses_before=before, clauses_after=before,
            rounds=0, attempts=1, accepted=0,
        )

    rounds = 0
    changed = True
    while changed and not search.exhausted():
        changed = False
        rounds += 1

        # Pass 1: clause chunks, halving.
        size = max(1, len(clauses) // 2)
        while size >= 1 and not search.exhausted():
            start = 0
            while start < len(clauses):
                candidate = clauses[:start] + clauses[start + size:]
                if candidate and search.try_candidate(candidate):
                    clauses = candidate
                    changed = True
                else:
                    start += size
            if size == 1:
                break
            size //= 2

        # Pass 2: drop body goals, one at a time.
        clause_index = 0
        while clause_index < len(clauses) and not search.exhausted():
            goal_index = 0
            while goal_index < len(clauses[clause_index].body):
                candidate = [_copy(c) for c in clauses]
                candidate[clause_index].body.pop(goal_index)
                if search.try_candidate(candidate):
                    clauses = candidate
                    changed = True
                else:
                    goal_index += 1
            clause_index += 1

        # Pass 3: simplify argument terms, first improvement per clause.
        clause_index = 0
        while clause_index < len(clauses) and not search.exhausted():
            progressed = True
            while progressed and not search.exhausted():
                progressed = False
                for simplified in _clause_simplifications(
                    clauses[clause_index]
                ):
                    candidate = [_copy(c) for c in clauses]
                    candidate[clause_index] = simplified
                    if search.try_candidate(candidate):
                        clauses = candidate
                        changed = True
                        progressed = True
                        break
            clause_index += 1

    return ShrinkResult(
        source=_render(clauses, directives, operators),
        clauses_before=before,
        clauses_after=len(clauses),
        rounds=rounds,
        attempts=search.attempts,
        accepted=search.accepted,
    )
