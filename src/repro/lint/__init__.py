"""Static diagnostics: a WAM bytecode verifier and an analysis-driven linter.

The fourth client of the dataflow facts (after specialization,
parallelism annotation and dead-code removal): correctness tooling.

* :mod:`.verifier` — a forward dataflow pass over compiled WAM code that
  checks register-file and environment discipline (codes ``E1xx``);
* :mod:`.rules` / :mod:`.source` — source-level lint rules driven by the
  extension table (codes ``W0xx``/``E0xx``/``I0xx``);
* :mod:`.driver` — one-call aggregation into a :class:`LintReport`;
* :mod:`.diagnostics` — the shared structured-diagnostic core.

Run it as ``repro-lint file.pl "entry(g, var)"`` or
``python -m repro.lint ...``.
"""

from .diagnostics import Diagnostic, LintReport
from .driver import LintOptions, lint_file, lint_program
from .rules import RULES, LintContext, Rule
from .source import lint_source
from .verifier import verify_code, verify_compiled

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintOptions",
    "LintReport",
    "RULES",
    "Rule",
    "lint_file",
    "lint_program",
    "lint_source",
    "verify_code",
    "verify_compiled",
]
