"""``python -m repro.lint`` — same as the ``repro-lint`` console script."""

import sys

from ..cli import main_lint

if __name__ == "__main__":
    sys.exit(main_lint())
