"""Intra-predicate dataflow over linked WAM code.

The verifier (:mod:`repro.lint.verifier`) and the optimizer
(:mod:`repro.opt`) both need the same substrate: a control-flow graph
over one predicate's code region and worklist fixpoint solvers on top of
it.  This module provides that substrate plus two reusable analyses:

* :func:`x_liveness` — backward liveness of X registers, the fact behind
  dead-move elimination and environment-slot trimming;
* :func:`determinacy` — which predicates are selected deterministically
  by their first argument (instantiated selector, pairwise-distinct
  clause keys), reusing :mod:`repro.optimize.specialize`'s argument
  classification.

Control-flow edges come in two flavors.  A *flow* edge carries the
predecessor's out-state (fall-through, ``switch_*`` dispatch).  A
*fresh* edge models a backtracking restart: ``try_me_else`` /
``retry_me_else`` alternatives, ``try``/``retry``/``trust`` targets, and
the fall-through of ``try``/``retry`` are entered with the argument
registers freshly restored from the choice point, so solvers re-enter
them with the region's entry state instead of propagating the
predecessor's state across.

Branch targets outside the predicate's region are not edges: they are
collected in :attr:`ControlFlowGraph.escapes` (the verifier's ``E105``),
and addresses whose fall-through would leave the region end up in
:attr:`ControlFlowGraph.falls_off` (``E106``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from ..prolog.terms import Indicator
from ..wam.code import CodeArea
from ..wam.instructions import ALL_OPS, Instr, base_op, switch_default

#: Branch target meaning "backtrack" rather than an address.
FAIL_TARGET = -1

#: Opcodes that never fall through to the next address.
TERMINAL_OPS = frozenset(["execute", "proceed", "fail", "halt"])

#: Opcodes that transfer control without falling through.
JUMP_OPS = frozenset(
    ["trust", "switch_on_term", "switch_on_constant", "switch_on_structure"]
)

State = TypeVar("State")


@dataclass(frozen=True)
class Edge:
    """One control-flow edge; ``fresh`` marks a backtracking restart."""

    source: int
    target: int
    fresh: bool = False


class ControlFlowGraph:
    """The control-flow graph of one predicate's code region."""

    def __init__(self, code: CodeArea, indicator: Indicator, start: int, end: int):
        self.code = code
        self.indicator = indicator
        self.start = start
        self.end = end
        #: address -> outgoing edges (within the region).
        self.succ: Dict[int, List[Edge]] = {}
        #: address -> branch targets escaping the region (E105 material).
        self.escapes: Dict[int, List[object]] = {}
        #: addresses whose fall-through leaves the region (E106 material).
        self.falls_off: Set[int] = set()
        self._build()

    @property
    def arity(self) -> int:
        return self.indicator[1]

    def addresses(self) -> Iterable[int]:
        return range(self.start, self.end)

    def successors(self, address: int) -> List[Edge]:
        return self.succ.get(address, [])

    # ------------------------------------------------------------------

    def _add_edge(self, address: int, target: object, fresh: bool) -> None:
        if target == FAIL_TARGET:
            return
        if not isinstance(target, int) or not (self.start <= target < self.end):
            self.escapes.setdefault(address, []).append(target)
            return
        self.succ[address].append(Edge(address, target, fresh))

    def _add_fall(self, address: int, fresh: bool = False) -> None:
        if address + 1 >= self.end:
            self.falls_off.add(address)
            return
        self.succ[address].append(Edge(address, address + 1, fresh))

    def _build(self) -> None:
        for address in self.addresses():
            instruction = self.code.at(address)
            op = instruction.op
            base = base_op(op)
            self.succ[address] = []
            if base in TERMINAL_OPS:
                continue
            if op in ("try_me_else", "retry_me_else"):
                self._add_edge(address, instruction.args[0], fresh=True)
                self._add_fall(address)
                continue
            if op in ("try", "retry"):
                self._add_edge(address, instruction.args[0], fresh=True)
                # The next alternative runs after backtracking, with the
                # argument registers restored from the choice point.
                self._add_fall(address, fresh=True)
                continue
            if op == "trust":
                self._add_edge(address, instruction.args[0], fresh=True)
                continue
            if op == "switch_on_term":
                for target in instruction.args:
                    self._add_edge(address, target, fresh=False)
                continue
            if op in ("switch_on_constant", "switch_on_structure"):
                for _, target in instruction.args[0]:
                    self._add_edge(address, target, fresh=False)
                self._add_edge(address, switch_default(instruction), fresh=False)
                continue
            # Everything else — including unknown opcodes, which the
            # verifier flags as E108 — falls through.
            self._add_fall(address)

    # ------------------------------------------------------------------
    # Derived views (used by tests, docs and the optimizer).

    def predecessors(self) -> Dict[int, List[Edge]]:
        preds: Dict[int, List[Edge]] = {a: [] for a in self.addresses()}
        for edges in self.succ.values():
            for edge in edges:
                preds[edge.target].append(edge)
        return preds

    def reachable(self) -> Set[int]:
        """Addresses reachable from the region entry."""
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            address = queue.popleft()
            for edge in self.successors(address):
                if edge.target not in seen:
                    seen.add(edge.target)
                    queue.append(edge.target)
        return seen

    def basic_blocks(self) -> List[Tuple[int, int]]:
        """``(start, end)`` half-open ranges of maximal straight-line code."""
        leaders = {self.start}
        for address in self.addresses():
            edges = self.successors(address)
            is_straight = len(edges) == 1 and edges[0].target == address + 1
            if is_straight:
                continue  # plain fall-through does not start a block
            for edge in edges:
                leaders.add(edge.target)
            if address + 1 < self.end:
                leaders.add(address + 1)
        ordered = sorted(leaders)
        return [
            (leader, ordered[i + 1] if i + 1 < len(ordered) else self.end)
            for i, leader in enumerate(ordered)
        ]

    def back_edges(self) -> List[Edge]:
        """Edges whose target is an ancestor in a DFS from the entry."""
        result: List[Edge] = []
        color: Dict[int, int] = {}  # 0 absent, 1 on stack, 2 done
        stack: List[Tuple[int, int]] = [(self.start, 0)]
        color[self.start] = 1
        while stack:
            address, index = stack.pop()
            edges = self.successors(address)
            if index < len(edges):
                stack.append((address, index + 1))
                edge = edges[index]
                mark = color.get(edge.target, 0)
                if mark == 1:
                    result.append(edge)
                elif mark == 0:
                    color[edge.target] = 1
                    stack.append((edge.target, 0))
            else:
                color[address] = 2
        return result


def predicate_regions(code: CodeArea) -> List[Tuple[Indicator, int, int]]:
    """``(indicator, start, end)`` for every predicate, in address order."""
    entries = sorted(code.owners.items())
    regions = []
    for position, (start, indicator) in enumerate(entries):
        end = entries[position + 1][0] if position + 1 < len(entries) else len(code)
        regions.append((indicator, start, end))
    return regions


def build_cfg(
    code: CodeArea,
    indicator: Indicator,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> ControlFlowGraph:
    """The CFG of one predicate's region (bounds default to its extent)."""
    if start is None:
        start = code.entry[indicator]
    if end is None:
        end = start + code.size_of(indicator)
    return ControlFlowGraph(code, indicator, start, end)


# ----------------------------------------------------------------------
# Generic worklist solvers.


def solve_forward(
    cfg: ControlFlowGraph,
    entry_state: State,
    transfer: Callable[[int, Instr, State], Optional[State]],
    merge: Callable[[State, State], Tuple[State, object]],
    on_merge_conflict: Optional[Callable[[int, object], None]] = None,
) -> Dict[int, State]:
    """Forward fixpoint: returns the in-state of every reached address.

    ``transfer(address, instruction, state)`` returns the out-state, or
    ``None`` to stop propagation (the verifier does this on unknown
    opcodes).  ``merge(old, new)`` returns ``(merged, conflict)``; a
    truthy ``conflict`` is handed to ``on_merge_conflict`` (the
    verifier's E107 at merge points).  Fresh edges are re-entered with
    ``entry_state`` — the machine restores the argument registers from
    the choice point there, so the predecessor's state does not flow.
    """
    states: Dict[int, State] = {cfg.start: entry_state}
    worklist: List[int] = [cfg.start]
    while worklist:
        address = worklist.pop()
        out = transfer(address, cfg.code.at(address), states[address])
        if out is None:
            continue
        for edge in cfg.successors(address):
            incoming = entry_state if edge.fresh else out
            existing = states.get(edge.target)
            if existing is None:
                states[edge.target] = incoming
                worklist.append(edge.target)
                continue
            merged, conflict = merge(existing, incoming)
            if conflict and on_merge_conflict is not None:
                on_merge_conflict(edge.target, conflict)
            if merged != existing:
                states[edge.target] = merged
                worklist.append(edge.target)
    return states


def solve_backward(
    cfg: ControlFlowGraph,
    exit_state: State,
    transfer: Callable[[int, Instr, State], State],
    merge: Callable[[State, State], State],
) -> Tuple[Dict[int, State], Dict[int, State]]:
    """Backward fixpoint over the whole region: ``(in, out)`` per address.

    The out-state of an address merges the in-states of its *flow*
    successors, starting from ``exit_state``.  Fresh successors
    contribute nothing: a backtracking restart rebuilds the machine
    state from the choice point, so nothing the restarted code reads
    flows backward across the edge.  Terminal instructions and
    fall-off-the-end addresses take ``exit_state`` as their out-state.
    """
    ins: Dict[int, State] = {}
    outs: Dict[int, State] = {}
    preds = cfg.predecessors()
    worklist = deque(reversed(list(cfg.addresses())))
    queued = set(worklist)
    while worklist:
        address = worklist.popleft()
        queued.discard(address)
        out = exit_state
        for edge in cfg.successors(address):
            if edge.fresh:
                continue
            out = merge(out, ins.get(edge.target, exit_state))
        outs[address] = out
        new_in = transfer(address, cfg.code.at(address), out)
        if ins.get(address) != new_in:
            ins[address] = new_in
            for edge in preds[address]:
                if not edge.fresh and edge.source not in queued:
                    queued.add(edge.source)
                    worklist.append(edge.source)
    return ins, outs


# ----------------------------------------------------------------------
# Liveness of X registers (backward may-analysis).


@dataclass
class LivenessResult:
    """Live X registers before/after each address of one region."""

    cfg: ControlFlowGraph
    live_in: Dict[int, FrozenSet[int]]
    live_out: Dict[int, FrozenSet[int]]


#: Sentinel def-set: the instruction clobbers every X register.
KILL_ALL = "all"


def x_uses_defs(
    instruction: Instr, arity: int
) -> Tuple[Set[int], object]:
    """``(uses, defs)`` of X registers; ``defs`` may be :data:`KILL_ALL`.

    Indexing instructions *use* ``X1..Xarity``: ``try``-family ops
    snapshot the argument registers into the choice point, and the
    switches dispatch on (at least) ``X1`` while guaranteeing the
    arguments stay intact for the selected clause.
    """
    op = base_op(instruction.op)
    args = instruction.args
    uses: Set[int] = set()
    defs: Set[int] = set()

    def reg_use(register) -> None:
        if getattr(register, "kind", None) == "x":
            uses.add(register.index)

    def reg_def(register) -> None:
        if getattr(register, "kind", None) == "x":
            defs.add(register.index)

    if op == "put_variable":
        reg_def(args[0])
        defs.add(args[1])
    elif op == "put_value":
        reg_use(args[0])
        defs.add(args[1])
    elif op in ("put_constant",):
        defs.add(args[1])
    elif op == "put_nil":
        defs.add(args[0])
    elif op in ("put_list", "put_structure"):
        reg_def(args[-1])
    elif op == "get_variable":
        uses.add(args[1])
        reg_def(args[0])
    elif op == "get_value":
        reg_use(args[0])
        uses.add(args[1])
    elif op == "get_constant":
        uses.add(args[1])
    elif op == "get_nil":
        uses.add(args[0])
    elif op in ("get_list", "get_structure"):
        reg_use(args[-1])
    elif op == "unify_variable":
        reg_def(args[0])
    elif op == "unify_value":
        reg_use(args[0])
    elif op in ("call", "execute", "builtin"):
        predicate = args[0]
        uses.update(range(1, predicate[1] + 1))
        if op == "call":
            return uses, KILL_ALL
    elif op in ("try_me_else", "retry_me_else", "trust_me", "try", "retry", "trust"):
        uses.update(range(1, arity + 1))
    elif op in ("switch_on_term", "switch_on_constant", "switch_on_structure"):
        uses.update(range(1, arity + 1))
    # unify_constant/unify_nil/unify_void, allocate/deallocate, proceed,
    # neck_cut, get_level/cut (Y only), fail, halt: no X effect.
    return uses, defs


def x_liveness(cfg: ControlFlowGraph) -> LivenessResult:
    """Backward liveness of X registers over one predicate region."""
    arity = cfg.arity
    empty: FrozenSet[int] = frozenset()

    def transfer(address: int, instruction: Instr, out: FrozenSet[int]):
        uses, defs = x_uses_defs(instruction, arity)
        if defs == KILL_ALL:
            return frozenset(uses)
        return (out - defs) | uses

    ins, outs = solve_backward(
        cfg, empty, transfer, lambda a, b: a | b
    )
    return LivenessResult(cfg, ins, outs)


# ----------------------------------------------------------------------
# Determinacy (first-argument selection).


@dataclass(frozen=True)
class DeterminacyInfo:
    """First-argument selection facts for one predicate.

    ``selector_class`` is the analysis class of the first argument at
    call time (``'ground'``/``'nonvar'``/``'var'``/``None``);
    ``keys_distinct`` says the clauses' first-argument keys are pairwise
    distinct and none is a variable; ``deterministic`` is the paper's
    claim — an instantiated selector over distinct keys never needs a
    choice point.
    """

    indicator: Indicator
    selector_class: Optional[str]
    keys_distinct: bool

    @property
    def deterministic(self) -> bool:
        return self.selector_class in ("ground", "nonvar") and self.keys_distinct


def determinacy(compiled, result) -> Dict[Indicator, DeterminacyInfo]:
    """Determinacy facts for every analyzed predicate with code.

    ``compiled`` is a :class:`~repro.wam.compile.CompiledProgram`,
    ``result`` an :class:`~repro.analysis.results.AnalysisResult`; the
    argument classification and key-distinctness logic are shared with
    :mod:`repro.optimize.specialize`.
    """
    from ..optimize.specialize import _argument_class, _first_arg_keys_distinct

    facts: Dict[Indicator, DeterminacyInfo] = {}
    for indicator in result.predicates():
        info = result.predicate(indicator)
        if info is None or indicator not in compiled.code.entry:
            continue
        selector = None
        for argument in info.arguments:
            if argument.position == 0:
                selector = _argument_class(argument.call_type)
                break
        facts[indicator] = DeterminacyInfo(
            indicator=indicator,
            selector_class=selector,
            keys_distinct=_first_arg_keys_distinct(compiled, indicator),
        )
    return facts


__all__ = [
    "ControlFlowGraph",
    "DeterminacyInfo",
    "Edge",
    "FAIL_TARGET",
    "JUMP_OPS",
    "KILL_ALL",
    "LivenessResult",
    "TERMINAL_OPS",
    "build_cfg",
    "determinacy",
    "predicate_regions",
    "solve_backward",
    "solve_forward",
    "x_liveness",
    "x_uses_defs",
]
