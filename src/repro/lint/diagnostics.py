"""Structured diagnostics shared by the bytecode verifier and the linter.

A :class:`Diagnostic` is one user-facing finding: a stable code
(``E0xx``/``W0xx``/``I0xx`` for source findings, ``E1xx`` for bytecode
findings), a severity, a source location, and a message.  Diagnostics
render as the conventional one-line compiler format::

    file.pl:3:1: warning: W002: singleton variable 'X' in nrev/2

:class:`LintReport` aggregates diagnostics from all passes, sorts them
into a stable order, and renders the whole report as text or JSON.  The
CLI's exit status comes from :attr:`LintReport.has_errors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..prolog.terms import Indicator, format_indicator

#: Severities in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the verifier or the linter."""

    code: str
    severity: str
    message: str
    file: str = "?"
    #: (line, column) in the source file, or None when unknown (e.g. for
    #: hand-assembled bytecode).
    position: Optional[Tuple[int, int]] = None
    #: predicate the finding belongs to, when there is one.
    predicate: Optional[Indicator] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        """``file:line:column`` with ``?`` for unknown parts."""
        if self.position is None:
            return f"{self.file}:?:?"
        return f"{self.file}:{self.position[0]}:{self.position[1]}"

    def to_text(self) -> str:
        text = f"{self.location}: {self.severity}: {self.code}: {self.message}"
        if self.predicate is not None:
            text += f" [{format_indicator(self.predicate)}]"
        return text

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.position[0] if self.position is not None else None,
            "column": self.position[1] if self.position is not None else None,
            "predicate": (
                format_indicator(self.predicate)
                if self.predicate is not None
                else None
            ),
        }


def _sort_key(diagnostic: Diagnostic):
    position = diagnostic.position if diagnostic.position is not None else (1 << 30, 0)
    return (diagnostic.file, position, diagnostic.code, diagnostic.message)


@dataclass
class LintReport:
    """All diagnostics of one lint run, in stable order."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics) -> None:
        for diagnostic in diagnostics:
            if diagnostic not in self.diagnostics:
                self.diagnostics.append(diagnostic)

    def sort(self) -> None:
        self.diagnostics.sort(key=_sort_key)

    # ------------------------------------------------------------------

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def summary(self) -> str:
        parts = []
        for severity in reversed(SEVERITIES):
            n = self.count(severity)
            if n:
                parts.append(f"{n} {severity}{'s' if n != 1 else ''}")
        return ", ".join(parts) if parts else "clean"

    # ------------------------------------------------------------------

    def to_text(self) -> str:
        lines = [d.to_text() for d in self.diagnostics]
        lines.append(f"% lint: {self.summary}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        counts: Dict[str, int] = {s: self.count(s) for s in SEVERITIES}
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": counts,
            "has_errors": self.has_errors,
        }
