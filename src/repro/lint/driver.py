"""The lint driver: analysis + verifier + source rules in one call.

:func:`lint_program` is the library API: given a program (text, parsed,
or path contents) and entry calling patterns, it runs the fixpoint
analysis, verifies the compiled bytecode, runs every source rule, and
aggregates everything into one sorted
:class:`~repro.lint.diagnostics.LintReport`.

:func:`lint_file` adds file handling and turns syntax errors into ``E001``
diagnostics instead of exceptions, so the CLI always produces a report.

Undefined predicates default to the ``top`` policy (assume they can be
called with anything and succeed with anything): a linter should report
them (rule ``W009``), not crash on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..analysis.driver import Analyzer
from ..analysis.results import AnalysisResult
from ..errors import ReproError
from ..prolog.library import with_library
from ..prolog.program import Program
from ..robust import Budget
from ..wam.compile import CompilerOptions
from .diagnostics import Diagnostic, LintReport
from .source import lint_source
from .verifier import verify_compiled


@dataclass
class LintOptions:
    """Switches for one lint run."""

    depth: int = 4
    subsumption: bool = False
    on_undefined: str = "top"
    environment_trimming: bool = True
    #: run the bytecode verifier over the compiled program.
    verify: bool = True
    #: run the source rules.
    source: bool = True
    #: optional resource budget for the underlying analysis.
    budget: Optional[Budget] = None
    #: deterministic fault injection (tests only).
    fault_plan: object = None
    #: a linter should produce a report, not crash, when the budget
    #: trips — hence "degrade" here, unlike the analyzer's "raise".
    on_budget: str = "degrade"


def lint_program(
    program: Union[Program, str],
    entries: Sequence[str],
    file: str = "?",
    options: Optional[LintOptions] = None,
) -> LintReport:
    """Lint a program against the given entry calling patterns."""
    if options is None:
        options = LintOptions()
    if isinstance(program, str):
        program = Program.from_text(program)
    report = LintReport()
    analyzer = Analyzer(
        program,
        options=CompilerOptions(
            environment_trimming=options.environment_trimming
        ),
        depth=options.depth,
        subsumption=options.subsumption,
        on_undefined=options.on_undefined,
        budget=options.budget,
        fault_plan=options.fault_plan,
        on_budget=options.on_budget,
    )
    result: Optional[AnalysisResult] = None
    try:
        result = analyzer.analyze(list(entries))
    except ReproError as error:
        report.extend(
            [
                Diagnostic(
                    code="E000",
                    severity="error",
                    message=f"analysis failed: {error}",
                    file=file,
                )
            ]
        )
    if result is not None and result.status != "exact":
        # Entry specs whose analysis *errored* (not merely ran out of
        # budget) keep the historical E000 semantics even in degrade
        # mode — the result is sound but the error is still an error.
        report.extend(
            [
                Diagnostic(
                    code="E000",
                    severity="error",
                    message=f"analysis failed: {entry_report.reason}",
                    file=file,
                )
                for entry_report in result.entry_reports
                if entry_report.status == "failed"
            ]
        )
        non_exact = ", ".join(
            f"{entry_report.spec} ({entry_report.status})"
            for entry_report in result.entry_reports
            if entry_report.status != "exact"
        )
        report.extend(
            [
                Diagnostic(
                    code="I001",
                    severity="info",
                    message=(
                        "analysis widened to ⊤ for entry "
                        f"{non_exact}; precision-dependent rules "
                        "(W003-W007, I008) are muted for this run"
                    ),
                    file=file,
                )
            ]
        )
    if options.verify:
        report.extend(verify_compiled(analyzer.compiled, file=file))
    if options.source:
        report.extend(lint_source(program, result, file=file))
    report.sort()
    return report


def lint_file(
    path: str,
    entries: Sequence[str],
    library: bool = False,
    options: Optional[LintOptions] = None,
) -> LintReport:
    """Lint a Prolog source file; syntax errors become ``E001``.

    The parser recovers at clause boundaries, so *every* malformed
    clause yields its own ``E001`` and the well-formed remainder is
    still analyzed and linted.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    program, errors = Program.from_text_with_recovery(text)
    if errors:
        report = LintReport()
        report.extend(
            [
                Diagnostic(
                    code="E001",
                    severity="error",
                    message=f"syntax error: {error}",
                    file=path,
                    position=(error.line, error.column) if error.line else None,
                )
                for error in errors
            ]
        )
        if not program.predicates:
            report.sort()
            return report
        if library:
            program = with_library(program)
        inner = lint_program(program, entries, file=path, options=options)
        report.extend(inner.diagnostics)
        report.sort()
        return report
    if library:
        program = with_library(program)
    return lint_program(program, entries, file=path, options=options)
