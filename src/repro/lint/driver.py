"""The lint driver: analysis + verifier + source rules in one call.

:func:`lint_program` is the library API: given a program (text, parsed,
or path contents) and entry calling patterns, it runs the fixpoint
analysis, verifies the compiled bytecode, runs every source rule, and
aggregates everything into one sorted
:class:`~repro.lint.diagnostics.LintReport`.

:func:`lint_file` adds file handling and turns syntax errors into ``E001``
diagnostics instead of exceptions, so the CLI always produces a report.

Undefined predicates default to the ``top`` policy (assume they can be
called with anything and succeed with anything): a linter should report
them (rule ``W009``), not crash on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..analysis.driver import Analyzer
from ..analysis.results import AnalysisResult
from ..errors import PrologSyntaxError, ReproError
from ..prolog.library import with_library
from ..prolog.program import Program
from ..wam.compile import CompilerOptions
from .diagnostics import Diagnostic, LintReport
from .source import lint_source
from .verifier import verify_compiled


@dataclass
class LintOptions:
    """Switches for one lint run."""

    depth: int = 4
    subsumption: bool = False
    on_undefined: str = "top"
    environment_trimming: bool = True
    #: run the bytecode verifier over the compiled program.
    verify: bool = True
    #: run the source rules.
    source: bool = True


def lint_program(
    program: Union[Program, str],
    entries: Sequence[str],
    file: str = "?",
    options: Optional[LintOptions] = None,
) -> LintReport:
    """Lint a program against the given entry calling patterns."""
    if options is None:
        options = LintOptions()
    if isinstance(program, str):
        program = Program.from_text(program)
    report = LintReport()
    analyzer = Analyzer(
        program,
        options=CompilerOptions(
            environment_trimming=options.environment_trimming
        ),
        depth=options.depth,
        subsumption=options.subsumption,
        on_undefined=options.on_undefined,
    )
    result: Optional[AnalysisResult] = None
    try:
        result = analyzer.analyze(list(entries))
    except ReproError as error:
        report.extend(
            [
                Diagnostic(
                    code="E000",
                    severity="error",
                    message=f"analysis failed: {error}",
                    file=file,
                )
            ]
        )
    if options.verify:
        report.extend(verify_compiled(analyzer.compiled, file=file))
    if options.source:
        report.extend(lint_source(program, result, file=file))
    report.sort()
    return report


def lint_file(
    path: str,
    entries: Sequence[str],
    library: bool = False,
    options: Optional[LintOptions] = None,
) -> LintReport:
    """Lint a Prolog source file; syntax errors become ``E001``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        program = with_library(text) if library else Program.from_text(text)
    except PrologSyntaxError as error:
        report = LintReport()
        position = (error.line, error.column) if error.line else None
        report.extend(
            [
                Diagnostic(
                    code="E001",
                    severity="error",
                    message=f"syntax error: {error}",
                    file=path,
                    position=position,
                )
            ]
        )
        return report
    return lint_program(program, entries, file=path, options=options)
