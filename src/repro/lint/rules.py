"""Source-level lint rules driven by the dataflow analysis.

Each rule is a function from a :class:`LintContext` to an iterable of
:class:`~repro.lint.diagnostics.Diagnostic`; the :data:`RULES` registry
pairs every rule with its stable code and one-line description (the docs
catalogue and the CLI's ``--explain`` output both come from it).

Codes:

* ``W002`` — singleton variable: a named variable occurring exactly once
  in its clause (almost always a typo; prefix with ``_`` to silence);
* ``W003`` — unreachable predicate: defined but absent from the extension
  table, i.e. never called from any analyzed entry point;
* ``W004`` — dead clause: the clause head abstractly unifies with no
  recorded calling pattern of its predicate, so it can never be selected;
* ``W005`` — predicate can never succeed: every recorded calling pattern
  has an empty success pattern;
* ``E006`` — arithmetic mode violation: an ``is/2`` or arithmetic
  comparison whose operand contains a variable that is abstractly free
  under every recorded calling pattern (a guaranteed
  ``instantiation_error`` at run time);
* ``W007`` — goal always fails: a body goal calls a predicate the table
  proves can never succeed, making the rest of the clause unreachable;
* ``I008`` — determinism hint: every recorded calling pattern of a
  multi-clause predicate selects exactly one clause (first-argument
  indexing makes it deterministic, no choice point needed);
* ``W009`` — call to a predicate that is neither defined in the program
  nor a builtin (an ``existence_error`` at run time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..analysis.results import AnalysisResult
from ..domain.lattice import VAR_T, tree_is_ground, tree_leq
from ..optimize.deadcode import clause_matches, find_dead_code
from ..prolog.builtins import BUILTIN_INDICATORS
from ..prolog.program import Clause, Program
from ..prolog.terms import (
    Atom,
    Indicator,
    Struct,
    Term,
    Var,
    format_indicator,
    indicator_of,
    term_vars,
)
from ..prolog.writer import term_to_text
from ..wam.builtins import MACHINE_BUILTIN_INDICATORS
from .diagnostics import Diagnostic

#: Control constructs; their subgoals are walked, the constructs
#: themselves are never "undefined predicates".
CONTROL_INDICATORS = frozenset(
    [(",", 2), (";", 2), ("->", 2), ("\\+", 1), ("!", 0)]
)

#: Goals whose operands are evaluated as arithmetic: ``is/2`` evaluates
#: its right operand, comparisons evaluate both.
ARITHMETIC_GOALS: Dict[Indicator, Tuple[int, ...]] = {
    ("is", 2): (1,),
    ("<", 2): (0, 1),
    (">", 2): (0, 1),
    ("=<", 2): (0, 1),
    (">=", 2): (0, 1),
    ("=:=", 2): (0, 1),
    ("=\\=", 2): (0, 1),
}

_KNOWN_INDICATORS = (
    MACHINE_BUILTIN_INDICATORS | BUILTIN_INDICATORS | CONTROL_INDICATORS
)


@dataclass
class LintContext:
    """Everything a source rule may consult."""

    program: Program
    result: Optional[AnalysisResult]
    file: str = "?"

    def diagnostic(
        self,
        code: str,
        severity: str,
        message: str,
        clause: Optional[Clause] = None,
        predicate: Optional[Indicator] = None,
    ) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=severity,
            message=message,
            file=self.file,
            position=clause.position if clause is not None else None,
            predicate=predicate,
        )

    def is_internal(self, indicator: Indicator) -> bool:
        """Compiler-synthesized predicates are not user-facing."""
        return indicator[0].startswith("$")

    @property
    def trusted(self) -> Optional[AnalysisResult]:
        """The analysis result, but only when it is globally *exact*.

        Precision-dependent rules (dead code, failing goals, determinism,
        arithmetic modes) reason from "every recorded calling pattern".
        Once any entry spec degraded, the set of recorded calling
        patterns is incomplete — even predicates whose own entries look
        exact may be missing patterns the interrupted exploration would
        have added — so those rules must not fire at all.  Rules that
        only need the program text (singletons, undefined predicates)
        keep working from ``program``.
        """
        result = self.result
        if result is None or result.status != "exact":
            return None
        return result


# ----------------------------------------------------------------------
# W002: singleton variables.

def _count_vars(term: Term, counts: Dict[int, Tuple[Var, int]]) -> None:
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            existing = counts.get(id(current))
            counts[id(current)] = (current, existing[1] + 1 if existing else 1)
        elif isinstance(current, Struct):
            stack.extend(current.args)


def check_singletons(context: LintContext) -> Iterator[Diagnostic]:
    for indicator, predicate in context.program.predicates.items():
        if context.is_internal(indicator):
            continue
        for clause in predicate.clauses:
            counts: Dict[int, Tuple[Var, int]] = {}
            for term in [clause.head] + clause.body:
                _count_vars(term, counts)
            for variable, count in counts.values():
                name = variable.name
                if count != 1 or not name or name.startswith("_"):
                    continue
                yield context.diagnostic(
                    "W002",
                    "warning",
                    f"singleton variable '{name}' "
                    "(prefix with _ if intentional)",
                    clause=clause,
                    predicate=indicator,
                )


# ----------------------------------------------------------------------
# W003/W004/W005: the dead-code report re-emitted as located diagnostics.

def _first_position(context: LintContext, indicator: Indicator):
    predicate = context.program.predicate(indicator)
    if predicate is not None and predicate.clauses:
        return predicate.clauses[0]
    return None


def check_dead_code(context: LintContext) -> Iterator[Diagnostic]:
    result = context.trusted
    if result is None:
        return
    report = find_dead_code(context.program, result)
    for indicator in report.unreachable_predicates:
        if context.is_internal(indicator):
            continue
        yield context.diagnostic(
            "W003",
            "warning",
            f"unreachable predicate {format_indicator(indicator)} "
            "(never called from the analyzed entry points)",
            clause=_first_position(context, indicator),
            predicate=indicator,
        )
    for indicator, index, clause in report.dead_clauses:
        if context.is_internal(indicator):
            continue
        yield context.diagnostic(
            "W004",
            "warning",
            f"dead clause {index + 1} of {format_indicator(indicator)}: "
            "head matches no recorded calling pattern",
            clause=clause,
            predicate=indicator,
        )
    for indicator in report.failing_predicates:
        if context.is_internal(indicator):
            continue
        yield context.diagnostic(
            "W005",
            "warning",
            f"predicate {format_indicator(indicator)} can never succeed "
            "(every recorded calling pattern has an empty success pattern)",
            clause=_first_position(context, indicator),
            predicate=indicator,
        )


# ----------------------------------------------------------------------
# E006: arithmetic mode violations, via a clause-local binding walk.

#: Abstract binding states: ``free`` is *definitely* an unbound variable
#: (under every recorded calling pattern), ``ground`` definitely ground,
#: ``unknown`` anything else.  Only ``free`` triggers E006.
_FREE, _GROUND, _UNKNOWN = "free", "ground", "unknown"


def _head_states(
    context: LintContext, indicator: Indicator, clause: Clause
) -> Dict[int, str]:
    """Initial binding states of head variables from the call types."""
    states: Dict[int, str] = {}
    trusted = context.trusted
    info = trusted.predicate(indicator) if trusted is not None else None
    if not isinstance(clause.head, Struct):
        return states
    for position, argument in enumerate(clause.head.args):
        call_type = (
            info.arguments[position].call_type
            if info is not None and position < len(info.arguments)
            else None
        )
        if isinstance(argument, Var):
            if argument.name == "_":
                continue
            if call_type is None:
                state = _UNKNOWN
            elif tree_leq(call_type, VAR_T):
                state = _FREE
            elif tree_is_ground(call_type):
                state = _GROUND
            else:
                state = _UNKNOWN
            existing = states.get(id(argument))
            states[id(argument)] = (
                state if existing in (None, state) else _UNKNOWN
            )
        else:
            inner = (
                _GROUND
                if call_type is not None and tree_is_ground(call_type)
                else _UNKNOWN
            )
            for variable in term_vars(argument):
                states[id(variable)] = inner
    return states


def _success_state(context: LintContext, indicator: Indicator, position: int):
    trusted = context.trusted
    if trusted is None:
        return _UNKNOWN
    info = trusted.predicate(indicator)
    if info is None or position >= len(info.arguments):
        return _UNKNOWN
    success = info.arguments[position].success_type
    if success is None:
        return None  # the call cannot succeed; state does not matter
    if tree_is_ground(success):
        return _GROUND
    if tree_leq(success, VAR_T):
        return _FREE
    return _UNKNOWN


def check_arithmetic_modes(context: LintContext) -> Iterator[Diagnostic]:
    for indicator, predicate in context.program.predicates.items():
        if context.is_internal(indicator):
            continue
        for clause in predicate.clauses:
            yield from _walk_clause_arithmetic(context, indicator, clause)


def _walk_clause_arithmetic(
    context: LintContext, indicator: Indicator, clause: Clause
) -> Iterator[Diagnostic]:
    states = _head_states(context, indicator, clause)

    def state_of(variable: Var) -> str:
        # A variable not seen yet has its first occurrence here: free.
        return states.get(id(variable), _FREE)

    def set_all(term: Term, state: str) -> None:
        for variable in term_vars(term):
            states[id(variable)] = state

    for goal in clause.body:
        if isinstance(goal, Atom):
            continue
        if not isinstance(goal, Struct):
            continue
        goal_indicator = goal.indicator
        if goal_indicator in ARITHMETIC_GOALS:
            for position in ARITHMETIC_GOALS[goal_indicator]:
                operand = goal.args[position]
                for variable in term_vars(operand):
                    if state_of(variable) == _FREE:
                        yield context.diagnostic(
                            "E006",
                            "error",
                            f"arithmetic goal '{term_to_text(goal)}' "
                            f"evaluates '{variable}', which is unbound "
                            "under every recorded calling pattern "
                            "(guaranteed instantiation_error)",
                            clause=clause,
                            predicate=indicator,
                        )
                # On success every evaluated variable is a number.
                set_all(operand, _GROUND)
            if goal_indicator == ("is", 2) and isinstance(goal.args[0], Var):
                states[id(goal.args[0])] = _GROUND
            continue
        if goal_indicator in CONTROL_INDICATORS:
            if goal_indicator == ("\\+", 1):
                continue  # \+/1 never exports bindings
            set_all(goal, _UNKNOWN)
            continue
        callee = context.program.predicate(goal_indicator)
        if callee is None:
            set_all(goal, _UNKNOWN)
            continue
        # A user call: refine argument variables from the success types.
        for position, argument in enumerate(goal.args):
            if isinstance(argument, Var):
                after = _success_state(context, goal_indicator, position)
                if after is None:
                    continue
                if after == _FREE:
                    continue  # provably still unbound: state unchanged
                states[id(argument)] = after
            else:
                set_all(argument, _UNKNOWN)


# ----------------------------------------------------------------------
# W007: goals that are proven to always fail.

def check_failing_goals(context: LintContext) -> Iterator[Diagnostic]:
    result = context.trusted
    if result is None:
        return
    failing: Set[Indicator] = set()
    for indicator in result.predicates():
        entries = result.table.entries_for(indicator)
        if entries and all(entry.success is None for entry in entries):
            failing.add(indicator)
    if not failing:
        return
    for indicator, predicate in context.program.predicates.items():
        if context.is_internal(indicator):
            continue
        for clause in predicate.clauses:
            for goal in clause.body:
                if not goal.is_callable():
                    continue
                goal_indicator = indicator_of(goal)
                if goal_indicator in failing and not context.is_internal(
                    goal_indicator
                ):
                    yield context.diagnostic(
                        "W007",
                        "warning",
                        f"goal '{term_to_text(goal)}' can never succeed; "
                        "the rest of the clause is unreachable",
                        clause=clause,
                        predicate=indicator,
                    )


# ----------------------------------------------------------------------
# I008: determinism hints.

def check_determinism(context: LintContext) -> Iterator[Diagnostic]:
    result = context.trusted
    if result is None:
        return
    for indicator, predicate in context.program.predicates.items():
        if context.is_internal(indicator) or len(predicate.clauses) < 2:
            continue
        entries = result.table.entries_for(indicator)
        if not entries:
            continue
        if all(
            sum(
                1
                for clause in predicate.clauses
                if clause_matches(entry.calling, clause)
            )
            == 1
            for entry in entries
        ):
            yield context.diagnostic(
                "I008",
                "info",
                f"{format_indicator(indicator)} is deterministic: every "
                "recorded calling pattern selects exactly one clause",
                clause=predicate.clauses[0],
                predicate=indicator,
            )


# ----------------------------------------------------------------------
# W009: calls to undefined predicates.

def _body_goals(goal: Term) -> Iterator[Term]:
    """The goal and, for control constructs, its subgoals."""
    if isinstance(goal, Struct) and goal.indicator in CONTROL_INDICATORS:
        for argument in goal.args:
            yield from _body_goals(argument)
        return
    yield goal


def check_undefined(context: LintContext) -> Iterator[Diagnostic]:
    defined = set(context.program.predicates.keys())
    for indicator, predicate in context.program.predicates.items():
        if context.is_internal(indicator):
            continue
        for clause in predicate.clauses:
            for goal in clause.body:
                for sub in _body_goals(goal):
                    if isinstance(sub, Var) or not sub.is_callable():
                        continue
                    sub_indicator = indicator_of(sub)
                    if (
                        sub_indicator in defined
                        or sub_indicator in _KNOWN_INDICATORS
                        or sub_indicator[0] in ("true", "fail", "!")
                    ):
                        continue
                    yield context.diagnostic(
                        "W009",
                        "warning",
                        f"call to undefined predicate "
                        f"{format_indicator(sub_indicator)} "
                        "(existence_error at run time)",
                        clause=clause,
                        predicate=indicator,
                    )


# ----------------------------------------------------------------------
# The registry.

@dataclass(frozen=True)
class Rule:
    """One lint rule with its stable code."""

    code: str
    severity: str
    name: str
    description: str
    check: object  # Callable[[LintContext], Iterable[Diagnostic]]


RULES: List[Rule] = [
    Rule(
        "W002",
        "warning",
        "singleton-variable",
        "named variable occurring exactly once in its clause",
        check_singletons,
    ),
    Rule(
        "W003",
        "warning",
        "unreachable-predicate",
        "predicate never called from the analyzed entry points",
        check_dead_code,
    ),
    Rule(
        "W004",
        "warning",
        "dead-clause",
        "clause head matches no recorded calling pattern",
        check_dead_code,
    ),
    Rule(
        "W005",
        "warning",
        "never-succeeds",
        "predicate with an empty success pattern for every call",
        check_dead_code,
    ),
    Rule(
        "E006",
        "error",
        "arithmetic-instantiation",
        "arithmetic over a variable that is unbound under every calling pattern",
        check_arithmetic_modes,
    ),
    Rule(
        "W007",
        "warning",
        "failing-goal",
        "body goal that the table proves can never succeed",
        check_failing_goals,
    ),
    Rule(
        "I008",
        "info",
        "deterministic",
        "every recorded calling pattern selects exactly one clause",
        check_determinism,
    ),
    Rule(
        "W009",
        "warning",
        "undefined-predicate",
        "call to a predicate that is neither defined nor a builtin",
        check_undefined,
    ),
]

#: Distinct check functions, in registry order (check_dead_code appears
#: once even though it implements three codes).
RULE_CHECKS = list(dict.fromkeys(rule.check for rule in RULES))
