"""The source linter: runs every registered rule over one program.

The linter is a client of the dataflow analysis in the sense of the
paper's Section 6: it consumes the extension table's calling/success
patterns (through :class:`~repro.analysis.results.AnalysisResult`) and
turns them into user-facing diagnostics.  Purely syntactic rules
(singletons, undefined predicates) run even when no analysis result is
available; the analysis-driven rules simply produce nothing then.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.results import AnalysisResult
from ..prolog.program import Program
from .diagnostics import Diagnostic
from .rules import RULE_CHECKS, LintContext


def lint_source(
    program: Program,
    result: Optional[AnalysisResult] = None,
    file: str = "?",
) -> List[Diagnostic]:
    """Run all source rules; ``result`` enables the analysis-driven ones."""
    context = LintContext(program=program, result=result, file=file)
    diagnostics: List[Diagnostic] = []
    for check in RULE_CHECKS:
        diagnostics.extend(check(context))
    return diagnostics
