"""WAM bytecode verifier: a forward dataflow pass over compiled code.

For each predicate in a linked :class:`~repro.wam.code.CodeArea` the
verifier solves a forward dataflow problem on the predicate's control
flow graph (built by :mod:`repro.lint.dataflow`, the same framework the
optimizer's liveness/determinacy passes run on), tracking an abstract
register file per address:

* which X registers hold a value (argument registers ``X1..Xn`` are live on
  entry; a ``call`` kills every temporary);
* whether an environment is allocated, how many Y slots it has, which
  slots have been initialized, and which were trimmed away by a ``call``'s
  live-slot count;
* whether ``deallocate`` already ran (any Y access after that is the
  classic ``put_unsafe_value`` omission: the slot may be overwritten
  before ``execute`` reads it).

States from different paths are merged by intersection, so every
diagnostic holds on *some* path the machine can actually take.  Fresh
edges (backtracking restarts — see the dataflow module) re-enter with
the entry state, exactly like the machine restoring argument registers
from a choice point.  The verifier is a regression net over the compiler
*and* the optimizer: on compiler-emitted code it must stay silent (see
``tests/test_lint_verifier.py``), every optimized code area must stay
verifier-clean (``repro.opt.validate``), while hand-assembled bad
sequences trigger the ``E1xx`` codes below.

Every message names the owning predicate and the absolute listing
address, so diagnostics are directly cross-referenceable against
:func:`repro.wam.listing.disassemble` output.

Codes:

* ``E101`` — X register read before it was written;
* ``E102`` — Y register access with no allocated environment (or beyond
  the environment's slot count);
* ``E103`` — Y register read before initialization, including slots
  trimmed away by an earlier ``call``;
* ``E104`` — Y register access after ``deallocate`` (``put_unsafe_value``
  omission);
* ``E105`` — branch target escapes the predicate's code region;
* ``E106`` — control can fall through the end of the predicate (missing
  ``execute``/``proceed``);
* ``E107`` — environment bookkeeping error (double ``allocate``,
  ``deallocate`` without an environment, ``execute``/``proceed`` with the
  environment still allocated, inconsistent states at a merge point);
* ``E108`` — unknown opcode (not part of the machine's instruction set).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..prolog.terms import Indicator, format_indicator
from ..wam.code import CodeArea
from ..wam.instructions import ALL_OPS, Instr, Reg, base_op
from ..wam.listing import format_instruction
from .dataflow import build_cfg, predicate_regions, solve_forward
from .diagnostics import Diagnostic


@dataclass(frozen=True)
class _State:
    """Abstract register file at one program point."""

    x: FrozenSet[int]
    #: slot count of the live environment, or None.
    env: Optional[int]
    y: FrozenSet[int]
    #: True after ``deallocate`` (environment gone for good on this path).
    freed: bool


def _merge(a: _State, b: _State) -> Tuple[_State, bool]:
    """Intersection merge; the flag reports an environment mismatch."""
    mismatch = a.env != b.env or a.freed != b.freed
    env = a.env if a.env == b.env else None
    freed = a.freed and b.freed
    return _State(a.x & b.x, env, a.y & b.y, freed), mismatch


class _PredicateVerifier:
    """Verifies one predicate's code region as a forward dataflow client."""

    def __init__(
        self,
        code: CodeArea,
        indicator: Indicator,
        start: int,
        end: int,
        file: str,
        position: Optional[Tuple[int, int]],
    ):
        self.code = code
        self.indicator = indicator
        self.start = start
        self.end = end
        self.file = file
        self.position = position
        self.arity = indicator[1]
        self.entry_state = _State(
            x=frozenset(range(1, self.arity + 1)),
            env=None,
            y=frozenset(),
            freed=False,
        )
        self.cfg = build_cfg(code, indicator, start, end)
        self.findings: Set[Tuple[str, int, str]] = set()

    # ------------------------------------------------------------------
    # Reporting.

    def _report(self, code: str, address: int, message: str) -> None:
        instruction = self.code.at(address)
        self.findings.add(
            (
                code,
                address,
                f"{message} (in {format_indicator(self.indicator)} "
                f"at {address}: {format_instruction(instruction)})",
            )
        )

    def diagnostics(self) -> List[Diagnostic]:
        return [
            Diagnostic(
                code=code,
                severity="error",
                message=message,
                file=self.file,
                position=self.position,
                predicate=self.indicator,
            )
            for code, _, message in sorted(self.findings, key=lambda f: (f[1], f[0]))
        ]

    # ------------------------------------------------------------------
    # The solve.

    def run(self) -> List[Diagnostic]:
        solve_forward(
            self.cfg,
            self.entry_state,
            self._transfer,
            _merge,
            on_merge_conflict=lambda address, _: self._report(
                "E107", address, "inconsistent environment state at merge point"
            ),
        )
        return self.diagnostics()

    # ------------------------------------------------------------------
    # Register accesses.

    def _read_x(self, address: int, index: int, x: Set[int]) -> None:
        if index not in x:
            self._report(
                "E101", address, f"X{index} read before it was written"
            )
            x.add(index)  # suppress cascading reports downstream

    def _access_y(
        self, address: int, index: int, state: _State, y: Set[int], write: bool
    ) -> None:
        if state.freed:
            self._report(
                "E104",
                address,
                f"Y{index} accessed after deallocate "
                "(put_unsafe_value omission)",
            )
            return
        if state.env is None or index > state.env:
            where = (
                "with no allocated environment"
                if state.env is None
                else f"beyond the environment's {state.env} slot(s)"
            )
            self._report("E102", address, f"Y{index} accessed {where}")
            return
        if write:
            y.add(index)
        elif index not in y:
            self._report(
                "E103",
                address,
                f"Y{index} read before initialization "
                "(or after being trimmed away)",
            )
            y.add(index)

    def _touch_reg(
        self,
        address: int,
        register: Reg,
        state: _State,
        x: Set[int],
        y: Set[int],
        write: bool,
    ) -> None:
        if register.kind == "x":
            if write:
                x.add(register.index)
            else:
                self._read_x(address, register.index, x)
        else:
            self._access_y(address, register.index, state, y, write)

    # ------------------------------------------------------------------
    # Transfer function.

    def _transfer(
        self, address: int, instruction: Instr, state: _State
    ) -> Optional[_State]:
        raw_op = instruction.op
        args = instruction.args
        if raw_op not in ALL_OPS or raw_op == "label":
            self._report("E108", address, f"unknown opcode {raw_op!r}")
            return None
        # Specialized opcodes have their base's dataflow behavior.
        op = base_op(raw_op)

        for target in self.cfg.escapes.get(address, []):
            self._report(
                "E105",
                address,
                f"branch target {target} escapes the code region "
                f"{self.start}..{self.end - 1}",
            )
        if address in self.cfg.falls_off:
            self._report(
                "E106",
                address,
                "control falls through the end of the predicate "
                "(missing execute/proceed)",
            )

        x = set(state.x)
        y = set(state.y)

        if op in ("put_variable", "get_variable", "get_value", "put_value"):
            register, position = args
            if op == "get_variable":
                self._read_x(address, position, x)
                self._touch_reg(address, register, state, x, y, write=True)
            elif op == "get_value":
                self._touch_reg(address, register, state, x, y, write=False)
                self._read_x(address, position, x)
            elif op == "put_value":
                self._touch_reg(address, register, state, x, y, write=False)
                x.add(position)
            else:  # put_variable writes both
                self._touch_reg(address, register, state, x, y, write=True)
                x.add(position)
            return replace(state, x=frozenset(x), y=frozenset(y))

        if op in ("put_constant", "put_nil"):
            x.add(args[-1])
            return replace(state, x=frozenset(x))
        if op in ("get_constant", "get_nil"):
            self._read_x(address, args[-1], x)
            return replace(state, x=frozenset(x))
        if op in ("put_list", "put_structure"):
            self._touch_reg(address, args[-1], state, x, y, write=True)
            return replace(state, x=frozenset(x), y=frozenset(y))
        if op in ("get_list", "get_structure"):
            self._touch_reg(address, args[-1], state, x, y, write=False)
            return replace(state, x=frozenset(x), y=frozenset(y))
        if op == "unify_variable":
            self._touch_reg(address, args[0], state, x, y, write=True)
            return replace(state, x=frozenset(x), y=frozenset(y))
        if op == "unify_value":
            self._touch_reg(address, args[0], state, x, y, write=False)
            return replace(state, x=frozenset(x), y=frozenset(y))
        if op in ("unify_constant", "unify_nil", "unify_void"):
            return state

        if op == "allocate":
            if state.env is not None:
                self._report(
                    "E107", address, "allocate with an environment already allocated"
                )
            return _State(x=frozenset(x), env=args[0], y=frozenset(), freed=False)
        if op == "deallocate":
            if state.env is None:
                self._report(
                    "E107", address, "deallocate without an allocated environment"
                )
            return _State(x=frozenset(x), env=None, y=frozenset(), freed=True)
        if op == "call":
            predicate, live = args
            for index in range(1, predicate[1] + 1):
                self._read_x(address, index, x)
            survivors = frozenset(s for s in y if s <= live) if state.env else frozenset()
            return replace(state, x=frozenset(), y=survivors)
        if op == "execute":
            predicate = args[0]
            for index in range(1, predicate[1] + 1):
                self._read_x(address, index, x)
            if state.env is not None:
                self._report(
                    "E107", address, "execute with the environment still allocated"
                )
            return None
        if op == "proceed":
            if state.env is not None:
                self._report(
                    "E107", address, "proceed with the environment still allocated"
                )
            return None
        if op == "builtin":
            predicate = args[0]
            for index in range(1, predicate[1] + 1):
                self._read_x(address, index, x)
            return replace(state, x=frozenset(x))
        if op == "neck_cut":
            return state
        if op == "get_level":
            self._access_y(address, args[0].index, state, y, write=True)
            return replace(state, y=frozenset(y))
        if op == "cut":
            self._access_y(address, args[0].index, state, y, write=False)
            return replace(state, y=frozenset(y))
        if op in ("fail", "halt"):
            return None

        if op in (
            "try_me_else",
            "retry_me_else",
            "trust_me",
            "try",
            "retry",
            "trust",
            "switch_on_term",
            "switch_on_constant",
            "switch_on_structure",
        ):
            # Control effects (fresh restarts, dispatch) live entirely in
            # the CFG's edges; the register file is untouched.
            return state

        raise AssertionError(f"unhandled opcode {op}")  # pragma: no cover


#: Backward-compatible alias; the implementation moved to repro.lint.dataflow.
_predicate_ranges = predicate_regions


def verify_code(
    code: CodeArea,
    file: str = "?",
    positions: Optional[Dict[Indicator, Tuple[int, int]]] = None,
) -> List[Diagnostic]:
    """Verify every predicate of a linked code area.

    ``positions`` maps indicators to source positions (first clause of the
    predicate) so diagnostics carry a ``file:line`` location.
    """
    positions = positions or {}
    diagnostics: List[Diagnostic] = []
    for indicator, start, end in predicate_regions(code):
        verifier = _PredicateVerifier(
            code, indicator, start, end, file, positions.get(indicator)
        )
        diagnostics.extend(verifier.run())
    return diagnostics


def verify_compiled(compiled, file: str = "?") -> List[Diagnostic]:
    """Verify a :class:`~repro.wam.compile.CompiledProgram`'s code area."""
    positions: Dict[Indicator, Tuple[int, int]] = {}
    for indicator, predicate in compiled.program.predicates.items():
        for clause in predicate.clauses:
            if clause.position is not None:
                positions[indicator] = clause.position
                break
    return verify_code(compiled.code, file=file, positions=positions)
