"""repro.obs — zero-dependency observability for the analyzer and serve stack.

Three pieces:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms in a :class:`MetricsRegistry` with snapshot/delta/merge,
  designed so that every instrumented component is a no-op when its
  ``metrics`` attribute is ``None`` (the default everywhere);
* :mod:`repro.obs.trace` — nested spans and events as JSON lines
  (request → entry spec → SCC → fixpoint iteration), togglable via
  ``--trace-out`` on ``repro-analyze`` and ``repro-serve``, with
  cross-process stitching (``stitch``/``validate_stitched``) for the
  gateway → shard → supervisor → worker pipeline;
* :mod:`repro.obs.viewer` — the zero-dependency static HTML
  time-travel viewer behind ``repro-trace html``;
* :mod:`repro.obs.report` — the ``repro-analyze --profile`` cost
  tables (instruction mix by opcode class, per-predicate cost,
  extension-table hit rate), computed from any registry snapshot.

The metric catalog, trace schema and aggregation semantics are
documented in ``docs/observability.md`` and ``docs/tracing.md``;
``tests/test_obs.py`` pins hand-counted metric values and the
metrics-on/off result identity.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OPCODE_CLASS,
    SECONDS_BUCKETS,
    metric_key,
    opcode_class,
)
from repro.obs.report import (
    format_profile,
    instruction_mix,
    split_key,
    table_hit_rate,
)
from repro.obs.trace import (
    SPANS_WIRE_KEY,
    TRACE_CONTEXT_KEY,
    Tracer,
    new_trace_id,
    read_trace,
    stitch,
    trace_summary,
    validate_nesting,
    validate_stitched,
)
from repro.obs.viewer import render_html

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OPCODE_CLASS",
    "SECONDS_BUCKETS",
    "SPANS_WIRE_KEY",
    "TRACE_CONTEXT_KEY",
    "Tracer",
    "format_profile",
    "instruction_mix",
    "metric_key",
    "new_trace_id",
    "opcode_class",
    "read_trace",
    "render_html",
    "split_key",
    "stitch",
    "table_hit_rate",
    "trace_summary",
    "validate_nesting",
    "validate_stitched",
]
