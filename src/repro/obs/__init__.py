"""repro.obs — zero-dependency observability for the analyzer and serve stack.

Three pieces:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms in a :class:`MetricsRegistry` with snapshot/delta/merge,
  designed so that every instrumented component is a no-op when its
  ``metrics`` attribute is ``None`` (the default everywhere);
* :mod:`repro.obs.trace` — nested spans and events as JSON lines
  (request → entry spec → SCC → fixpoint iteration), togglable via
  ``--trace-out`` on ``repro-analyze`` and ``repro-serve``;
* :mod:`repro.obs.report` — the ``repro-analyze --profile`` cost
  tables (instruction mix by opcode class, per-predicate cost,
  extension-table hit rate), computed from any registry snapshot.

The metric catalog, trace schema and aggregation semantics are
documented in ``docs/observability.md``; ``tests/test_obs.py`` pins
hand-counted metric values and the metrics-on/off result identity.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OPCODE_CLASS,
    SECONDS_BUCKETS,
    metric_key,
    opcode_class,
)
from repro.obs.report import (
    format_profile,
    instruction_mix,
    split_key,
    table_hit_rate,
)
from repro.obs.trace import Tracer, read_trace, validate_nesting

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OPCODE_CLASS",
    "SECONDS_BUCKETS",
    "Tracer",
    "format_profile",
    "instruction_mix",
    "metric_key",
    "opcode_class",
    "read_trace",
    "split_key",
    "table_hit_rate",
    "validate_nesting",
]
