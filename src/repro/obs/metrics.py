"""Counters, gauges and histograms — the measurement layer of repro.obs.

Design constraints, in order:

1. **Zero cost when off.**  Every instrumented component carries a
   ``metrics`` attribute that defaults to ``None``; the instrumentation
   site is one identity check (``if self.metrics is not None``) or, on
   the machine's dispatch loop, a branch *outside* the loop selecting
   the un-instrumented code path verbatim.  ``python -m
   repro.bench.emit`` measures the disabled path and records it in
   ``BENCH_obs.json``; ``docs/observability.md`` documents the budget
   (< 3 %).

2. **Zero dependencies, process-portable.**  A snapshot is a plain
   JSON-able dict; workers ship snapshot *deltas* up the pipe to the
   supervisor, which :meth:`MetricsRegistry.merge`\\ s them — counters
   and histogram buckets add, gauges take the max (every gauge in the
   catalog is a peak).

3. **Stable names.**  A metric is addressed by a name plus optional
   labels, rendered ``name{k=v,...}`` with label keys sorted — the
   exact keys listed in the catalog in ``docs/observability.md``.

Metrics never change analysis results: they only ever observe values,
and the test suite pins result equality with metrics on vs off
(``tests/test_obs.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets for durations in seconds (upper bounds;
#: a final +inf bucket is implicit).
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def metric_key(name: str, labels: Optional[Dict[str, object]] = None) -> str:
    """The flat snapshot key: ``name`` or ``name{k=v,...}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; every catalogued gauge records a *peak*,
    so cross-process aggregation is max, not last-writer-wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def to_snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: cumulative-free per-bucket counts plus
    sum and count (enough for rates, means and coarse percentiles)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = SECONDS_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """An upper bound for the ``q``-quantile (the bucket boundary);
        returns the last finite bound for the overflow bucket."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bound in enumerate(self.bounds):
            seen += self.counts[index]
            if seen >= target:
                return bound
        return self.bounds[-1]

    def to_snapshot(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """A named collection of metrics with snapshot/delta/merge support.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same object afterwards, so hot sites can bind the metric object
    once and skip the name lookup entirely.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        #: snapshot at the last :meth:`delta` call (for shipping deltas).
        self._mark: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Creation / access.

    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Counter()
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge()
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Sequence[float] = SECONDS_BUCKETS, **labels
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(bounds)
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    # ------------------------------------------------------------------
    # Snapshots, deltas, merging.

    def snapshot(self) -> Dict[str, dict]:
        """The whole registry as a sorted, JSON-able dict."""
        return {
            key: self._metrics[key].to_snapshot()  # type: ignore[attr-defined]
            for key in sorted(self._metrics)
        }

    def delta(self) -> Dict[str, dict]:
        """What changed since the previous :meth:`delta` call.

        Counters and histograms are differenced; gauges ship their
        current value (merge takes the max anyway).  Unchanged metrics
        are omitted, so an idle worker ships an empty dict.
        """
        current = self.snapshot()
        changed: Dict[str, dict] = {}
        for key, snap in current.items():
            previous = self._mark.get(key)
            if previous == snap:
                continue
            if previous is None or snap["type"] == "gauge":
                changed[key] = snap
            elif snap["type"] == "counter":
                changed[key] = {
                    "type": "counter",
                    "value": snap["value"] - previous["value"],
                }
            else:  # histogram
                changed[key] = {
                    "type": "histogram",
                    "bounds": snap["bounds"],
                    "counts": [
                        now - before
                        for now, before in zip(snap["counts"], previous["counts"])
                    ],
                    "sum": snap["sum"] - previous["sum"],
                    "count": snap["count"] - previous["count"],
                }
        self._mark = current
        return changed

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a snapshot (or delta) from another registry into this
        one: counters add, gauges max, histogram buckets add.  Metric
        kinds must agree key by key; a histogram merged across registries
        must use the same bucket bounds."""
        for key, snap in snapshot.items():
            kind = snap.get("type")
            if kind == "counter":
                metric = self._metrics.get(key)
                if metric is None:
                    metric = Counter()
                    self._metrics[key] = metric
                if not isinstance(metric, Counter):
                    raise ValueError(f"metric kind mismatch for {key!r}")
                metric.inc(snap["value"])
            elif kind == "gauge":
                metric = self._metrics.get(key)
                if metric is None:
                    metric = Gauge()
                    self._metrics[key] = metric
                if not isinstance(metric, Gauge):
                    raise ValueError(f"metric kind mismatch for {key!r}")
                metric.set_max(snap["value"])
            elif kind == "histogram":
                metric = self._metrics.get(key)
                if metric is None:
                    metric = Histogram(snap["bounds"])
                    self._metrics[key] = metric
                if not isinstance(metric, Histogram):
                    raise ValueError(f"metric kind mismatch for {key!r}")
                if list(metric.bounds) != list(snap["bounds"]):
                    raise ValueError(f"histogram bounds mismatch for {key!r}")
                for index, value in enumerate(snap["counts"]):
                    metric.counts[index] += value
                metric.sum += snap["sum"]
                metric.count += snap["count"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {key!r}")


# ----------------------------------------------------------------------
# Opcode classes: the instruction-mix axis of the profile (and of
# BENCH_obs.json).  Mirrors the paper's presentation of WAM cost by
# instruction family.

OPCODE_CLASS: Dict[str, str] = {}
for _op in (
    "get_variable", "get_value", "get_constant", "get_nil",
    "get_list", "get_structure",
):
    OPCODE_CLASS[_op] = "get"
for _op in (
    "put_variable", "put_value", "put_constant", "put_nil",
    "put_list", "put_structure",
):
    OPCODE_CLASS[_op] = "put"
for _op in (
    "unify_variable", "unify_value", "unify_constant", "unify_nil",
    "unify_void",
):
    OPCODE_CLASS[_op] = "unify"
for _op in (
    "call", "execute", "proceed", "allocate", "deallocate",
    "neck_cut", "get_level", "cut", "fail", "halt",
):
    OPCODE_CLASS[_op] = "control"
for _op in (
    "try_me_else", "retry_me_else", "trust_me", "try", "retry", "trust",
    "switch_on_term", "switch_on_constant", "switch_on_structure",
):
    OPCODE_CLASS[_op] = "index"
OPCODE_CLASS["builtin"] = "builtin"
# Specialized opcodes (repro.opt) count toward their base opcode's class
# so before/after instruction mixes stay comparable.
for _op, _base in (
    ("get_constant_nv", "get_constant"), ("get_nil_nv", "get_nil"),
    ("get_list_nv", "get_list"), ("get_structure_nv", "get_structure"),
    ("get_constant_w", "get_constant"), ("get_nil_w", "get_nil"),
    ("get_list_w", "get_list"), ("get_structure_w", "get_structure"),
    ("unify_variable_r", "unify_variable"), ("unify_value_r", "unify_value"),
    ("unify_constant_r", "unify_constant"), ("unify_nil_r", "unify_nil"),
    ("unify_void_r", "unify_void"),
    ("unify_variable_w", "unify_variable"), ("unify_value_w", "unify_value"),
    ("unify_constant_w", "unify_constant"), ("unify_nil_w", "unify_nil"),
    ("unify_void_w", "unify_void"),
):
    OPCODE_CLASS[_op] = OPCODE_CLASS[_base]


def opcode_class(op: str) -> str:
    """The opcode's class (``other`` for anything uncatalogued)."""
    return OPCODE_CLASS.get(op, "other")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OPCODE_CLASS",
    "SECONDS_BUCKETS",
    "metric_key",
    "opcode_class",
]
