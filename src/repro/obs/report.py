"""Human-readable profile reports over a metrics snapshot.

``repro-analyze --profile`` runs the analysis with a fresh
:class:`~repro.obs.metrics.MetricsRegistry` installed, then prints the
two cost tables this module formats:

* **instruction mix** — abstract WAM instructions by opcode class
  (get/put/unify/control/index/builtin), with counts and percentages,
  mirroring the cost axis of the paper's Table 1 ``Exec`` column;
* **predicate cost** — per predicate: calls consulted against the
  extension table and instructions attributed to it (an instruction is
  charged to the predicate of the innermost open exploration frame).

Everything is computed from the flat snapshot, so the same tables can
be produced from a live registry, a worker's shipped delta, or a
``metrics`` response of ``repro-serve``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

_LABELLED = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")


def split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """``"a.b{k=v,l=w}"`` → ``("a.b", {"k": "v", "l": "w"})``."""
    match = _LABELLED.match(key)
    if match is None:
        return key, {}
    labels: Dict[str, str] = {}
    for part in match.group("labels").split(","):
        if not part:
            continue
        name, _, value = part.partition("=")
        labels[name] = value
    return match.group("name"), labels


def _labelled_counters(
    snapshot: Dict[str, dict], name: str, label: str
) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for key, snap in snapshot.items():
        if snap.get("type") != "counter":
            continue
        base, labels = split_key(key)
        if base == name and label in labels:
            values[labels[label]] = snap["value"]
    return values


def _table(
    headers: List[str], rows: List[List[str]]
) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    ]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def instruction_mix(snapshot: Dict[str, dict]) -> Dict[str, int]:
    """Opcode-class → instruction count (see ``wam.instructions.class``)."""
    return _labelled_counters(snapshot, "wam.instructions.class", "class")


def table_hit_rate(snapshot: Dict[str, dict]) -> Dict[str, object]:
    """Lookups, hits, misses and the hit rate of the extension table."""
    lookups = snapshot.get("table.lookups", {}).get("value", 0)
    hits = snapshot.get("table.hits", {}).get("value", 0)
    misses = snapshot.get("table.misses", {}).get("value", 0)
    return {
        "lookups": lookups,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / lookups, 4) if lookups else None,
    }


def format_profile(snapshot: Dict[str, dict]) -> str:
    """The full ``--profile`` report (both tables plus the table stats)."""
    sections: List[str] = []
    # ---- instruction mix -------------------------------------------
    mix = instruction_mix(snapshot)
    total = sum(mix.values()) or 1
    rows = [
        [klass, str(count), f"{100.0 * count / total:.1f}"]
        for klass, count in sorted(
            mix.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    rows.append(["total", str(sum(mix.values())), "100.0"])
    sections.append(
        "% instruction mix (abstract WAM, by opcode class)\n"
        + _table(["class", "instructions", "%"], rows)
    )
    # ---- per-opcode detail -----------------------------------------
    by_op = _labelled_counters(snapshot, "wam.instructions.op", "op")
    if by_op:
        rows = [
            [op, str(count), f"{100.0 * count / total:.1f}"]
            for op, count in sorted(
                by_op.items(), key=lambda item: (-item[1], item[0])
            )[:12]
        ]
        sections.append(
            "% hottest opcodes (top 12)\n"
            + _table(["opcode", "instructions", "%"], rows)
        )
    # ---- predicate cost --------------------------------------------
    cost = _labelled_counters(
        snapshot, "analysis.predicate.instructions", "pred"
    )
    calls = _labelled_counters(snapshot, "analysis.predicate.calls", "pred")
    if cost or calls:
        predicates = sorted(
            set(cost) | set(calls),
            key=lambda pred: (-cost.get(pred, 0), pred),
        )
        attributed = sum(cost.values()) or 1
        rows = [
            [
                pred,
                str(calls.get(pred, 0)),
                str(cost.get(pred, 0)),
                f"{100.0 * cost.get(pred, 0) / attributed:.1f}",
            ]
            for pred in predicates
        ]
        sections.append(
            "% predicate cost (instructions attributed to the innermost "
            "open exploration)\n"
            + _table(["predicate", "calls", "instructions", "%"], rows)
        )
    # ---- extension table -------------------------------------------
    table = table_hit_rate(snapshot)
    rate = table["hit_rate"]
    sections.append(
        "% extension table: "
        f"{table['lookups']} lookups, {table['hits']} hits, "
        f"{table['misses']} misses"
        + (f", hit rate {rate:.2%}" if rate is not None else "")
    )
    unify = snapshot.get("analysis.unify.calls", {}).get("value")
    if unify is not None:
        sections.append(f"% abstract unification: {unify} s_unify calls")
    return "\n\n".join(sections)


__all__ = [
    "format_profile",
    "instruction_mix",
    "split_key",
    "table_hit_rate",
]
