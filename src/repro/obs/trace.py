"""Structured tracing: nested spans and events as JSON lines.

A :class:`Tracer` writes one JSON object per line to a file or stderr.
Timestamps come from ``time.monotonic()`` (re-based so the first record
is at ~0), which never goes backwards — trace durations are real even
across NTP steps.  The record schema (see docs/observability.md):

``{"ts": 0.00123, "kind": "begin", "span": 2, "parent": 1,
   "name": "entry_spec", "attrs": {...}}``
``{"ts": ..., "kind": "event", "span": 2, "name": "iteration", "attrs": {...}}``
``{"ts": ..., "kind": "end",   "span": 2, "name": "entry_spec",
   "elapsed": 0.004}``

Invariants (checked by :func:`validate_nesting`, pinned by the tests):

* spans strictly nest — ``end`` always closes the most recently opened
  span, and a span's ``parent`` is the span open at its ``begin``;
* every ``begin`` has exactly one matching ``end`` (``Tracer.close``
  ends anything left open, so a crashed trace is still well formed up
  to its tail);
* events carry the id of the innermost open span (or ``null`` at top
  level).

**Cross-process stitching** (see docs/tracing.md).  A tracer created
with a ``process`` name participates in a *stitched* trace: every
record carries ``"process"``, root spans carry the ``"trace"`` id, a
wall-clock ``"epoch"`` anchor, and — when the tracer was created under
an upstream :func:`Tracer.current_context` — a ``"parent_ref"`` naming
the remote parent as ``"<process>:<span>"``.  The context travels on
the wire as a ``traceparent``-style dict::

    {"trace": "9f2ab4e61c03d5f7", "parent": "supervisor-0:3"}

:func:`stitch` merges records from any number of processes into one
tree with globally-qualified span ids and a shared time base;
:func:`validate_stitched` is the multi-process-aware checker —
per-process LIFO discipline plus resolvable, acyclic cross-process
parent edges.  Single-process traces (``process=None``) are unchanged
byte-for-byte, and :func:`validate_nesting` keeps its strict contract.

The tracer is for the *structural* layers — request → entry spec → SCC
→ fixpoint iteration.  Per-instruction tracing stays the job of the
Figure-3 style :mod:`repro.wam.trace` machinery.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, IO, Iterable, List, Optional, Union

#: Wire key carrying the trace context on serve requests (stripped
#: before the request reaches analysis, like ``_chaos``).
TRACE_CONTEXT_KEY = "_trace"

#: Wire key carrying a worker's completed span records on its response
#: (popped and re-emitted by the supervisor, like ``_metrics``).
SPANS_WIRE_KEY = "_spans"


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id."""
    return os.urandom(8).hex()


class Tracer:
    """Writes nested spans and point events as JSON lines.

    ``sink`` is a path (opened for append-less overwrite), ``"-"``
    for stderr, or any file-like object with ``write``.

    ``process`` (optional) names this tracer's track in a stitched
    multi-process trace; ``context`` (optional) is an upstream
    :meth:`current_context` dict — the root spans of this tracer then
    carry a ``parent_ref`` edge to the remote parent.  ``trace_id``
    pins the trace id (defaults to the context's, else a fresh one).
    """

    def __init__(
        self,
        sink: Union[str, IO[str]],
        process: Optional[str] = None,
        context: Optional[dict] = None,
        trace_id: Optional[str] = None,
    ):
        if isinstance(sink, str):
            if sink == "-":
                self._handle: IO[str] = sys.stderr
                self._owns_handle = False
            else:
                self._handle = open(sink, "w", encoding="utf-8")
                self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self._epoch = time.monotonic()
        self._next_id = 1
        #: (span id, name, start time) of every open span, outermost first.
        self._stack: List[tuple] = []
        self.records_written = 0
        self.process = process
        self._context_parent = (context or {}).get("parent")
        if process is not None:
            self.trace_id = (
                trace_id
                or (context or {}).get("trace")
                or new_trace_id()
            )
            #: Wall-clock anchor for cross-process time alignment:
            #: unix seconds at this tracer's ts=0.
            self._epoch_unix = time.time()
        else:
            self.trace_id = trace_id
            self._epoch_unix = None

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return round(time.monotonic() - self._epoch, 6)

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    # ------------------------------------------------------------------

    def begin(self, name: str, _parent_ref: Optional[str] = None, **attrs) -> int:
        """Open a span; returns its id.  Prefer :meth:`span`.

        ``_parent_ref`` (a ``"<process>:<span>"`` string) records a
        cross-process parent edge on a *root* span — ignored for nested
        spans, whose parent is the local innermost open span.
        """
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1][0] if self._stack else None
        record = {
            "ts": self._now(),
            "kind": "begin",
            "span": span_id,
            "parent": parent,
            "name": name,
        }
        if self.process is not None:
            record["process"] = self.process
            if parent is None:
                record["trace"] = self.trace_id
                record["epoch"] = round(self._epoch_unix + record["ts"], 6)
                ref = _parent_ref if _parent_ref is not None else self._context_parent
                if ref is not None:
                    record["parent_ref"] = ref
        elif parent is None and _parent_ref is not None:
            record["parent_ref"] = _parent_ref
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        self._stack.append((span_id, name, time.monotonic()))
        return span_id

    def end(self, **attrs) -> None:
        """Close the innermost open span."""
        if not self._stack:
            raise ValueError("no open span to end")
        span_id, name, started = self._stack.pop()
        record = {
            "ts": self._now(),
            "kind": "end",
            "span": span_id,
            "name": name,
            "elapsed": round(time.monotonic() - started, 6),
        }
        if self.process is not None:
            record["process"] = self.process
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def span(self, name: str, **attrs) -> "_Span":
        """``with tracer.span("request", op="analyze"): ...``"""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        record = {
            "ts": self._now(),
            "kind": "event",
            "span": self._stack[-1][0] if self._stack else None,
            "name": name,
        }
        if self.process is not None:
            record["process"] = self.process
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    # ------------------------------------------------------------------
    # Cross-process context.

    def current_context(self) -> Optional[dict]:
        """The wire context for work dispatched *under* the innermost
        open span: ``{"trace": ..., "parent": "<process>:<span>"}``.
        ``None`` unless this tracer has a ``process`` name."""
        if self.process is None:
            return None
        parent = (
            f"{self.process}:{self._stack[-1][0]}" if self._stack else None
        )
        return {"trace": self.trace_id, "parent": parent}

    def emit_foreign(self, records: Iterable[dict]) -> int:
        """Re-emit pre-formed records from another process verbatim
        (the supervisor absorbing a worker's ``_spans`` block).  The
        records never touch this tracer's span stack or clock; returns
        the number written."""
        count = 0
        for record in records:
            if isinstance(record, dict):
                self._write(record)
                count += 1
        return count

    def close(self) -> None:
        """End any spans still open, flush, and release the sink."""
        while self._stack:
            self.end(aborted=True)
        try:
            self._handle.flush()
        except (OSError, ValueError, AttributeError):
            pass
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Span:
    __slots__ = ("_tracer", "_name", "_attrs")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._tracer.begin(self._name, **self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._tracer.end(error=repr(exc))
        else:
            self._tracer.end()


# ----------------------------------------------------------------------
# Reading traces back (tests and tooling).


def read_trace(path: str) -> List[dict]:
    """Parse a trace file back into its records, in order."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_nesting(records: List[dict]) -> Dict[int, dict]:
    """Check the span invariants; returns ``{span id: begin record}``.

    Raises :class:`ValueError` on the first violation: an ``end`` for a
    span that is not innermost, an event pointing at a closed span, a
    ``parent`` that was not open at begin time, an unclosed span, or a
    non-monotonic timestamp.

    This is the *strict single-process* checker.  Records from more
    than one process interleave freely in a shared sink, so a stitched
    trace must be checked with :func:`validate_stitched` instead.
    """
    stack: List[int] = []
    begun: Dict[int, dict] = {}
    last_ts = float("-inf")
    for record in records:
        ts = record["ts"]
        if ts < last_ts:
            raise ValueError(f"timestamps went backwards at {record}")
        last_ts = ts
        kind = record["kind"]
        if kind == "begin":
            expected_parent = stack[-1] if stack else None
            if record["parent"] != expected_parent:
                raise ValueError(
                    f"span {record['span']} parent {record['parent']} != "
                    f"open span {expected_parent}"
                )
            if record["span"] in begun:
                raise ValueError(f"span id {record['span']} reused")
            begun[record["span"]] = record
            stack.append(record["span"])
        elif kind == "end":
            if not stack or stack[-1] != record["span"]:
                raise ValueError(
                    f"end of span {record['span']} but open stack is {stack}"
                )
            stack.pop()
        elif kind == "event":
            expected = stack[-1] if stack else None
            if record["span"] != expected:
                raise ValueError(
                    f"event {record['name']} points at span {record['span']} "
                    f"but innermost open span is {expected}"
                )
        else:
            raise ValueError(f"unknown record kind {kind!r}")
    if stack:
        raise ValueError(f"unclosed spans at EOF: {stack}")
    return begun


# ----------------------------------------------------------------------
# Cross-process stitching.


def _process_of(record: dict) -> str:
    return record.get("process", "main")


def _qualify(process: str, span) -> str:
    return f"{process}:{span}"


def stitch(records: Iterable[dict]) -> List[dict]:
    """Merge raw multi-process records into one stitched record list.

    Input records may interleave processes arbitrarily (a shared sink)
    as long as each process's own records stay in order — which a
    per-process tracer guarantees.  Output records have:

    * string span ids ``"<process>:<span>"`` (already-stitched records
      pass through unchanged);
    * ``parent`` resolved — local parents qualified with the process,
      process roots linked through their ``parent_ref``;
    * timestamps re-based onto a shared origin using each process's
      wall-clock ``epoch`` anchor (processes without one keep their own
      relative clock at the shared origin).
    """
    records = list(records)
    # Wall-clock anchor per process: epoch_unix - ts at the anchor record.
    origin: Dict[str, float] = {}
    for record in records:
        if record.get("epoch") is not None:
            process = _process_of(record)
            if process not in origin:
                origin[process] = float(record["epoch"]) - float(record["ts"])
    base = min(origin.values()) if origin else 0.0
    stitched: List[dict] = []
    for record in records:
        if isinstance(record.get("span"), str):
            stitched.append(dict(record))  # already stitched
            continue
        process = _process_of(record)
        out = {
            "ts": round(
                float(record["ts"]) + origin.get(process, base) - base, 6
            ),
            "kind": record["kind"],
            "name": record["name"],
            "process": process,
        }
        span = record.get("span")
        out["span"] = _qualify(process, span) if span is not None else None
        if record["kind"] == "begin":
            if record.get("parent") is not None:
                out["parent"] = _qualify(process, record["parent"])
            else:
                out["parent"] = record.get("parent_ref")
            if record.get("trace") is not None:
                out["trace"] = record["trace"]
        for key in ("elapsed", "attrs"):
            if key in record:
                out[key] = record[key]
        stitched.append(out)
    stitched.sort(key=lambda record: record["ts"])
    return stitched


def validate_stitched(records: List[dict]) -> Dict[str, dict]:
    """The multi-process-aware checker; returns ``{span id: begin}``.

    Per process: strict LIFO span discipline, no span-id reuse, events
    point at the process's innermost open span, one ``end`` per
    ``begin``, no unclosed spans.  Across processes: every non-local
    parent edge must resolve to a span that exists somewhere in the
    trace, and the parent graph must be acyclic.  Raises
    :class:`ValueError` on the first violation.

    Accepts raw multi-process records too (they are stitched first).
    """
    if any(not isinstance(record.get("span"), (str, type(None)))
           for record in records):
        records = stitch(records)
    stacks: Dict[str, List[str]] = {}
    begun: Dict[str, dict] = {}
    ended: Dict[str, bool] = {}
    for record in records:
        process = _process_of(record)
        stack = stacks.setdefault(process, [])
        kind = record["kind"]
        span = record["span"]
        if kind == "begin":
            if span in begun:
                raise ValueError(f"span id {span!r} reused")
            expected = stack[-1] if stack else None
            parent = record.get("parent")
            local = isinstance(parent, str) and parent.rpartition(":")[0] == process
            if local and parent != expected:
                raise ValueError(
                    f"span {span!r} parent {parent!r} != innermost open "
                    f"span {expected!r} of process {process!r}"
                )
            if not local and stack:
                raise ValueError(
                    f"span {span!r} has non-local parent {parent!r} but "
                    f"process {process!r} already has open spans {stack}"
                )
            begun[span] = record
            ended[span] = False
            stack.append(span)
        elif kind == "end":
            if not stack or stack[-1] != span:
                raise ValueError(
                    f"end of span {span!r} but open stack of process "
                    f"{process!r} is {stack}"
                )
            stack.pop()
            ended[span] = True
        elif kind == "event":
            expected = stack[-1] if stack else None
            if span != expected:
                raise ValueError(
                    f"event {record['name']} points at span {span!r} but "
                    f"innermost open span of {process!r} is {expected!r}"
                )
        else:
            raise ValueError(f"unknown record kind {kind!r}")
    open_spans = [span for process, stack in stacks.items() for span in stack]
    if open_spans:
        raise ValueError(f"unclosed spans at EOF: {open_spans}")
    # Cross-process parent edges must resolve, and the graph be acyclic.
    for span, record in begun.items():
        parent = record.get("parent")
        if parent is not None and parent not in begun:
            raise ValueError(
                f"span {span!r} parent {parent!r} does not exist in the trace"
            )
        seen = {span}
        walk = parent
        while walk is not None:
            if walk in seen:
                raise ValueError(f"parent cycle through span {span!r}")
            seen.add(walk)
            walk = begun[walk].get("parent")
    return begun


def trace_summary(records: List[dict]) -> dict:
    """Shape of a (valid) stitched trace: processes, spans, roots,
    events, and spans that ended ``aborted``."""
    stitched = stitch(records)
    begun = validate_stitched(stitched)
    aborted = {
        record["span"]
        for record in stitched
        if record["kind"] == "end"
        and isinstance(record.get("attrs"), dict)
        and record["attrs"].get("aborted")
    }
    roots = [
        span for span, record in begun.items() if record.get("parent") is None
    ]
    return {
        "processes": sorted({_process_of(r) for r in stitched}),
        "spans": len(begun),
        "events": sum(1 for r in stitched if r["kind"] == "event"),
        "roots": sorted(roots),
        "aborted": sorted(aborted),
        "traces": sorted({
            record["trace"] for record in begun.values()
            if record.get("trace") is not None
        }),
    }


__all__ = [
    "SPANS_WIRE_KEY",
    "TRACE_CONTEXT_KEY",
    "Tracer",
    "new_trace_id",
    "read_trace",
    "stitch",
    "trace_summary",
    "validate_nesting",
    "validate_stitched",
]
