"""Structured tracing: nested spans and events as JSON lines.

A :class:`Tracer` writes one JSON object per line to a file or stderr.
Timestamps come from ``time.monotonic()`` (re-based so the first record
is at ~0), which never goes backwards — trace durations are real even
across NTP steps.  The record schema (see docs/observability.md):

``{"ts": 0.00123, "kind": "begin", "span": 2, "parent": 1,
   "name": "entry_spec", "attrs": {...}}``
``{"ts": ..., "kind": "event", "span": 2, "name": "iteration", "attrs": {...}}``
``{"ts": ..., "kind": "end",   "span": 2, "name": "entry_spec",
   "elapsed": 0.004}``

Invariants (checked by :func:`validate_nesting`, pinned by the tests):

* spans strictly nest — ``end`` always closes the most recently opened
  span, and a span's ``parent`` is the span open at its ``begin``;
* every ``begin`` has exactly one matching ``end`` (``Tracer.close``
  ends anything left open, so a crashed trace is still well formed up
  to its tail);
* events carry the id of the innermost open span (or ``null`` at top
  level).

The tracer is for the *structural* layers — request → entry spec → SCC
→ fixpoint iteration.  Per-instruction tracing stays the job of the
Figure-3 style :mod:`repro.wam.trace` machinery.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, IO, List, Optional, Union


class Tracer:
    """Writes nested spans and point events as JSON lines.

    ``sink`` is a path (opened for append-less overwrite), ``"-"``
    for stderr, or any file-like object with ``write``.
    """

    def __init__(self, sink: Union[str, IO[str]]):
        if isinstance(sink, str):
            if sink == "-":
                self._handle: IO[str] = sys.stderr
                self._owns_handle = False
            else:
                self._handle = open(sink, "w", encoding="utf-8")
                self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self._epoch = time.monotonic()
        self._next_id = 1
        #: (span id, name, start time) of every open span, outermost first.
        self._stack: List[tuple] = []
        self.records_written = 0

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return round(time.monotonic() - self._epoch, 6)

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    # ------------------------------------------------------------------

    def begin(self, name: str, **attrs) -> int:
        """Open a span; returns its id.  Prefer :meth:`span`."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1][0] if self._stack else None
        record = {
            "ts": self._now(),
            "kind": "begin",
            "span": span_id,
            "parent": parent,
            "name": name,
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        self._stack.append((span_id, name, time.monotonic()))
        return span_id

    def end(self, **attrs) -> None:
        """Close the innermost open span."""
        if not self._stack:
            raise ValueError("no open span to end")
        span_id, name, started = self._stack.pop()
        record = {
            "ts": self._now(),
            "kind": "end",
            "span": span_id,
            "name": name,
            "elapsed": round(time.monotonic() - started, 6),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def span(self, name: str, **attrs) -> "_Span":
        """``with tracer.span("request", op="analyze"): ...``"""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        record = {
            "ts": self._now(),
            "kind": "event",
            "span": self._stack[-1][0] if self._stack else None,
            "name": name,
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def close(self) -> None:
        """End any spans still open, flush, and release the sink."""
        while self._stack:
            self.end(aborted=True)
        try:
            self._handle.flush()
        except (OSError, ValueError):
            pass
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Span:
    __slots__ = ("_tracer", "_name", "_attrs")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._tracer.begin(self._name, **self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._tracer.end(error=repr(exc))
        else:
            self._tracer.end()


# ----------------------------------------------------------------------
# Reading traces back (tests and tooling).


def read_trace(path: str) -> List[dict]:
    """Parse a trace file back into its records, in order."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_nesting(records: List[dict]) -> Dict[int, dict]:
    """Check the span invariants; returns ``{span id: begin record}``.

    Raises :class:`ValueError` on the first violation: an ``end`` for a
    span that is not innermost, an event pointing at a closed span, a
    ``parent`` that was not open at begin time, an unclosed span, or a
    non-monotonic timestamp.
    """
    stack: List[int] = []
    begun: Dict[int, dict] = {}
    last_ts = float("-inf")
    for record in records:
        ts = record["ts"]
        if ts < last_ts:
            raise ValueError(f"timestamps went backwards at {record}")
        last_ts = ts
        kind = record["kind"]
        if kind == "begin":
            expected_parent = stack[-1] if stack else None
            if record["parent"] != expected_parent:
                raise ValueError(
                    f"span {record['span']} parent {record['parent']} != "
                    f"open span {expected_parent}"
                )
            if record["span"] in begun:
                raise ValueError(f"span id {record['span']} reused")
            begun[record["span"]] = record
            stack.append(record["span"])
        elif kind == "end":
            if not stack or stack[-1] != record["span"]:
                raise ValueError(
                    f"end of span {record['span']} but open stack is {stack}"
                )
            stack.pop()
        elif kind == "event":
            expected = stack[-1] if stack else None
            if record["span"] != expected:
                raise ValueError(
                    f"event {record['name']} points at span {record['span']} "
                    f"but innermost open span is {expected}"
                )
        else:
            raise ValueError(f"unknown record kind {kind!r}")
    if stack:
        raise ValueError(f"unclosed spans at EOF: {stack}")
    return begun


__all__ = ["Tracer", "read_trace", "validate_nesting"]
