"""repro.obs.viewer — static HTML time-travel viewer for span traces.

:func:`render_html` turns a (raw or stitched) JSON-lines trace into a
single self-contained HTML file: no external scripts, stylesheets or
fonts, so the file can be committed, mailed, or opened from ``file://``
on an offline machine.  Two modes:

* **embedded** — the records are serialized into the page
  (``render_html(records)``); this is what ``repro-trace html`` emits;
* **file picker** — ``render_html(None)`` emits the same viewer with a
  drag-and-drop/file-input front door that reads any ``*.jsonl`` trace
  locally in the browser.

The page renders the stitched span tree as a flame/timeline view (one
lane per process, bars nested by depth, colored by process) and, when
the trace carries ``table_state`` events (``repro-analyze
--trace-states``), a time-travel panel that steps through the fixpoint
iteration by iteration: extension-table entries, the frontier that
changed in the pass, and the running widening count.

The JS qualifies raw records on the fly (the same rules as
:func:`repro.obs.trace.stitch`), so both raw multi-process sinks and
pre-stitched files render identically.
"""

from __future__ import annotations

import json
from typing import List, Optional

from .trace import stitch

#: Safety margin: traces beyond this many records are truncated in the
#: embedded page (the picker mode streams whatever the browser takes).
MAX_EMBEDDED_RECORDS = 200_000

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo,
         Consolas, monospace; background: #14161b; color: #d7dae0; }
  header { padding: 10px 16px; border-bottom: 1px solid #2a2e37;
           display: flex; gap: 16px; align-items: baseline; }
  header h1 { font-size: 15px; margin: 0; color: #e8eaf0; }
  header .meta { color: #8b93a3; }
  #picker { margin: 40px auto; max-width: 520px; padding: 32px;
            border: 2px dashed #3a4050; border-radius: 10px;
            text-align: center; color: #8b93a3; }
  #picker.drag { border-color: #6aa1ff; color: #d7dae0; }
  main { display: grid; grid-template-columns: 1fr 360px; gap: 0; }
  #timeline { overflow-x: auto; padding: 12px 16px; }
  .lane { margin-bottom: 10px; }
  .lane-label { color: #8b93a3; font-size: 11px; margin-bottom: 2px; }
  .track { position: relative; }
  .bar { position: absolute; height: 16px; border-radius: 3px;
         overflow: hidden; white-space: nowrap; font-size: 10px;
         line-height: 16px; padding: 0 4px; box-sizing: border-box;
         color: #0c0e12; cursor: pointer; }
  .bar.aborted { outline: 2px dashed #ff6b6b; color: #3b0d0d; }
  .bar:hover { filter: brightness(1.2); }
  .bar.selected { outline: 2px solid #fff; }
  .tick { position: absolute; top: 0; bottom: 0; width: 1px;
          background: #22262f; }
  .tick-label { position: absolute; top: -14px; font-size: 9px;
                color: #5b6372; }
  aside { border-left: 1px solid #2a2e37; padding: 12px 16px;
          max-height: calc(100vh - 46px); overflow-y: auto; }
  aside h2 { font-size: 12px; text-transform: uppercase;
             letter-spacing: .08em; color: #8b93a3; margin: 14px 0 6px; }
  #detail pre { white-space: pre-wrap; word-break: break-all;
                background: #1b1e25; padding: 8px; border-radius: 6px; }
  #stepper { display: flex; gap: 8px; align-items: center; }
  #stepper button { background: #262b36; color: #d7dae0;
                    border: 1px solid #3a4050; border-radius: 5px;
                    padding: 3px 10px; cursor: pointer; font: inherit; }
  #stepper button:disabled { opacity: .4; cursor: default; }
  #stepper input[type=range] { flex: 1; }
  table.state { border-collapse: collapse; width: 100%;
                font-size: 11px; }
  table.state td, table.state th { border-bottom: 1px solid #2a2e37;
                padding: 2px 6px; text-align: left; }
  tr.frontier td { background: #2b3a26; }
  tr.widened td:first-child::after { content: " ▲"; color: #ffb454; }
  .badge { display: inline-block; padding: 0 6px; border-radius: 8px;
           background: #262b36; color: #9fb3ff; margin-left: 6px; }
  .aborted-note { color: #ff6b6b; }
</style>
</head>
<body>
<header>
  <h1>__TITLE__</h1>
  <span class="meta" id="summary"></span>
</header>
<div id="picker" __PICKER_HIDDEN__>
  drop a JSON-lines trace here, or
  <input type="file" id="file" accept=".jsonl,.json,.txt">
</div>
<main id="app" hidden>
  <div id="timeline"></div>
  <aside>
    <h2>Span detail</h2>
    <div id="detail"><pre>click a span</pre></div>
    <h2>Fixpoint time travel</h2>
    <div id="stepper" hidden>
      <button id="prev">&#9664;</button>
      <input type="range" id="step" min="0" max="0" value="0">
      <button id="next">&#9654;</button>
      <span id="stepno"></span>
    </div>
    <div id="state"><em>no table_state events in this trace
      (analyze with --trace-states)</em></div>
  </aside>
</main>
<script id="trace-data" type="application/json">__DATA__</script>
<script>
"use strict";
// ---- record normalization (mirror of repro.obs.trace.stitch) -------
function qualify(proc, span) { return proc + ":" + span; }
function stitchRecords(raw) {
  const origin = {}; let haveOrigin = false;
  for (const r of raw) {
    if (r.epoch != null) {
      const p = r.process || "main";
      if (!(p in origin)) { origin[p] = r.epoch - r.ts; haveOrigin = true; }
    }
  }
  let base = Infinity;
  for (const p in origin) base = Math.min(base, origin[p]);
  if (!haveOrigin) base = 0;
  const out = [];
  for (const r of raw) {
    if (typeof r.span === "string") { out.push(r); continue; }
    const p = r.process || "main";
    const off = (p in origin ? origin[p] : base) - base;
    const rec = { ts: r.ts + off, kind: r.kind, name: r.name, process: p,
                  span: r.span == null ? null : qualify(p, r.span) };
    if (r.kind === "begin")
      rec.parent = r.parent != null ? qualify(p, r.parent)
                 : (r.parent_ref != null ? r.parent_ref : null);
    if (r.elapsed != null) rec.elapsed = r.elapsed;
    if (r.attrs) rec.attrs = r.attrs;
    if (r.trace) rec.trace = r.trace;
    out.push(rec);
  }
  out.sort((a, b) => a.ts - b.ts);
  return out;
}
// ---- span tree ------------------------------------------------------
function buildSpans(records) {
  const spans = new Map(); const events = [];
  for (const r of records) {
    if (r.kind === "begin") {
      spans.set(r.span, { id: r.span, name: r.name, process: r.process,
        parent: r.parent, start: r.ts, end: null, attrs: r.attrs || {},
        endAttrs: {}, aborted: false, children: [], events: [] });
    } else if (r.kind === "end") {
      const s = spans.get(r.span);
      if (s) { s.end = r.ts; s.endAttrs = r.attrs || {};
               s.aborted = !!(r.attrs && r.attrs.aborted); }
    } else if (r.kind === "event") {
      events.push(r);
      const s = spans.get(r.span);
      if (s) s.events.push(r);
    }
  }
  const roots = [];
  let maxTs = 0;
  for (const s of spans.values()) {
    if (s.end == null) { s.end = s.start; s.aborted = true; }
    maxTs = Math.max(maxTs, s.end);
    const p = s.parent != null ? spans.get(s.parent) : null;
    if (p) p.children.push(s); else roots.push(s);
  }
  return { spans, roots, events, maxTs };
}
// ---- rendering ------------------------------------------------------
const COLORS = ["#7dc4ff","#8ae39b","#ffd479","#ff9e9e","#c6a8ff",
                "#7fe0d4","#f0a8e0","#c9d47a"];
function colorOf(proc) {
  let h = 0;
  for (let i = 0; i < proc.length; i++) h = (h * 31 + proc.charCodeAt(i)) >>> 0;
  return COLORS[h % COLORS.length];
}
function depthOf(span, spans) {
  let d = 0, p = span.parent;
  const seen = new Set([span.id]);
  while (p != null && spans.has(p) && !seen.has(p)) {
    seen.add(p); d++; p = spans.get(p).parent;
  }
  return d;
}
function render(records) {
  const stitched = stitchRecords(records);
  const model = buildSpans(stitched);
  document.getElementById("picker").hidden = true;
  document.getElementById("app").hidden = false;
  const procs = [...new Set(stitched.map(r => r.process || "main"))];
  const aborted = [...model.spans.values()].filter(s => s.aborted).length;
  document.getElementById("summary").textContent =
    procs.length + " process(es) · " + model.spans.size + " spans (" +
    aborted + " aborted) · " + model.events.length + " events · " +
    model.roots.length + " root(s)";
  const timeline = document.getElementById("timeline");
  timeline.innerHTML = "";
  const span = Math.max(model.maxTs, 1e-6);
  const width = Math.max(900, timeline.clientWidth - 32);
  const scale = width / span;
  for (const proc of procs) {
    const lane = document.createElement("div"); lane.className = "lane";
    const label = document.createElement("div");
    label.className = "lane-label"; label.textContent = proc;
    lane.appendChild(label);
    const track = document.createElement("div"); track.className = "track";
    const laneSpans = [...model.spans.values()]
      .filter(s => s.process === proc);
    let maxDepth = 0;
    for (const s of laneSpans) {
      const d = depthOf(s, model.spans);
      maxDepth = Math.max(maxDepth, d);
      const bar = document.createElement("div");
      bar.className = "bar" + (s.aborted ? " aborted" : "");
      bar.style.left = (s.start * scale) + "px";
      bar.style.width = Math.max(3, (s.end - s.start) * scale) + "px";
      bar.style.top = (d * 19 + 14) + "px";
      bar.style.background = colorOf(proc);
      bar.textContent = s.name;
      bar.title = s.name + " (" + ((s.end - s.start) * 1000).toFixed(2) +
                  " ms)" + (s.aborted ? " — ABORTED" : "");
      bar.onclick = () => select(s, bar);
      track.appendChild(bar);
    }
    for (let t = 0; t <= 10; t++) {
      const tick = document.createElement("div"); tick.className = "tick";
      tick.style.left = (t / 10 * width) + "px";
      const lab = document.createElement("div"); lab.className = "tick-label";
      lab.style.left = tick.style.left;
      lab.textContent = (t / 10 * span * 1000).toFixed(1) + "ms";
      track.appendChild(lab); track.appendChild(tick);
    }
    track.style.height = ((maxDepth + 1) * 19 + 18) + "px";
    track.style.width = width + "px";
    lane.appendChild(track);
    timeline.appendChild(lane);
  }
  setupStepper(model.events);
}
let selected = null;
function select(s, bar) {
  if (selected) selected.classList.remove("selected");
  selected = bar; bar.classList.add("selected");
  const lines = {
    span: s.id, name: s.name, process: s.process, parent: s.parent,
    start_ms: +(s.start * 1000).toFixed(3),
    elapsed_ms: +((s.end - s.start) * 1000).toFixed(3),
    aborted: s.aborted, attrs: s.attrs, end_attrs: s.endAttrs,
    events: s.events.map(e => e.name + (e.attrs && e.attrs.pass_number != null
      ? " #" + e.attrs.pass_number : "")),
  };
  document.getElementById("detail").innerHTML =
    "<pre>" + escapeHtml(JSON.stringify(lines, null, 2)) + "</pre>" +
    (s.aborted ? "<div class='aborted-note'>span did not end cleanly" +
                 "</div>" : "");
}
function escapeHtml(text) {
  return text.replace(/&/g, "&amp;").replace(/</g, "&lt;");
}
// ---- fixpoint time travel -------------------------------------------
function setupStepper(events) {
  const states = events.filter(e => e.name === "table_state");
  const stepper = document.getElementById("stepper");
  if (!states.length) { stepper.hidden = true; return; }
  stepper.hidden = false;
  const slider = document.getElementById("step");
  slider.max = states.length - 1; slider.value = 0;
  const show = i => {
    i = Math.max(0, Math.min(states.length - 1, i));
    slider.value = i;
    document.getElementById("stepno").textContent =
      (i + 1) + "/" + states.length;
    const a = states[i].attrs || {};
    const st = a.state || {};
    let html = "<div>pass <b>" + (a.pass_number != null ? a.pass_number : "?") +
      "</b>" + (a.pattern ? " · " + escapeHtml(String(a.pattern)) : "") +
      "<span class='badge'>widenings " + (st.widenings || 0) + "</span>" +
      "<span class='badge'>changes " + (st.changes || 0) + "</span>" +
      "<span class='badge'>entries " + (st.size != null ? st.size : "?") +
      "</span></div>";
    html += "<table class='state'><tr><th>entry</th><th>success</th>" +
            "<th>upd</th></tr>";
    for (const e of (st.entries || [])) {
      const cls = (e.frontier ? "frontier" : "") +
                  (e.status !== "exact" ? " widened" : "");
      html += "<tr class='" + cls + "'><td>" + escapeHtml(e.key) + "</td>" +
        "<td>" + escapeHtml(String(e.success == null ? "⊥" : e.success)) +
        (e.frozen ? " ❄" : "") + "</td><td>" + e.updates + "</td></tr>";
    }
    html += "</table>";
    if (st.truncated) html += "<div class='meta'>… " + st.truncated +
      " more entries truncated</div>";
    document.getElementById("state").innerHTML = html;
  };
  document.getElementById("prev").onclick = () => show(+slider.value - 1);
  document.getElementById("next").onclick = () => show(+slider.value + 1);
  slider.oninput = () => show(+slider.value);
  show(0);
}
// ---- boot -----------------------------------------------------------
function parseJsonl(text) {
  const records = [];
  for (const line of text.split("\\n")) {
    const t = line.trim();
    if (t) records.push(JSON.parse(t));
  }
  return records;
}
const embedded = document.getElementById("trace-data").textContent.trim();
if (embedded) {
  render(JSON.parse(embedded));
} else {
  const picker = document.getElementById("picker");
  const load = file => file.text().then(t => render(parseJsonl(t)));
  document.getElementById("file").onchange = e => load(e.target.files[0]);
  picker.ondragover = e => { e.preventDefault(); picker.classList.add("drag"); };
  picker.ondragleave = () => picker.classList.remove("drag");
  picker.ondrop = e => { e.preventDefault(); load(e.dataTransfer.files[0]); };
}
</script>
</body>
</html>
"""


def render_html(
    records: Optional[List[dict]],
    title: str = "repro trace",
    metrics=None,
) -> str:
    """The viewer page as a string.

    ``records`` embeds a trace (raw records are stitched first so the
    page carries the canonical form); ``None`` emits file-picker mode.
    ``metrics`` (an optional :class:`~repro.obs.MetricsRegistry`)
    accounts the render under ``viewer.*``.
    """
    if records is None:
        data = ""
        picker_hidden = ""
        embedded = 0
    else:
        stitched = stitch(records)
        if len(stitched) > MAX_EMBEDDED_RECORDS:
            stitched = stitched[:MAX_EMBEDDED_RECORDS]
        embedded = len(stitched)
        # "</" would close the carrier <script> tag early; JSON strings
        # tolerate the escaped solidus.
        data = json.dumps(stitched, sort_keys=True).replace("</", "<\\/")
        picker_hidden = "hidden"
    page = (
        _TEMPLATE
        .replace("__TITLE__", _escape(title))
        .replace("__PICKER_HIDDEN__", picker_hidden)
        .replace("__DATA__", data)
    )
    if metrics is not None:
        metrics.counter("viewer.renders").inc()
        metrics.gauge("viewer.embedded_records").set(embedded)
        metrics.gauge("viewer.html_bytes").set(len(page.encode("utf-8")))
    return page


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


__all__ = ["MAX_EMBEDDED_RECORDS", "render_html"]
