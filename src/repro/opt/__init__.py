"""repro.opt — the analysis-driven WAM code optimizer.

Closes the paper's loop: :mod:`repro.analysis` computes interprocedural
modes/types/aliasing, :mod:`repro.lint.dataflow` supplies the
intra-predicate CFG/liveness/determinacy substrate, and this package
*rewrites* compiled code areas with the facts — first-argument dispatch
tables, specialized get/unify instructions, dead-clause elimination —
then proves each rewrite with translation validation
(:mod:`repro.opt.validate`): the optimized code area must be
verifier-clean and produce identical solutions to the original.
"""

from .pipeline import (
    OptimizationReport,
    OptimizedProgram,
    PredicateOptimization,
    goal_entry_specs,
    optimize_program,
)
from .validate import GoalValidation, ValidationReport, validate

__all__ = [
    "GoalValidation",
    "OptimizationReport",
    "OptimizedProgram",
    "PredicateOptimization",
    "ValidationReport",
    "goal_entry_specs",
    "optimize_program",
    "validate",
]
