"""The optimization pipeline: analysis facts in, rewritten code areas out.

:func:`optimize_program` takes a compiled program plus an
:class:`~repro.analysis.results.AnalysisResult` and rebuilds every
analyzed predicate's code with the facts applied:

1. **Dead-clause elimination** — clauses whose head matches no recorded
   calling pattern (:mod:`repro.optimize.deadcode`) are dropped before
   recompilation; a predicate with no live clause becomes a ``fail``
   stub.
2. **Forced first-argument indexing** — when the first argument is
   instantiated at every call (class ``ground``/``nonvar``), a
   ``switch_on_term`` dispatcher is emitted even for predicates with
   variable-keyed clauses, which the baseline compiler refuses to index.
   Variable-keyed clauses merge into every bucket in source order and
   become the tables' miss target, so dispatch is semantics-preserving
   by construction (see :mod:`repro.wam.compile.predicate`).
3. **Get specialization** — a ``get_*`` on an argument register that
   still holds the original argument rewrites to ``*_nv`` (argument
   always instantiated: the unbound-REF branch and its trailing go away)
   or ``*_w`` (argument always an unbound, *unaliased* variable:
   matching degenerates to construction).  The aliasing side-condition
   comes from the result's must-share pairs; a variable whose sharing
   the pattern could not represent was widened to ``any`` upstream, so
   class ``var`` plus no share pair really does mean unaliased.
4. **Unify-mode resolution** — a ``unify_*`` run following a specialized
   ``get_list``/``get_structure`` has a statically known mode (``_r`` /
   ``_w``); a run following ``put_list``/``put_structure`` is always
   write mode (a compiler invariant, analysis-independent).
5. **Dead/no-op move elimination** — ``get_variable Xr, Ai`` where
   ``Xr`` is dead afterwards (per :func:`repro.lint.dataflow.x_liveness`
   on the rebuilt unit) or where ``Xr`` *is* ``Ai``.
6. **Environment-slot trimming** — ``allocate N`` shrinks to the highest
   Y slot actually referenced before the matching ``deallocate`` (call
   live-slot counts are clamped to match).

Soundness contract: the facts hold for the analyzed entry points only,
so callers must analyze with an entry spec covering every goal they
intend to run against the optimized code — :func:`goal_entry_specs`
derives such specs from concrete goals.  Every transformed program is
meant to go through :func:`repro.opt.validate.validate` (verifier-clean
plus differential execution), which is what ``repro-optimize`` and the
benchmark harness do.

Predicates whose analysis status is not ``"exact"`` (widened after a
budget interruption) are left untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.results import AnalysisResult
from ..lint.dataflow import DeterminacyInfo, build_cfg, determinacy, x_liveness
from ..optimize.deadcode import find_dead_code
from ..prolog.program import Predicate, Program, flatten_conjunction
from ..prolog.terms import (
    Atom,
    Indicator,
    Struct,
    Term,
    Var,
    format_indicator,
    term_vars,
)
from ..wam import instructions as ins
from ..wam.code import CodeArea, PredicateCode
from ..wam.compile.program import CompiledProgram
from ..wam.instructions import GET_OPS, UNIFY_OPS, Instr, Reg, base_op

#: get opcodes that examine one argument register and can specialize.
_SPECIALIZABLE_GETS = frozenset(
    ["get_constant", "get_nil", "get_list", "get_structure"]
)

#: opcodes allowed inside the head-matching region of a clause.
_HEAD_REGION_OPS = GET_OPS | UNIFY_OPS | frozenset(["allocate", "get_level"])


# ----------------------------------------------------------------------
# Reports.


@dataclass
class PredicateOptimization:
    """What the pipeline did to one predicate."""

    indicator: Indicator
    size_before: int
    size_after: int
    dead_clauses: int = 0
    forced_index: bool = False
    #: the determinacy fact (first-argument selection), when computed.
    deterministic: bool = False
    nonvar_gets: int = 0
    write_gets: int = 0
    read_unifies: int = 0
    write_unifies: int = 0
    moves_removed: int = 0
    slots_trimmed: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.dead_clauses
            or self.forced_index
            or self.nonvar_gets
            or self.write_gets
            or self.read_unifies
            or self.write_unifies
            or self.moves_removed
            or self.slots_trimmed
        )

    def to_dict(self) -> dict:
        return {
            "predicate": format_indicator(self.indicator),
            "size_before": self.size_before,
            "size_after": self.size_after,
            "dead_clauses": self.dead_clauses,
            "forced_index": self.forced_index,
            "deterministic": self.deterministic,
            "nonvar_gets": self.nonvar_gets,
            "write_gets": self.write_gets,
            "read_unifies": self.read_unifies,
            "write_unifies": self.write_unifies,
            "moves_removed": self.moves_removed,
            "slots_trimmed": self.slots_trimmed,
        }


@dataclass
class OptimizationReport:
    """Per-predicate transform counts plus program totals."""

    predicates: List[PredicateOptimization] = field(default_factory=list)

    @property
    def changed_predicates(self) -> List[PredicateOptimization]:
        return [p for p in self.predicates if p.changed]

    def total(self, attribute: str) -> int:
        return sum(getattr(p, attribute) for p in self.predicates)

    def to_dict(self) -> dict:
        return {
            "predicates": [p.to_dict() for p in self.predicates],
            "totals": {
                "dead_clauses": self.total("dead_clauses"),
                "forced_index": sum(
                    1 for p in self.predicates if p.forced_index
                ),
                "nonvar_gets": self.total("nonvar_gets"),
                "write_gets": self.total("write_gets"),
                "read_unifies": self.total("read_unifies"),
                "write_unifies": self.total("write_unifies"),
                "moves_removed": self.total("moves_removed"),
                "slots_trimmed": self.total("slots_trimmed"),
                "size_before": self.total("size_before"),
                "size_after": self.total("size_after"),
            },
        }

    def to_text(self) -> str:
        changed = self.changed_predicates
        if not changed:
            return "% nothing to optimize"
        lines = ["% optimization report"]
        for p in changed:
            notes = []
            if p.dead_clauses:
                notes.append(f"{p.dead_clauses} dead clause(s) dropped")
            if p.forced_index:
                notes.append("first-arg switch forced")
            if p.nonvar_gets:
                notes.append(f"{p.nonvar_gets} get->nv")
            if p.write_gets:
                notes.append(f"{p.write_gets} get->w")
            if p.read_unifies:
                notes.append(f"{p.read_unifies} unify->r")
            if p.write_unifies:
                notes.append(f"{p.write_unifies} unify->w")
            if p.moves_removed:
                notes.append(f"{p.moves_removed} move(s) removed")
            if p.slots_trimmed:
                notes.append(f"{p.slots_trimmed} slot(s) trimmed")
            lines.append(
                f"{format_indicator(p.indicator)}: "
                f"{p.size_before} -> {p.size_after} instruction(s); "
                + ", ".join(notes)
            )
        return "\n".join(lines)


@dataclass
class OptimizedProgram:
    """The optimized code area plus the original and the report."""

    original: CompiledProgram
    compiled: CompiledProgram
    report: OptimizationReport


# ----------------------------------------------------------------------
# Goal -> entry-spec derivation.


def goal_entry_specs(program: Program, goal: Term) -> List[Term]:
    """Analysis entry specs covering a concrete goal's calls.

    One spec per conjunct that names a program predicate, abstracting
    each argument soundly: ground terms become ``g``, other non-vars
    become ``nv`` (instantiation only grows), and a bare variable stays
    itself — the spec language reads repeated ``Var`` objects as
    must-aliasing — *unless* an earlier conjunct may already have bound
    it, or it also occurs buried inside a non-var argument of the same
    call (aliasing a bare spec variable cannot express); those widen to
    ``any``.  Builtin conjuncts contribute no spec.
    """
    specs: List[Term] = []
    seen: Set[int] = set()
    for conjunct in flatten_conjunction(goal):
        if isinstance(conjunct, Atom):
            if (conjunct.name, 0) in program.predicates:
                specs.append(conjunct)
            continue
        if not isinstance(conjunct, Struct):
            continue
        if conjunct.indicator in program.predicates:
            buried: Set[int] = set()
            for argument in conjunct.args:
                if not isinstance(argument, Var):
                    buried.update(id(v) for v in term_vars(argument))
            arguments: List[Term] = []
            for argument in conjunct.args:
                if isinstance(argument, Var):
                    if id(argument) in seen or id(argument) in buried:
                        arguments.append(Atom("any"))
                    else:
                        arguments.append(argument)
                elif not term_vars(argument):
                    arguments.append(Atom("g"))
                else:
                    arguments.append(Atom("nv"))
            specs.append(Struct(conjunct.name, tuple(arguments)))
        seen.update(id(v) for v in term_vars(conjunct))
    return specs


# ----------------------------------------------------------------------
# Per-predicate transforms.  All of them work on *unlinked* instruction
# lists (Label operands, ``label`` pseudo-instructions still present).


def _argument_classes(info) -> Dict[int, Optional[str]]:
    """1-based argument position -> ``'ground'``/``'nonvar'``/``'var'``/None."""
    from ..optimize.specialize import _argument_class

    return {
        argument.position + 1: _argument_class(argument.call_type)
        for argument in info.arguments
    }


def _aliased_positions(info) -> Set[int]:
    """1-based positions participating in any must-share pair."""
    return {
        position + 1 for pair in info.call_aliasing for position in pair
    }


def _specialize_gets(
    instructions: List[Instr],
    arity: int,
    clause_label_names: Set[str],
    classes: Dict[int, Optional[str]],
    aliased: Set[int],
    record: PredicateOptimization,
) -> None:
    """Rewrite head ``get_*`` to ``_nv``/``_w`` where the facts allow it.

    Walks each clause's head-matching region tracking which argument
    registers are *intact* (still hold the original call argument — a
    ``get_variable``/``unify_variable`` into ``Xj`` retires ``j``).
    """
    index = 0
    while index < len(instructions):
        instruction = instructions[index]
        if (
            instruction.op == "label"
            and instruction.args[0].name in clause_label_names
        ):
            index = _specialize_head_region(
                instructions, index + 1, arity, classes, aliased, record
            )
        else:
            index += 1


def _specialize_head_region(
    instructions: List[Instr],
    start: int,
    arity: int,
    classes: Dict[int, Optional[str]],
    aliased: Set[int],
    record: PredicateOptimization,
) -> int:
    intact = set(range(1, arity + 1))
    index = start
    while index < len(instructions):
        instruction = instructions[index]
        op = instruction.op
        base = base_op(op)
        if op == "label" or base not in _HEAD_REGION_OPS:
            return index
        args = instruction.args
        if base in ("get_variable", "unify_variable"):
            register = args[0]
            if isinstance(register, Reg) and register.kind == "x":
                intact.discard(register.index)
        elif op in _SPECIALIZABLE_GETS:
            position = (
                args[-1].index if isinstance(args[-1], Reg) else args[-1]
            )
            if (
                not isinstance(args[-1], Reg) or args[-1].kind == "x"
            ) and position in intact:
                klass = classes.get(position)
                if klass in ("ground", "nonvar"):
                    instructions[index] = Instr(op + "_nv", args)
                    record.nonvar_gets += 1
                elif klass == "var" and position not in aliased:
                    instructions[index] = Instr(op + "_w", args)
                    record.write_gets += 1
        index += 1
    return index


def _resolve_unify_modes(
    instructions: List[Instr], record: PredicateOptimization
) -> None:
    """Rewrite ``unify_*`` runs with a statically known mode.

    After ``get_list_nv``/``get_structure_nv`` the machine is in read
    mode; after ``get_list_w``/``get_structure_w`` and after any
    ``put_list``/``put_structure`` (compiler invariant: argument
    construction always runs in write mode) it is in write mode.  Any
    other opcode makes the mode unknown again.
    """
    mode: Optional[str] = None
    for index, instruction in enumerate(instructions):
        op = instruction.op
        if op in ("get_list_nv", "get_structure_nv"):
            mode = "read"
            continue
        if op in ("get_list_w", "get_structure_w", "put_list", "put_structure"):
            mode = "write"
            continue
        if op in UNIFY_OPS:
            if mode == "read":
                instructions[index] = Instr(op + "_r", instruction.args)
                record.read_unifies += 1
            elif mode == "write":
                instructions[index] = Instr(op + "_w", instruction.args)
                record.write_unifies += 1
            continue
        if base_op(op) in UNIFY_OPS:
            continue  # already specialized; the run's mode is unchanged
        mode = None


def _eliminate_moves(
    unit: PredicateCode, record: PredicateOptimization
) -> PredicateCode:
    """Drop no-op and dead ``get_variable`` argument moves.

    ``get_variable Xi, Ai`` where the two registers coincide is the
    identity; ``get_variable Xr, Ai`` whose target is dead afterwards
    (per :func:`x_liveness` on a scratch-linked copy of the unit) only
    shuffles a value nobody reads.
    """
    scratch = CodeArea()
    scratch.link(
        [
            PredicateCode(
                unit.indicator,
                list(unit.instructions),
                unit.clause_count,
                unit.clause_labels,
            )
        ]
    )
    liveness = x_liveness(build_cfg(scratch, unit.indicator, 0, len(scratch)))
    kept: List[Instr] = []
    address = 0
    for instruction in unit.instructions:
        if instruction.op == "label":
            kept.append(instruction)
            continue
        if base_op(instruction.op) == "get_variable":
            register, position = instruction.args
            if isinstance(register, Reg) and register.kind == "x":
                dead = register.index not in liveness.live_out.get(
                    address, frozenset()
                )
                if register.index == position or dead:
                    record.moves_removed += 1
                    address += 1
                    continue
        kept.append(instruction)
        address += 1
    if record.moves_removed:
        return PredicateCode(
            unit.indicator, kept, unit.clause_count, unit.clause_labels
        )
    return unit


def _trim_environments(
    instructions: List[Instr], record: PredicateOptimization
) -> None:
    """Shrink each ``allocate`` to the highest Y slot actually used."""
    for index, instruction in enumerate(instructions):
        if instruction.op != "allocate":
            continue
        slot_count = instruction.args[0]
        max_used = 0
        calls: List[int] = []
        scan = index + 1
        closed = False
        while scan < len(instructions):
            inner = instructions[scan]
            if inner.op == "deallocate":
                closed = True
                break
            if inner.op == "label":
                break  # defensive: never trim across a clause boundary
            if inner.op == "call":
                calls.append(scan)
            for argument in inner.args:
                if isinstance(argument, Reg) and argument.kind == "y":
                    max_used = max(max_used, argument.index)
            scan += 1
        if closed and max_used < slot_count:
            instructions[index] = ins.allocate(max_used)
            for call_index in calls:
                predicate, live = instructions[call_index].args
                if live > max_used:
                    instructions[call_index] = ins.call(predicate, max_used)
            record.slots_trimmed += slot_count - max_used


def _code_size(instructions: Sequence[Instr]) -> int:
    return sum(1 for i in instructions if i.op != "label")


# ----------------------------------------------------------------------
# The pipeline.


def optimize_program(
    compiled: CompiledProgram, result: AnalysisResult
) -> OptimizedProgram:
    """Rebuild ``compiled``'s code area with the analysis facts applied.

    The input program is untouched; the result shares its source
    :class:`~repro.prolog.program.Program` and compiler options but owns
    a fresh, fully re-linked :class:`~repro.wam.code.CodeArea`.
    """
    from ..wam.compile.predicate import compile_predicate

    program = compiled.program
    dead = find_dead_code(program, result)
    dead_by_predicate: Dict[Indicator, Set[int]] = {}
    for indicator, clause_index, _ in dead.dead_clauses:
        dead_by_predicate.setdefault(indicator, set()).add(clause_index)
    facts = determinacy(compiled, result)

    report = OptimizationReport()
    units: List[PredicateCode] = []
    for indicator, predicate in program.predicates.items():
        original = compiled.units[indicator]
        info = result.predicate(indicator)
        record = PredicateOptimization(
            indicator=indicator,
            size_before=_code_size(original.instructions),
            size_after=_code_size(original.instructions),
            deterministic=facts.get(
                indicator,
                DeterminacyInfo(indicator, None, False),
            ).deterministic,
        )
        report.predicates.append(record)
        if info is None or info.status != "exact":
            # Unreachable (for the analyzed entries) or widened facts:
            # leave the code exactly as compiled.
            units.append(original)
            continue

        live_clauses = [
            clause
            for clause_index, clause in enumerate(predicate.clauses)
            if clause_index not in dead_by_predicate.get(indicator, set())
        ]
        record.dead_clauses = len(predicate.clauses) - len(live_clauses)
        if not live_clauses:
            units.append(
                PredicateCode(indicator, [ins.fail_instr()], 0, [])
            )
            record.size_after = 1
            continue

        classes = _argument_classes(info)
        force_index = (
            len(live_clauses) > 1
            and predicate.arity > 0
            and classes.get(1) in ("ground", "nonvar")
        )
        unit = compile_predicate(
            Predicate(indicator, live_clauses),
            compiled.options,
            force_index=force_index,
        )
        record.forced_index = force_index and any(
            base_op(i.op) == "switch_on_term" for i in unit.instructions
        ) and not any(
            base_op(i.op) == "switch_on_term"
            for i in original.instructions
        )

        instructions = list(unit.instructions)
        clause_label_names = {label.name for label in unit.clause_labels}
        _specialize_gets(
            instructions,
            predicate.arity,
            clause_label_names,
            classes,
            _aliased_positions(info),
            record,
        )
        _resolve_unify_modes(instructions, record)
        _trim_environments(instructions, record)
        unit = PredicateCode(
            indicator, instructions, unit.clause_count, unit.clause_labels
        )
        unit = _eliminate_moves(unit, record)
        record.size_after = _code_size(unit.instructions)
        units.append(unit)

    code = CodeArea()
    code.instructions.append(ins.halt_instr())
    code.instructions.append(ins.fail_instr())
    code.instructions.append(ins.proceed())
    optimized = CompiledProgram(
        program=program, code=code, options=compiled.options
    )
    code.link(units)
    for unit in units:
        optimized.units[unit.indicator] = unit
    return OptimizedProgram(
        original=compiled, compiled=optimized, report=report
    )
