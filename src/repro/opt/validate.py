"""Translation validation: prove each optimized program, don't trust it.

Two independent obligations, both mandatory before an optimized code
area is used (the CLI and the benchmark harness refuse otherwise):

1. **Verifier-clean** — :func:`repro.lint.verifier.verify_code` over the
   optimized code area must produce zero diagnostics.  The verifier
   treats specialized opcodes as their base instruction, so every
   register/environment obligation of the original instruction set still
   applies to the rewritten code.
2. **Differential execution** — every goal runs on a fresh machine
   against the original and the optimized program; the *ordered*
   solution sequences (variable bindings, canonically renamed) and the
   builtin output buffers must match exactly.

The goals must be covered by the analysis entries the optimizer used —
:func:`repro.opt.pipeline.goal_entry_specs` exists precisely to build
those — otherwise a mismatch is the *expected* outcome, not a bug: the
facts never claimed to hold for unanalyzed calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..lint.diagnostics import Diagnostic
from ..lint.verifier import verify_code
from ..prolog.parser import parse_term
from ..prolog.terms import Atom, Float, Int, Struct, Term, Var
from ..prolog.writer import term_to_text
from ..wam.compile.program import CompiledProgram
from ..wam.machine import Machine


def _canonical_text(term: Term, names: Dict[int, str]) -> str:
    """Render a term with variables renamed ``_0, _1, ...`` in order of
    first occurrence, so two heaps with different layouts compare equal
    exactly when the solutions are alpha-equivalent (including sharing:
    aliased variables decode to one :class:`Var` and get one name)."""
    if isinstance(term, Var):
        label = names.get(id(term))
        if label is None:
            label = f"_{len(names)}"
            names[id(term)] = label
        return label
    if isinstance(term, Struct):
        inner = ",".join(_canonical_text(a, names) for a in term.args)
        return f"{term.name}({inner})"
    if isinstance(term, (Atom, Int, Float)):
        return term_to_text(term)
    return str(term)  # pragma: no cover - no other term kinds exist


@dataclass
class GoalValidation:
    """Differential result for one goal."""

    goal: str
    solutions: int
    optimized_solutions: int
    matches: bool
    #: human-readable description of the first divergence, if any.
    detail: str = ""


@dataclass
class ValidationReport:
    """Verifier diagnostics plus per-goal differential results."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    goals: List[GoalValidation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics and all(g.matches for g in self.goals)

    def to_text(self) -> str:
        lines = []
        if self.diagnostics:
            lines.append(
                f"% verifier: {len(self.diagnostics)} diagnostic(s) "
                "on optimized code"
            )
            lines.extend(f"  {d.code}: {d.message}" for d in self.diagnostics)
        else:
            lines.append("% verifier: optimized code is clean")
        for goal in self.goals:
            status = "ok" if goal.matches else "MISMATCH"
            lines.append(
                f"% {goal.goal}: {status} "
                f"({goal.solutions} solution(s))"
                + (f" — {goal.detail}" if goal.detail else "")
            )
        return "\n".join(lines)


def _run_goal(
    compiled: CompiledProgram, goal: Term, max_solutions: Optional[int]
) -> Tuple[List[Tuple[Tuple[str, str], ...]], Tuple[str, ...], str]:
    """Ordered canonical solutions, builtin output, and any crash.

    A specialized instruction whose analysis fact is violated (a goal
    outside the analyzed entries) can crash the machine outright; the
    validator must report that as a divergence, not die with it.
    """
    machine = Machine(compiled)
    solutions: List[Tuple[Tuple[str, str], ...]] = []
    error = ""
    try:
        for count, solution in enumerate(machine.run(goal), start=1):
            names: Dict[int, str] = {}
            solutions.append(
                tuple(
                    (name, _canonical_text(solution[name], names))
                    for name in sorted(solution)
                )
            )
            if max_solutions is not None and count >= max_solutions:
                break
    except Exception as exc:  # noqa: BLE001 - anything the machine raises
        error = f"{type(exc).__name__}: {exc}"
    return solutions, tuple(machine.output), error


def validate(
    original: CompiledProgram,
    optimized: CompiledProgram,
    goals: Sequence[Union[str, Term]],
    max_solutions: Optional[int] = None,
) -> ValidationReport:
    """Verify the optimized code area and diff-execute every goal.

    Each goal gets a fresh :class:`~repro.wam.machine.Machine` per
    program; solution order matters (the optimizer must preserve the
    clause selection order, not just the solution set).
    """
    report = ValidationReport(diagnostics=verify_code(optimized.code))
    for goal in goals:
        term = parse_term(goal) if isinstance(goal, str) else goal
        goal_text = goal if isinstance(goal, str) else term_to_text(term)
        base_solutions, base_output, base_error = _run_goal(
            original, term, max_solutions
        )
        opt_solutions, opt_output, opt_error = _run_goal(
            optimized, term, max_solutions
        )
        detail = ""
        if base_error or opt_error:
            detail = (
                f"machine error (original: {base_error or 'none'}; "
                f"optimized: {opt_error or 'none'})"
            )
        elif base_solutions != opt_solutions:
            for index, (expected, actual) in enumerate(
                zip(base_solutions, opt_solutions)
            ):
                if expected != actual:
                    detail = (
                        f"solution {index + 1} differs: "
                        f"{expected} vs {actual}"
                    )
                    break
            else:
                detail = (
                    f"solution count differs: {len(base_solutions)} "
                    f"vs {len(opt_solutions)}"
                )
        elif base_output != opt_output:
            detail = "builtin output differs"
        report.goals.append(
            GoalValidation(
                goal=goal_text,
                solutions=len(base_solutions),
                optimized_solutions=len(opt_solutions),
                matches=not detail,
                detail=detail,
            )
        )
    return report
