"""Analysis clients: using the dataflow facts to improve programs.

* :mod:`.specialize` — WAM code specialization (dereference/trail
  removal, write-mode specialization, determinism detection);
* :mod:`.parallel` — Independent And-Parallelism detection (goal-pair
  independence with CGE-style run-time conditions);
* :mod:`.deadcode` — unreachable predicates, dead clauses, and
  proven-failing predicates.
"""

from .deadcode import DeadCodeReport, find_dead_code
from .parallel import (
    ClauseParallelism,
    GoalPairInfo,
    ParallelReport,
    annotate_parallelism,
)
from .specialize import Annotation, SpecializationReport, specialize

__all__ = [
    "Annotation",
    "ClauseParallelism",
    "DeadCodeReport",
    "GoalPairInfo",
    "ParallelReport",
    "SpecializationReport",
    "annotate_parallelism",
    "find_dead_code",
    "specialize",
]
