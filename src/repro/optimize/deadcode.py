"""Dead-code detection from the analysis results.

A third client of the dataflow facts: with every reachable calling
pattern recorded in the extension table, a clause whose head cannot
abstractly unify with *any* calling pattern of its predicate can never be
selected, and a predicate with no table entry is never called at all.
Both are safe to remove (for the analyzed entry points) — the classic
"dead code elimination enabled by global analysis".

The check replays head unification only (no bodies): for each (predicate,
calling pattern), materialize the pattern and ``s_unify`` it against each
clause head.  A clause alive under no pattern is dead.  Clauses whose
body is proven to fail (the head matches but the table records no success
and the pattern was explored) are reported separately as *failing*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..analysis.patterns import materialize_pattern
from ..analysis.aunify import s_unify
from ..analysis.results import AnalysisResult
from ..baselines.absterms import AbsStore
from ..prolog.program import Clause, Program, normalize_program
from ..prolog.terms import Indicator, Struct, format_indicator
from ..wam.cells import Heap


@dataclass
class DeadCodeReport:
    """Unreachable predicates and dead clauses."""

    #: predicates defined in the program but absent from the table.
    unreachable_predicates: List[Indicator] = field(default_factory=list)
    #: (indicator, clause index, clause): head matches no calling pattern.
    dead_clauses: List[Tuple[Indicator, int, Clause]] = field(
        default_factory=list
    )
    #: predicates that are called but never succeed.
    failing_predicates: List[Indicator] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not (
            self.unreachable_predicates
            or self.dead_clauses
            or self.failing_predicates
        )

    def to_text(self) -> str:
        if self.is_clean:
            return "% no dead code found"
        lines = ["% dead code report"]
        for indicator in self.unreachable_predicates:
            lines.append(f"unreachable: {format_indicator(indicator)}")
        for indicator, index, clause in self.dead_clauses:
            lines.append(
                f"dead clause: {format_indicator(indicator)} "
                f"clause {index + 1}: {clause}"
            )
        for indicator in self.failing_predicates:
            lines.append(f"never succeeds: {format_indicator(indicator)}")
        return "\n".join(lines)


def clause_matches(pattern, clause: Clause) -> bool:
    """Can the clause head abstractly unify with the calling pattern?

    Shared with :mod:`repro.lint`, which uses it for dead-clause
    diagnostics and determinism hints.
    """
    heap = Heap()
    cells = materialize_pattern(heap, pattern)
    if not isinstance(clause.head, Struct):
        return True  # zero-arity heads always match
    shared: Dict[int, object] = {}
    for head_arg, cell in zip(clause.head.args, cells):
        head_cell = heap.encode(head_arg, shared)
        if not s_unify(heap, head_cell, cell):
            return False
    return True


def find_dead_code(program: Program, result: AnalysisResult) -> DeadCodeReport:
    """Compute the dead-code report for the analyzed entry points."""
    normalized = normalize_program(program)
    report = DeadCodeReport()
    analyzed: Set[Indicator] = set(result.predicates())
    for indicator, predicate in normalized.predicates.items():
        if indicator not in analyzed:
            report.unreachable_predicates.append(indicator)
            continue
        entries = result.table.entries_for(indicator)
        if entries and all(entry.success is None for entry in entries):
            report.failing_predicates.append(indicator)
        for index, clause in enumerate(predicate.clauses):
            if not any(
                clause_matches(entry.calling, clause) for entry in entries
            ):
                report.dead_clauses.append((indicator, index, clause))
    return report
