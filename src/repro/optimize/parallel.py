"""Independent And-Parallelism detection — the paper's motivating client.

Section 1: the dataflow information "paves the way for efficient
implementation of different classes of logic programs which support
Independent And-Parallelism".  This module implements that client: given a
finished analysis, it annotates each clause body with the independence of
its goal pairs, in the style of &-Prolog's Conditional Graph Expressions.

Two body goals can run in parallel when they cannot bind a common
variable.  For each calling pattern of each predicate, the clause is
re-executed abstractly (against the extension table, read-only) to obtain
the variable bindings at every program point; a goal pair is then

* ``independent`` — the goals share no variable, and no variable of one
  can reach (through the abstract store) a possibly-unbound cell reachable
  from the other;
* ``conditional`` — independence holds *if* the shared variables are
  ground / unaliased at run time; the needed ``ground(X)`` / ``indep(X,Y)``
  checks are reported (the CGE condition);
* ``dependent`` — the goals share a possibly-unbound variable outright;
* ``unknown`` — a table miss made the program point unanalyzable (rare:
  only when annotating patterns that were never explored).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.patterns import Pattern
from ..analysis.results import AnalysisResult
from ..baselines.absterms import AbsStore
from ..baselines.meta import _META_BUILTINS, CUT
from ..domain.sorts import AbsSort, sort_is_ground
from ..prolog.program import Clause, Program, normalize_program
from ..prolog.terms import (
    Indicator,
    Struct,
    Term,
    Var,
    format_indicator,
    indicator_of,
    term_vars,
)
from ..prolog.writer import term_to_text
from ..wam.builtins import MACHINE_BUILTIN_INDICATORS


@dataclass
class GoalPairInfo:
    """Independence verdict for one pair of body goals."""

    left_index: int
    right_index: int
    left_goal: Term
    right_goal: Term
    status: str  # 'independent' | 'conditional' | 'dependent' | 'unknown'
    conditions: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        left = term_to_text(self.left_goal)
        right = term_to_text(self.right_goal)
        head = f"{left}  &  {right}: {self.status}"
        if self.conditions:
            head += " if " + ", ".join(self.conditions)
        return head


@dataclass
class ClauseParallelism:
    """All goal-pair verdicts for one clause under one calling pattern."""

    indicator: Indicator
    clause_index: int
    clause: Clause
    calling: Pattern
    pairs: List[GoalPairInfo]

    @property
    def parallel_pairs(self) -> int:
        return sum(
            1 for pair in self.pairs if pair.status in ("independent", "conditional")
        )

    def to_text(self) -> str:
        header = (
            f"{format_indicator(self.indicator)} clause {self.clause_index + 1}"
            f" under {self.calling}:"
        )
        if not self.pairs:
            return header + " (fewer than two parallelizable goals)"
        lines = [header]
        for pair in self.pairs:
            lines.append("    " + pair.to_text())
        return "\n".join(lines)


@dataclass
class ParallelReport:
    """The whole program's And-Parallelism annotation."""

    clauses: List[ClauseParallelism]

    def count(self, status: str) -> int:
        return sum(
            1
            for annotated in self.clauses
            for pair in annotated.pairs
            if pair.status == status
        )

    def to_text(self) -> str:
        lines = [
            "% independent and-parallelism: "
            f"{self.count('independent')} independent, "
            f"{self.count('conditional')} conditional, "
            f"{self.count('dependent')} dependent goal pair(s)",
        ]
        for annotated in self.clauses:
            if annotated.pairs:
                lines.append(annotated.to_text())
        return "\n".join(lines)


class _ClauseAnnotator:
    """Replays one clause abstractly against a finished table."""

    def __init__(self, program: Program, result: AnalysisResult):
        self.program = program
        self.result = result
        self.depth = result.depth
        # May-share classes over store node ids: success patterns report
        # possible aliasing between argument positions whose internal
        # sharing the patterns cannot represent (summarized lists); the
        # union-find conservatively merges the affected frontiers.
        self._share_parent: Dict[object, object] = {}

    def _find(self, node: object) -> object:
        parent = self._share_parent.get(node, node)
        if parent == node:
            return node
        root = self._find(parent)
        self._share_parent[node] = root
        return root

    def _union(self, a: object, b: object) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a != root_b:
            self._share_parent[root_a] = root_b

    # ------------------------------------------------------------------

    def annotate_clause(
        self, indicator: Indicator, calling: Pattern, clause_index: int
    ) -> Optional[ClauseParallelism]:
        clause = self.program.clauses(indicator)[clause_index]
        self._share_parent = {}
        store = AbsStore()
        pattern_args = store.materialize(calling)
        env: Dict[int, int] = {}
        head_args = (
            list(clause.head.args) if isinstance(clause.head, Struct) else []
        )
        for head_term, pattern_arg in zip(head_args, pattern_args):
            head_id = store.from_term(head_term, env)
            if not store.s_unify(head_id, pattern_arg):
                return None  # this clause cannot match the pattern

        # Record, before each goal, the store state relevant to its vars.
        call_positions = [
            index
            for index, goal in enumerate(clause.body)
            if goal != CUT and indicator_of(goal) not in MACHINE_BUILTIN_INDICATORS
        ]
        states: Dict[int, AbsStore] = {}
        alive = True
        for index, goal in enumerate(clause.body):
            if index in call_positions:
                states[index] = store.copy()
            if not alive:
                break
            alive = self._step(store, goal, env)

        pairs: List[GoalPairInfo] = []
        for position, left_index in enumerate(call_positions):
            for right_index in call_positions[position + 1 :]:
                if left_index not in states:
                    continue
                pairs.append(
                    self._judge_pair(
                        clause, states[left_index], env, left_index, right_index
                    )
                )
        return ClauseParallelism(
            indicator=indicator,
            clause_index=clause_index,
            clause=clause,
            calling=calling,
            pairs=pairs,
        )

    def _step(self, store: AbsStore, goal: Term, env: Dict[int, int]) -> bool:
        """Execute one body goal against the finished table; False = the
        rest of the clause is unreachable."""
        if goal == CUT:
            return True
        indicator = indicator_of(goal)
        arg_terms = goal.args if isinstance(goal, Struct) else ()
        arg_ids = [store.from_term(term, env) for term in arg_terms]
        builtin = _META_BUILTINS.get(indicator)
        if builtin is not None:
            holder = _AnalyzerShim(self.depth)
            return bool(builtin(holder, store, arg_ids))
        calling = store.abstract(arg_ids, self.depth)
        entry = self.result.table.find(indicator, calling)
        if entry is None or entry.success is None:
            return False
        success_ids = store.materialize(entry.success)
        for caller_id, success_id in zip(arg_ids, success_ids):
            if not store.s_unify(caller_id, success_id):
                return False
        # Account for aliasing the success pattern could not express.
        for left_pos, right_pos in entry.may_share:
            if left_pos >= len(arg_ids) or right_pos >= len(arg_ids):
                continue
            merged: Set[object] = set()
            for position in (left_pos, right_pos):
                frontier: Set[int] = set()
                self._collect_frontier(store, arg_ids[position], frontier, set())
                merged |= frontier
            merged_list = list(merged)
            for node in merged_list[1:]:
                self._union(merged_list[0], node)
        return True

    # ------------------------------------------------------------------

    def _judge_pair(
        self,
        clause: Clause,
        store: AbsStore,
        env: Dict[int, int],
        left_index: int,
        right_index: int,
    ) -> GoalPairInfo:
        left_goal = clause.body[left_index]
        right_goal = clause.body[right_index]
        left_vars = term_vars(left_goal)
        right_vars = term_vars(right_goal)
        left_ids = {id(v) for v in left_vars}
        conditions: List[str] = []
        status = "independent"

        shared = [v for v in right_vars if id(v) in left_ids]
        for variable in shared:
            if self._definitely_ground(store, env, variable):
                continue
            conditions.append(f"ground({variable.name})")
            status = "conditional"

        # Aliasing through the store between the two goals' frontiers,
        # modulo the accumulated may-share classes.  Sharing through the
        # variables the goals share textually is already covered by the
        # ground(...) conditions above.
        points = {
            id(v): self._var_points(store, env, v)
            for v in left_vars + right_vars
        }
        left_frontier: Set[object] = set()
        for variable in left_vars:
            left_frontier |= points[id(variable)]
        right_frontier: Set[object] = set()
        for variable in right_vars:
            right_frontier |= points[id(variable)]
        shared_points: Set[object] = set()
        for variable in shared:
            shared_points |= points[id(variable)]
        hidden = (left_frontier & right_frontier) - shared_points
        if hidden:
            names = sorted(
                {
                    variable.name
                    for variable in left_vars + right_vars
                    if variable.name
                    and variable.name != "_"
                    and points[id(variable)] & hidden
                }
            )
            if names:
                conditions.append(f"indep({', '.join(names)})")
                status = "conditional"
            else:
                status = "dependent"
        return GoalPairInfo(
            left_index=left_index,
            right_index=right_index,
            left_goal=left_goal,
            right_goal=right_goal,
            status=status,
            conditions=conditions,
        )

    def _var_points(
        self, store: AbsStore, env: Dict[int, int], variable: Var
    ) -> Set[object]:
        """Class roots of the possibly-unbound cells ``variable`` reaches.

        A variable whose node was created after this program point was
        still unbound and unaliased here; it is represented by a private
        fresh marker.
        """
        ident = env.get(id(variable))
        if ident is None:
            return {("fresh", id(variable))}
        if ident not in store.nodes:
            return {self._find(("fresh", ident))}
        frontier: Set[int] = set()
        self._collect_frontier(store, ident, frontier, set())
        return {self._find(node) for node in frontier}

    def _definitely_ground(
        self, store: AbsStore, env: Dict[int, int], variable: Var
    ) -> bool:
        ident = env.get(id(variable))
        if ident is None or ident not in store.nodes:
            return False  # not yet created at this point: a fresh var
        return store._summary(ident, set()) in (
            AbsSort.GROUND,
            AbsSort.CONST,
            AbsSort.ATOM,
            AbsSort.INTEGER,
        )

    def _collect_frontier(
        self, store: AbsStore, ident: int, into: Set[int], seen: Set[int]
    ) -> None:
        ident, value = store.walk(ident)
        if ident in seen:
            return
        seen.add(ident)
        kind = value[0]
        if kind == "var":
            into.add(ident)
            return
        if kind == "sort":
            if not sort_is_ground(value[1]):
                into.add(ident)
            return
        if kind == "list":
            from ..domain.lattice import tree_is_ground

            if not tree_is_ground(value[1]):
                into.add(ident)
            return
        if kind == "const":
            return
        for child in value[2]:
            self._collect_frontier(store, child, into, seen)


class _AnalyzerShim:
    """Just enough of MetaAnalyzer for the abstract builtins."""

    def __init__(self, depth: int):
        self.depth = depth


def annotate_parallelism(
    program: Program, result: AnalysisResult
) -> ParallelReport:
    """Annotate every analyzed clause with goal-pair independence."""
    normalized = normalize_program(program)
    annotator = _ClauseAnnotator(normalized, result)
    annotated: List[ClauseParallelism] = []
    for indicator in result.predicates():
        clauses = normalized.clauses(indicator)
        if not clauses:
            continue
        for entry in result.table.entries_for(indicator):
            for clause_index in range(len(clauses)):
                one = annotator.annotate_clause(
                    indicator, entry.calling, clause_index
                )
                if one is not None and one.pairs:
                    annotated.append(one)
    return ParallelReport(annotated)
