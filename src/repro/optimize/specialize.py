"""A compiler client for the analysis: WAM code specialization.

The point of the dataflow analysis (paper Section 1) is to enable the
"substantial optimizations" that need interprocedural modes, types and
aliasing.  This module implements the classic ones as an annotation pass
over linked WAM code, driven by an :class:`~repro.analysis.results.AnalysisResult`:

* **dereference removal** — a ``get`` on an argument whose call type is
  ``nv`` or below can skip the unbound-variable case entirely (Taylor,
  "Removal of Dereferencing and Trailing in Prolog Compilation");
* **trail removal** — a ``get``/``unify`` against a *ground* argument can
  never bind anything, so no trailing is needed and read mode is the only
  mode;
* **write-mode specialization** — a ``get`` on an always-``var`` argument
  only ever constructs, so the read path and its tag dispatch go away;
* **determinism detection** — a predicate whose selecting argument is
  always instantiated and whose clauses have pairwise-distinct first-arg
  keys needs no choice point.

The result is a :class:`SpecializationReport` carrying per-instruction
annotations and a simple cost model (saved tag tests, dereference loops
and trail pushes), plus an annotated listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.results import AnalysisResult
from ..domain.lattice import GROUND_T, NV_T, Tree, VAR_T, tree_leq
from ..prolog.terms import Indicator, format_indicator
from ..wam.compile import CompiledProgram
from ..wam.instructions import Instr, Reg
from ..wam.listing import format_instruction

#: Cost model: units saved per specialization kind.
DEREF_COST = 2
TRAIL_COST = 1
TAG_TEST_COST = 1
CHOICE_POINT_COST = 10


@dataclass
class Annotation:
    """One specialized instruction."""

    address: int
    instruction: Instr
    kind: str  # 'ground', 'nonvar', 'write_only', 'deterministic'
    saving: int

    def to_text(self, arity: int = 0) -> str:
        base = format_instruction(self.instruction, arity)
        return f"{self.address:5d}  {base:40s} ; {self.kind} (saves {self.saving})"


@dataclass
class SpecializationReport:
    """All annotations for one compiled program."""

    annotations: List[Annotation] = field(default_factory=list)
    deterministic_predicates: List[Indicator] = field(default_factory=list)
    instructions_seen: int = 0

    @property
    def total_saving(self) -> int:
        return sum(a.saving for a in self.annotations) + CHOICE_POINT_COST * len(
            self.deterministic_predicates
        )

    def count(self, kind: str) -> int:
        return sum(1 for a in self.annotations if a.kind == kind)

    def to_text(self) -> str:
        lines = [
            f"% specialization: {len(self.annotations)} of "
            f"{self.instructions_seen} instructions, "
            f"{len(self.deterministic_predicates)} deterministic predicates, "
            f"{self.total_saving} cost units saved",
        ]
        for kind in ("ground", "nonvar", "write_only"):
            lines.append(f"%   {kind}: {self.count(kind)}")
        for indicator in self.deterministic_predicates:
            lines.append(f"%   deterministic: {format_indicator(indicator)}")
        for annotation in self.annotations:
            lines.append(annotation.to_text())
        return "\n".join(lines)


_GET_OPS = {"get_constant", "get_nil", "get_list", "get_structure", "get_value"}


def _argument_class(tree: Optional[Tree]) -> Optional[str]:
    """'ground', 'nonvar', 'var' or None (no specialization)."""
    if tree is None:
        return None
    if tree_leq(tree, GROUND_T):
        return "ground"
    if tree_leq(tree, VAR_T):
        return "var"
    if tree_leq(tree, NV_T):
        return "nonvar"
    return None


def _first_arg_keys_distinct(compiled: CompiledProgram, indicator: Indicator) -> bool:
    from ..wam.compile.predicate import _first_argument_key

    predicate = compiled.program.predicate(indicator)
    if predicate is None or len(predicate.clauses) < 2:
        return predicate is not None
    keys = [_first_argument_key(clause.head) for clause in predicate.clauses]
    if any(key == "var" for key in keys):
        return False
    return len(set(keys)) == len(keys)


def specialize(
    compiled: CompiledProgram, result: AnalysisResult
) -> SpecializationReport:
    """Annotate the code of every analyzed predicate; see module docstring."""
    report = SpecializationReport()
    for indicator in result.predicates():
        info = result.predicate(indicator)
        if info is None or indicator not in compiled.code.entry:
            continue
        classes: Dict[int, Optional[str]] = {
            argument.position + 1: _argument_class(argument.call_type)
            for argument in info.arguments
        }
        start = compiled.code.entry[indicator]
        size = compiled.code.size_of(indicator)
        for address in range(start, start + size):
            instruction = compiled.code.at(address)
            report.instructions_seen += 1
            annotation = _annotate(address, instruction, classes)
            if annotation is not None:
                report.annotations.append(annotation)
        first_class = classes.get(1)
        if first_class in ("ground", "nonvar") and _first_arg_keys_distinct(
            compiled, indicator
        ):
            report.deterministic_predicates.append(indicator)
    return report


def _annotate(
    address: int, instruction: Instr, classes: Dict[int, Optional[str]]
) -> Optional[Annotation]:
    op = instruction.args
    name = instruction.op
    if name not in _GET_OPS and name != "get_variable":
        return None
    # Locate the argument register the instruction examines.
    position: Optional[int] = None
    if name in ("get_constant",):
        position = op[1]
    elif name == "get_nil":
        position = op[0]
    elif name in ("get_list", "get_structure"):
        register = op[-1]
        if isinstance(register, Reg) and register.kind == "x":
            position = register.index
    elif name == "get_value":
        position = op[1]
    if position is None:
        return None
    argument_class = classes.get(position)
    if argument_class == "ground":
        return Annotation(
            address,
            instruction,
            "ground",
            DEREF_COST + TRAIL_COST + TAG_TEST_COST,
        )
    if argument_class == "nonvar":
        return Annotation(address, instruction, "nonvar", DEREF_COST)
    if argument_class == "var" and name in ("get_list", "get_structure", "get_constant", "get_nil"):
        return Annotation(address, instruction, "write_only", TAG_TEST_COST)
    return None
