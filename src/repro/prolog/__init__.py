"""Prolog front-end and reference engine.

Public surface:

* term model: :class:`Atom`, :class:`Int`, :class:`Float`, :class:`Var`,
  :class:`Struct` and the list helpers;
* reading: :func:`parse_term`, :func:`read_terms`,
  :class:`~repro.prolog.program.Program`;
* writing: :func:`term_to_text`;
* running: :class:`~repro.prolog.solver.Solver`.
"""

from .operators import OperatorTable
from .parser import (
    parse_term,
    parse_term_with_vars,
    read_terms,
    read_terms_with_recovery,
)
from .program import Clause, Predicate, Program, normalize_program
from .solver import Bindings, Solver, compare_terms, unify
from .terms import (
    NIL,
    Atom,
    Float,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    cons,
    format_indicator,
    indicator_of,
    is_cons,
    is_ground,
    is_proper_list,
    list_elements,
    make_list,
    term_depth,
    term_size,
    term_vars,
)
from .writer import term_to_text

__all__ = [
    "Atom",
    "Bindings",
    "Clause",
    "Float",
    "Indicator",
    "Int",
    "NIL",
    "OperatorTable",
    "Predicate",
    "Program",
    "Solver",
    "Struct",
    "Term",
    "Var",
    "compare_terms",
    "cons",
    "format_indicator",
    "indicator_of",
    "is_cons",
    "is_ground",
    "is_proper_list",
    "list_elements",
    "make_list",
    "normalize_program",
    "parse_term",
    "parse_term_with_vars",
    "read_terms",
    "read_terms_with_recovery",
    "term_depth",
    "term_size",
    "term_to_text",
    "term_vars",
    "unify",
]
