"""Arithmetic evaluation for ``is/2`` and the comparison builtins.

Works on fully dereferenced AST terms; the concrete WAM decodes heap cells
to AST terms and reuses this module, so both engines agree on arithmetic.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Union

from ..errors import PrologError
from .terms import Atom, Float, Int, Struct, Term, Var

Numeric = Union[int, float]


def _as_int(value: Numeric, context: str) -> int:
    if isinstance(value, int):
        return value
    raise PrologError("type_error", f"integer expected in {context}, got {value}")


def _int_div(left: Numeric, right: Numeric) -> int:
    """Truncating integer division (ISO ``//``)."""
    left_int = _as_int(left, "//")
    right_int = _as_int(right, "//")
    if right_int == 0:
        raise PrologError("evaluation_error", "zero_divisor")
    quotient = left_int // right_int
    if quotient < 0 and quotient * right_int != left_int:
        quotient += 1
    return quotient


def _floor_div(left: Numeric, right: Numeric) -> int:
    """Flooring integer division (ISO ``div``)."""
    left_int = _as_int(left, "div")
    right_int = _as_int(right, "div")
    if right_int == 0:
        raise PrologError("evaluation_error", "zero_divisor")
    return left_int // right_int


def _divide(left: Numeric, right: Numeric) -> Numeric:
    if right == 0:
        raise PrologError("evaluation_error", "zero_divisor")
    if isinstance(left, int) and isinstance(right, int) and left % right == 0:
        return left // right
    return left / right


def _mod(left: Numeric, right: Numeric) -> int:
    if right == 0:
        raise PrologError("evaluation_error", "zero_divisor")
    return _as_int(left, "mod") % _as_int(right, "mod")


def _rem(left: Numeric, right: Numeric) -> int:
    if right == 0:
        raise PrologError("evaluation_error", "zero_divisor")
    left_int = _as_int(left, "rem")
    right_int = _as_int(right, "rem")
    return left_int - right_int * int(left_int / right_int)


_BINARY: Dict[str, Callable[[Numeric, Numeric], Numeric]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _divide,
    "//": _int_div,
    "div": _floor_div,
    "mod": _mod,
    "rem": _rem,
    "min": min,
    "max": max,
    "**": lambda a, b: float(a) ** float(b),
    "^": lambda a, b: a ** b,
    ">>": lambda a, b: _as_int(a, ">>") >> _as_int(b, ">>"),
    "<<": lambda a, b: _as_int(a, "<<") << _as_int(b, "<<"),
    "/\\": lambda a, b: _as_int(a, "/\\") & _as_int(b, "/\\"),
    "\\/": lambda a, b: _as_int(a, "\\/") | _as_int(b, "\\/"),
    "xor": lambda a, b: _as_int(a, "xor") ^ _as_int(b, "xor"),
    "gcd": lambda a, b: math.gcd(_as_int(a, "gcd"), _as_int(b, "gcd")),
}

_UNARY: Dict[str, Callable[[Numeric], Numeric]] = {
    "-": lambda a: -a,
    "+": lambda a: a,
    "abs": abs,
    "sign": lambda a: (a > 0) - (a < 0) if isinstance(a, int) else float((a > 0) - (a < 0)),
    "\\": lambda a: ~_as_int(a, "\\"),
    "truncate": lambda a: int(a),
    "integer": lambda a: int(a),
    "float": float,
    "floor": lambda a: math.floor(a),
    "ceiling": lambda a: math.ceil(a),
    "round": lambda a: math.floor(a + 0.5),
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "exp": math.exp,
    "log": math.log,
    "float_integer_part": lambda a: float(int(a)),
    "float_fractional_part": lambda a: float(a) - float(int(a)),
    "msb": lambda a: _as_int(a, "msb").bit_length() - 1,
}

_CONSTANTS: Dict[str, Numeric] = {
    "pi": math.pi,
    "e": math.e,
    "inf": math.inf,
    "epsilon": 2.220446049250313e-16,
    "max_tagged_integer": (1 << 60) - 1,
}


def eval_arith(term: Term, deref: Callable[[Term], Term]) -> Numeric:
    """Evaluate an arithmetic expression term to a Python number.

    ``deref`` resolves variables to their bindings (identity for already
    resolved terms).  Raises :class:`PrologError` for unbound variables,
    non-evaluable functors and arithmetic faults.
    """
    term = deref(term)
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Float):
        return term.value
    if isinstance(term, Var):
        raise PrologError("instantiation_error", "unbound variable in arithmetic")
    if isinstance(term, Atom):
        constant = _CONSTANTS.get(term.name)
        if constant is not None:
            return constant
        raise PrologError("type_error", f"not evaluable: {term.name}/0")
    if isinstance(term, Struct):
        if term.arity == 2:
            operation = _BINARY.get(term.name)
            if operation is not None:
                left = eval_arith(term.args[0], deref)
                right = eval_arith(term.args[1], deref)
                return operation(left, right)
        if term.arity == 1:
            operation = _UNARY.get(term.name)
            if operation is not None:
                return operation(eval_arith(term.args[0], deref))
        raise PrologError("type_error", f"not evaluable: {term.name}/{term.arity}")
    raise PrologError("type_error", f"not evaluable: {term!r}")


def number_term(value: Numeric) -> Term:
    """Wrap a Python number back into an :class:`Int` or :class:`Float`."""
    if isinstance(value, bool):
        raise PrologError("type_error", "boolean is not a Prolog number")
    if isinstance(value, int):
        return Int(value)
    return Float(value)


def compare_numeric(operator: str, left: Numeric, right: Numeric) -> bool:
    """Apply one of the six arithmetic comparison operators."""
    if operator == "=:=":
        return left == right
    if operator == "=\\=":
        return left != right
    if operator == "<":
        return left < right
    if operator == ">":
        return left > right
    if operator == "=<":
        return left <= right
    if operator == ">=":
        return left >= right
    raise PrologError("type_error", f"unknown comparison {operator}")
