"""Builtin predicates for the SLD solver.

Each builtin is a generator ``fn(solver, args, depth)`` that yields once per
solution; bindings it creates are trailed through ``solver.bindings`` and
undone by the caller after all alternatives are exhausted.  Nondeterministic
builtins must undo their own bindings *between* alternatives.

The table covers the control, unification, type-testing, arithmetic,
term-inspection and (buffered) output builtins needed by the benchmark
suite and by realistic small programs.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..errors import PrologError
from .arith import compare_numeric, eval_arith, number_term
from .terms import (
    NIL,
    Atom,
    Float,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    is_proper_list,
    list_elements,
    make_list,
    rename_term,
)

# ``solver`` is typed loosely to avoid a circular import.


def _b_true(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    yield


def _b_fail(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    return
    yield  # pragma: no cover


def _b_unify(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    if unify(args[0], args[1], solver.bindings):
        yield


def _b_not_unify(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    mark = solver.bindings.mark()
    unifiable = unify(args[0], args[1], solver.bindings)
    solver.bindings.undo_to(mark)
    if not unifiable:
        yield


def _structural(op: str):
    def builtin(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
        from .solver import compare_terms

        result = compare_terms(args[0], args[1], solver.bindings)
        passed = {
            "==": result == 0,
            "\\==": result != 0,
            "@<": result < 0,
            "@>": result > 0,
            "@=<": result <= 0,
            "@>=": result >= 0,
        }[op]
        if passed:
            yield

    return builtin


def _b_compare(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import compare_terms, unify

    result = compare_terms(args[1], args[2], solver.bindings)
    symbol = Atom("<" if result < 0 else ">" if result > 0 else "=")
    if unify(args[0], symbol, solver.bindings):
        yield


def _type_test(predicate):
    def builtin(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
        term = solver.bindings.walk(args[0])
        if predicate(term):
            yield

    return builtin


def _b_is(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    value = eval_arith(args[1], solver.bindings.walk)
    if unify(args[0], number_term(value), solver.bindings):
        yield


def _arith_compare(op: str):
    def builtin(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
        left = eval_arith(args[0], solver.bindings.walk)
        right = eval_arith(args[1], solver.bindings.walk)
        if compare_numeric(op, left, right):
            yield

    return builtin


def _b_functor(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    term = solver.bindings.walk(args[0])
    if isinstance(term, Var):
        name = solver.bindings.walk(args[1])
        arity = solver.bindings.walk(args[2])
        if isinstance(arity, Var) or isinstance(name, Var):
            raise PrologError("instantiation_error", "functor/3")
        if not isinstance(arity, Int):
            raise PrologError("type_error", "functor/3 arity must be integer")
        if arity.value == 0:
            if unify(term, name, solver.bindings):
                yield
            return
        if not isinstance(name, Atom):
            raise PrologError("type_error", "functor/3 name must be an atom")
        fresh = Struct(name.name, tuple(Var() for _ in range(arity.value)))
        if unify(term, fresh, solver.bindings):
            yield
        return
    if isinstance(term, Struct):
        name_term: Term = Atom(term.name)
        arity_value = term.arity
    elif isinstance(term, Atom):
        name_term = term
        arity_value = 0
    else:
        name_term = term
        arity_value = 0
    if unify(args[1], name_term, solver.bindings) and unify(
        args[2], Int(arity_value), solver.bindings
    ):
        yield


def _b_arg(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    index = solver.bindings.walk(args[0])
    term = solver.bindings.walk(args[1])
    if not isinstance(index, Int) or not isinstance(term, Struct):
        raise PrologError("type_error", "arg/3 expects integer and compound")
    if 1 <= index.value <= term.arity:
        if unify(args[2], term.args[index.value - 1], solver.bindings):
            yield


def _b_univ(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    term = solver.bindings.walk(args[0])
    if not isinstance(term, Var):
        if isinstance(term, Struct):
            items = [Atom(term.name)] + list(term.args)
        else:
            items = [term]
        if unify(args[1], make_list(items), solver.bindings):
            yield
        return
    spec = solver.bindings.resolve(args[1])
    if not is_proper_list(spec):
        raise PrologError("instantiation_error", "=../2 needs a proper list")
    items, _ = list_elements(spec)
    if not items:
        raise PrologError("domain_error", "=../2 with empty list")
    head = items[0]
    if len(items) == 1:
        if unify(term, head, solver.bindings):
            yield
        return
    if not isinstance(head, Atom):
        raise PrologError("type_error", "=../2 functor must be an atom")
    if unify(term, Struct(head.name, tuple(items[1:])), solver.bindings):
        yield


def _b_copy_term(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    source = solver.bindings.resolve(args[0])
    copy = rename_term(source, {})
    if unify(args[1], copy, solver.bindings):
        yield


def _b_call(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    goal = solver.bindings.walk(args[0])
    if len(args) > 1:
        extra = list(args[1:])
        if isinstance(goal, Atom):
            goal = Struct(goal.name, tuple(extra))
        elif isinstance(goal, Struct):
            goal = Struct(goal.name, tuple(goal.args) + tuple(extra))
        else:
            raise PrologError("type_error", "call/N on non-callable")
    yield from solver._solve([goal], depth + 1)


def _b_between(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    low = solver.bindings.walk(args[0])
    high = solver.bindings.walk(args[1])
    if not isinstance(low, Int) or not isinstance(high, Int):
        raise PrologError("type_error", "between/3 bounds must be integers")
    value = solver.bindings.walk(args[2])
    if isinstance(value, Int):
        if low.value <= value.value <= high.value:
            yield
        return
    for number in range(low.value, high.value + 1):
        mark = solver.bindings.mark()
        if unify(args[2], Int(number), solver.bindings):
            yield
        solver.bindings.undo_to(mark)


def _b_write(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .writer import term_to_text

    solver.output.append(term_to_text(solver.bindings.resolve(args[0])))
    yield


def _b_writeq(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .writer import term_to_text

    solver.output.append(
        term_to_text(solver.bindings.resolve(args[0]), quoted=True)
    )
    yield


def _b_nl(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    solver.output.append("\n")
    yield


def _b_tab(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    count = eval_arith(args[0], solver.bindings.walk)
    solver.output.append(" " * int(count))
    yield


def _b_atom_length(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    atom = solver.bindings.walk(args[0])
    if not isinstance(atom, Atom):
        raise PrologError("type_error", "atom_length/2 expects an atom")
    if unify(args[1], Int(len(atom.name)), solver.bindings):
        yield


def _b_name(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    from .solver import unify

    term = solver.bindings.walk(args[0])
    if isinstance(term, Atom):
        codes = make_list([Int(ord(c)) for c in term.name])
        if unify(args[1], codes, solver.bindings):
            yield
        return
    if isinstance(term, Int):
        codes = make_list([Int(ord(c)) for c in str(term.value)])
        if unify(args[1], codes, solver.bindings):
            yield
        return
    spec = solver.bindings.resolve(args[1])
    if not is_proper_list(spec):
        raise PrologError("instantiation_error", "name/2")
    items, _ = list_elements(spec)
    chars = []
    for item in items:
        if not isinstance(item, Int):
            raise PrologError("type_error", "name/2 expects character codes")
        chars.append(chr(item.value))
    text = "".join(chars)
    try:
        result: Term = Int(int(text))
    except ValueError:
        result = Atom(text)
    if unify(term, result, solver.bindings):
        yield


def _b_findall(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    """findall(Template, Goal, List): collect every solution's template.

    Solver-only (the WAM has no re-entrant builtin support); bindings made
    while solving Goal are undone, only the copied templates survive.
    """
    from .solver import unify

    template, goal, result = args
    collected = []
    mark = solver.bindings.mark()
    for _ in solver._solve([goal], depth + 1):
        collected.append(rename_term(solver.bindings.resolve(template), {}))
    solver.bindings.undo_to(mark)
    if unify(result, make_list(collected), solver.bindings):
        yield


def _b_forall(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    """forall(Cond, Action): no solution of Cond may fail Action."""
    condition, action = args
    mark = solver.bindings.mark()
    for _ in solver._solve([condition], depth + 1):
        inner = solver.bindings.mark()
        satisfied = False
        for _ in solver._solve([action], depth + 1):
            satisfied = True
            break
        solver.bindings.undo_to(inner)
        if not satisfied:
            solver.bindings.undo_to(mark)
            return
    solver.bindings.undo_to(mark)
    yield


def _b_aggregate_count(solver, args: Tuple[Term, ...], depth: int) -> Iterator[None]:
    """aggregate_all(count, Goal, N) in its common special case."""
    from .solver import unify

    goal, result = args
    mark = solver.bindings.mark()
    count = 0
    for _ in solver._solve([goal], depth + 1):
        count += 1
    solver.bindings.undo_to(mark)
    if unify(result, Int(count), solver.bindings):
        yield


def _is_atomic(term: Term) -> bool:
    return isinstance(term, (Atom, Int, Float))


STANDARD_BUILTINS: Dict[Indicator, object] = {
    ("true", 0): _b_true,
    ("fail", 0): _b_fail,
    ("false", 0): _b_fail,
    ("=", 2): _b_unify,
    ("\\=", 2): _b_not_unify,
    ("==", 2): _structural("=="),
    ("\\==", 2): _structural("\\=="),
    ("@<", 2): _structural("@<"),
    ("@>", 2): _structural("@>"),
    ("@=<", 2): _structural("@=<"),
    ("@>=", 2): _structural("@>="),
    ("compare", 3): _b_compare,
    ("var", 1): _type_test(lambda t: isinstance(t, Var)),
    ("nonvar", 1): _type_test(lambda t: not isinstance(t, Var)),
    ("atom", 1): _type_test(lambda t: isinstance(t, Atom)),
    ("number", 1): _type_test(lambda t: isinstance(t, (Int, Float))),
    ("integer", 1): _type_test(lambda t: isinstance(t, Int)),
    ("float", 1): _type_test(lambda t: isinstance(t, Float)),
    ("atomic", 1): _type_test(_is_atomic),
    ("compound", 1): _type_test(lambda t: isinstance(t, Struct)),
    ("callable", 1): _type_test(lambda t: isinstance(t, (Atom, Struct))),
    ("is", 2): _b_is,
    ("=:=", 2): _arith_compare("=:="),
    ("=\\=", 2): _arith_compare("=\\="),
    ("<", 2): _arith_compare("<"),
    (">", 2): _arith_compare(">"),
    ("=<", 2): _arith_compare("=<"),
    (">=", 2): _arith_compare(">="),
    ("functor", 3): _b_functor,
    ("arg", 3): _b_arg,
    ("=..", 2): _b_univ,
    ("copy_term", 2): _b_copy_term,
    ("call", 1): _b_call,
    ("call", 2): _b_call,
    ("call", 3): _b_call,
    ("between", 3): _b_between,
    ("write", 1): _b_write,
    ("writeq", 1): _b_writeq,
    ("print", 1): _b_write,
    ("nl", 0): _b_nl,
    ("tab", 1): _b_tab,
    ("atom_length", 2): _b_atom_length,
    ("name", 2): _b_name,
    ("findall", 3): _b_findall,
    ("forall", 2): _b_forall,
    ("$count", 2): _b_aggregate_count,
}

#: Indicators the WAM treats as inline builtins as well.
BUILTIN_INDICATORS = frozenset(STANDARD_BUILTINS.keys())
