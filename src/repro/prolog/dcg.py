"""DCG (definite clause grammar) translation.

``Head --> Body`` rules are rewritten into ordinary clauses threading a
difference list through the body, the standard expansion:

* a nonterminal ``nt(Args)`` becomes ``nt(Args, S0, S1)``;
* a terminal list ``[a, b]`` becomes ``S0 = [a, b | S1]``;
* a string ``"ab"`` is a terminal list of character codes;
* ``{Goal}`` calls ``Goal`` without consuming input;
* ``!`` stays a cut; ``(A, B)``, ``(A ; B)`` and ``(A -> B)`` thread both
  sides (control constructs are later normalized away as usual).

:class:`~repro.prolog.program.Program` applies the expansion
automatically when it encounters a ``-->/2`` term, so grammars parse,
compile, run and analyze like any other predicate (each nonterminal gains
two argument places).
"""

from __future__ import annotations

from typing import Tuple

from ..errors import PrologSyntaxError
from .program import Clause
from .terms import (
    NIL,
    Atom,
    Struct,
    Term,
    Var,
    is_cons,
    is_proper_list,
    list_elements,
    make_list,
)

CUT = Atom("!")


def _add_arguments(callable_term: Term, extra: Tuple[Term, ...]) -> Term:
    if isinstance(callable_term, Atom):
        return Struct(callable_term.name, extra)
    if isinstance(callable_term, Struct):
        return Struct(callable_term.name, tuple(callable_term.args) + extra)
    raise PrologSyntaxError(f"DCG nonterminal is not callable: {callable_term}")


def _translate_body(body: Term, start: Term, end: Term) -> Term:
    """Translate one DCG body item threading ``start`` to ``end``."""
    if isinstance(body, Struct) and body.indicator == (",", 2):
        middle = Var("_S")
        left = _translate_body(body.args[0], start, middle)
        right = _translate_body(body.args[1], middle, end)
        return Struct(",", (left, right))
    if isinstance(body, Struct) and body.indicator in ((";", 2),):
        left = _translate_body(body.args[0], start, end)
        right = _translate_body(body.args[1], start, end)
        return Struct(";", (left, right))
    if isinstance(body, Struct) and body.indicator == ("->", 2):
        middle = Var("_S")
        condition = _translate_body(body.args[0], start, middle)
        then_part = _translate_body(body.args[1], middle, end)
        return Struct("->", (condition, then_part))
    if isinstance(body, Struct) and body.indicator == ("{}", 1):
        # A plain goal: no input is consumed, so the ends must meet.
        return Struct(",", (body.args[0], Struct("=", (start, end))))
    if body == CUT:
        return Struct(",", (CUT, Struct("=", (start, end))))
    if body == NIL:
        return Struct("=", (start, end))
    if is_cons(body):
        if not is_proper_list(body):
            raise PrologSyntaxError("DCG terminal must be a proper list")
        elements, _ = list_elements(body)
        return Struct("=", (start, make_list(elements, end)))
    if isinstance(body, Var):
        raise PrologSyntaxError("DCG body may not be an unbound variable")
    return _add_arguments(body, (start, end))


def translate_dcg(rule: Term) -> Clause:
    """Translate one ``Head --> Body`` term into a clause."""
    if not (isinstance(rule, Struct) and rule.indicator == ("-->", 2)):
        raise PrologSyntaxError(f"not a DCG rule: {rule}")
    head, body = rule.args
    start, end = Var("S0"), Var("S")
    pushback = None
    if isinstance(head, Struct) and head.indicator == (",", 2):
        # Pushback rule: Head, PB --> Body.
        head, pushback = head.args
    new_head = _add_arguments(head, (start, end))
    if pushback is not None:
        if not is_proper_list(pushback):
            raise PrologSyntaxError("DCG pushback must be a proper list")
        elements, _ = list_elements(pushback)
        middle = Var("_S")
        new_head = _add_arguments(head, (start, end))
        translated = Struct(
            ",",
            (
                _translate_body(body, start, middle),
                Struct("=", (end, make_list(elements, middle))),
            ),
        )
        return Clause.from_term(Struct(":-", (new_head, translated)))
    translated = _translate_body(body, start, end)
    return Clause.from_term(Struct(":-", (new_head, translated)))
