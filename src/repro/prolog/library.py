"""A small Prolog library of list and control predicates.

The machine keeps its inline builtins deterministic, so the classic
nondeterministic library predicates (``member/2``, ``append/3``,
``between/3``, ``select/3``, ...) are provided as plain Prolog and
compiled like user code.  :func:`with_library` prepends the library to a
program text; predicates the program defines itself win (the library is
appended *after*, and only for predicates not already defined).
"""

from __future__ import annotations

from .program import Clause, Program

LIBRARY_SOURCE = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, [X|_]) :- !.
memberchk(X, [_|T]) :- memberchk(X, T).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], A, A).
reverse_([H|T], A, R) :- reverse_(T, [H|A], R).

length(L, N) :- length_(L, 0, N).
length_([], N, N).
length_([_|T], N0, N) :- N1 is N0 + 1, length_(T, N1, N).

nth0(I, L, E) :- nth_(L, 0, I, E).
nth1(I, L, E) :- nth_(L, 1, I, E).
nth_([H|_], N, N, H).
nth_([_|T], N0, N, E) :- N1 is N0 + 1, nth_(T, N1, N, E).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).

between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S0), S is S0 + H.

max_list([X], X) :- !.
max_list([H|T], M) :- max_list(T, M0), ( H >= M0 -> M = H ; M = M0 ).

min_list([X], X) :- !.
min_list([H|T], M) :- min_list(T, M0), ( H =< M0 -> M = H ; M = M0 ).

msort(L, S) :- msort_split(L, S).
msort_split([], []) :- !.
msort_split([X], [X]) :- !.
msort_split(L, S) :-
    msort_half(L, L1, L2),
    msort_split(L1, S1),
    msort_split(L2, S2),
    msort_merge(S1, S2, S).
msort_half([], [], []).
msort_half([X], [X], []).
msort_half([X, Y | T], [X | A], [Y | B]) :- msort_half(T, A, B).
msort_merge([], L, L) :- !.
msort_merge(L, [], L) :- !.
msort_merge([A|As], [B|Bs], [A|Rs]) :- A @=< B, !, msort_merge(As, [B|Bs], Rs).
msort_merge(As, [B|Bs], [B|Rs]) :- msort_merge(As, Bs, Rs).
"""


def library_program() -> Program:
    """The library as a parsed program."""
    return Program.from_text(LIBRARY_SOURCE)


def with_library(text) -> Program:
    """Add library predicates a program does not define itself.

    ``text`` may be a source string (parsed strictly) or an
    already-parsed :class:`Program` — the latter lets callers that
    parsed with error recovery reuse their program.
    """
    program = text if isinstance(text, Program) else Program.from_text(text)
    library = library_program()
    for indicator, predicate in library.predicates.items():
        if program.predicate(indicator) is None:
            for clause in predicate.clauses:
                program.add_clause(clause)
    return program
