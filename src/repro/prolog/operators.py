"""The Prolog operator table.

Operators have a priority (1..1200) and a type: ``xfx``/``xfy``/``yfx`` for
infix, ``fy``/``fx`` for prefix and ``xf``/``yf`` for postfix.  An ``x``
argument must have strictly lower priority than the operator, a ``y``
argument at most the operator's priority.

:class:`OperatorTable` starts with the standard table and supports
``op/3``-style updates, so programs that declare their own operators parse
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

MAX_PRIORITY = 1200


@dataclass(frozen=True)
class OpDef:
    """One operator definition: priority and type (e.g. 700, "xfx")."""

    priority: int
    kind: str

    @property
    def is_infix(self) -> bool:
        return self.kind in ("xfx", "xfy", "yfx")

    @property
    def is_prefix(self) -> bool:
        return self.kind in ("fy", "fx")

    @property
    def is_postfix(self) -> bool:
        return self.kind in ("xf", "yf")

    def argument_priorities(self) -> Tuple[int, ...]:
        """Maximum priorities allowed for the operator's arguments."""
        below = self.priority - 1
        at = self.priority
        if self.kind == "xfx":
            return (below, below)
        if self.kind == "xfy":
            return (below, at)
        if self.kind == "yfx":
            return (at, below)
        if self.kind == "fy":
            return (at,)
        if self.kind == "fx":
            return (below,)
        if self.kind == "xf":
            return (below,)
        if self.kind == "yf":
            return (at,)
        raise ValueError(f"bad operator kind {self.kind}")


#: The standard operator table (ISO core plus common DEC-10 extras).
STANDARD_OPERATORS = [
    (1200, "xfx", ":-"),
    (1200, "xfx", "-->"),
    (1200, "fx", ":-"),
    (1200, "fx", "?-"),
    (1100, "xfy", ";"),
    (1050, "xfy", "->"),
    (1000, "xfy", ","),
    (990, "xfx", ":="),
    (900, "fy", "\\+"),
    (700, "xfx", "="),
    (700, "xfx", "\\="),
    (700, "xfx", "=="),
    (700, "xfx", "\\=="),
    (700, "xfx", "@<"),
    (700, "xfx", "@>"),
    (700, "xfx", "@=<"),
    (700, "xfx", "@>="),
    (700, "xfx", "=.."),
    (700, "xfx", "is"),
    (700, "xfx", "=:="),
    (700, "xfx", "=\\="),
    (700, "xfx", "<"),
    (700, "xfx", ">"),
    (700, "xfx", "=<"),
    (700, "xfx", ">="),
    (500, "yfx", "+"),
    (500, "yfx", "-"),
    (500, "yfx", "/\\"),
    (500, "yfx", "\\/"),
    (500, "yfx", "xor"),
    (400, "yfx", "*"),
    (400, "yfx", "/"),
    (400, "yfx", "//"),
    (400, "yfx", "mod"),
    (400, "yfx", "rem"),
    (400, "yfx", "div"),
    (400, "yfx", "<<"),
    (400, "yfx", ">>"),
    (200, "xfx", "**"),
    (200, "xfy", "^"),
    (200, "fy", "-"),
    (200, "fy", "+"),
    (200, "fy", "\\"),
]


class OperatorTable:
    """Mutable operator table; one per reader/program."""

    def __init__(self) -> None:
        self._prefix: Dict[str, OpDef] = {}
        self._infix: Dict[str, OpDef] = {}
        self._postfix: Dict[str, OpDef] = {}
        for priority, kind, name in STANDARD_OPERATORS:
            self.add(priority, kind, name)

    def add(self, priority: int, kind: str, name: str) -> None:
        """Define or redefine an operator, as ``op(Priority, Kind, Name)``."""
        if not 0 <= priority <= MAX_PRIORITY:
            raise ValueError(f"operator priority out of range: {priority}")
        definition = OpDef(priority, kind)
        if definition.is_prefix:
            table = self._prefix
        elif definition.is_infix:
            table = self._infix
        elif definition.is_postfix:
            table = self._postfix
        else:
            raise ValueError(f"bad operator kind {kind!r}")
        if priority == 0:
            table.pop(name, None)
        else:
            table[name] = definition

    def prefix(self, name: str) -> Optional[OpDef]:
        return self._prefix.get(name)

    def infix(self, name: str) -> Optional[OpDef]:
        return self._infix.get(name)

    def postfix(self, name: str) -> Optional[OpDef]:
        return self._postfix.get(name)

    def is_operator(self, name: str) -> bool:
        return (
            name in self._prefix or name in self._infix or name in self._postfix
        )
