"""Operator-precedence parser for Prolog.

:class:`Parser` turns a token stream into terms using the priority-climbing
algorithm from the ISO standard: a *primary* is read first (constant,
variable, functor application, bracketed term, list, curly term, string, or
prefix operator application), then infix operators of admissible priority
are folded in a loop.

Entry points:

* :func:`parse_term` — read a single term from text;
* :func:`read_terms` — read a whole program: a list of clause terms, with
  ``:- op/3`` directives applied to the operator table on the fly.

Variables with the same name within one term read denote the same
:class:`~repro.prolog.terms.Var`; ``_`` is always fresh.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import PrologSyntaxError
from .operators import MAX_PRIORITY, OperatorTable
from .terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
    make_list,
)
from .tokenizer import Token, tokenize

#: Maximum priority of a term appearing as an argument (inside ``f(...)``
#: or a list), where a bare ``,`` separates arguments.
ARG_PRIORITY = 999


class Parser:
    """Parses one token stream against an operator table."""

    def __init__(self, tokens: List[Token], operators: Optional[OperatorTable] = None):
        self.tokens = tokens
        self.index = 0
        self.operators = operators if operators is not None else OperatorTable()
        self.var_map: Dict[str, Var] = {}
        #: (line, column) of the first token of the last clause read.
        self.clause_position: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Token stream helpers.

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self.index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> PrologSyntaxError:
        token = token if token is not None else self._peek()
        return PrologSyntaxError(message, token.line, token.column)

    def _expect_punct(self, value: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != value:
            raise self._error(f"expected {value!r}, got {token}", token)

    def at_end(self) -> bool:
        return self._peek().kind == "eof"

    def skip_to_clause_end(self) -> None:
        """Error recovery: skip tokens up to and past the next clause
        terminator (``.``), or to end of input.

        After a syntax error this resynchronizes the stream at the start
        of the next clause so reading can continue.  If the offending
        token just consumed *was* the terminator (e.g. ``foo(.``, where
        ``.`` arrives as an unexpected primary), the stream is already
        at a clause boundary and nothing is skipped — this keeps the
        following well-formed clause.  Always makes progress relative to
        the erroring read: either a token was consumed raising the
        error, or at least one is skipped here.
        """
        if self.index > 0 and self.tokens[self.index - 1].kind == "end":
            return
        start = self.index
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            self.index += 1
            if token.kind == "end":
                break
        if self.index == start and not self.at_end():
            self.index += 1

    # ------------------------------------------------------------------
    # Term reading.

    def read_clause_term(self) -> Optional[Term]:
        """Read one term terminated by the end token; None at end of input.

        The (line, column) of the clause's first token is recorded in
        :attr:`clause_position` so callers can attach source locations to
        the parsed clause.
        """
        if self.at_end():
            return None
        self.var_map = {}
        start = self._peek()
        self.clause_position = (start.line, start.column)
        term = self.parse(MAX_PRIORITY)
        token = self._next()
        if token.kind != "end":
            raise self._error(f"expected '.' to end clause, got {token}", token)
        return term

    def parse(self, max_priority: int) -> Term:
        term, _ = self._parse_with_priority(max_priority)
        return term

    def _parse_with_priority(self, max_priority: int) -> Tuple[Term, int]:
        left, left_priority = self._parse_primary(max_priority)
        return self._parse_infix_loop(left, left_priority, max_priority)

    # ------------------------------------------------------------------
    # Primary terms.

    def _parse_primary(self, max_priority: int) -> Tuple[Term, int]:
        token = self._next()
        if token.kind == "int":
            return Int(token.value), 0
        if token.kind == "float":
            return Float(token.value), 0
        if token.kind == "var":
            return self._variable(token.value), 0
        if token.kind == "string":
            codes = [Int(ord(ch)) for ch in str(token.value)]
            return make_list(codes), 0
        if token.kind == "punct":
            return self._parse_punct_primary(token)
        if token.kind == "atom":
            return self._parse_atom_primary(token, max_priority)
        raise self._error(f"unexpected {token}", token)

    def _variable(self, name: str) -> Var:
        if name == "_":
            return Var("_")
        existing = self.var_map.get(name)
        if existing is None:
            existing = Var(name)
            self.var_map[name] = existing
        return existing

    def _parse_punct_primary(self, token: Token) -> Tuple[Term, int]:
        if token.value == "(":
            term = self.parse(MAX_PRIORITY)
            self._expect_punct(")")
            return term, 0
        if token.value == "[":
            return self._parse_list(), 0
        if token.value == "{":
            if self._punct_ahead("}"):
                self._next()
                return Atom("{}"), 0
            inner = self.parse(MAX_PRIORITY)
            self._expect_punct("}")
            return Struct("{}", (inner,)), 0
        raise self._error(f"unexpected {token}", token)

    def _punct_ahead(self, value: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.value == value

    def _parse_list(self) -> Term:
        if self._punct_ahead("]"):
            self._next()
            return NIL
        elements = [self.parse(ARG_PRIORITY)]
        while self._punct_ahead(","):
            self._next()
            elements.append(self.parse(ARG_PRIORITY))
        tail: Term = NIL
        if self._punct_ahead("|"):
            self._next()
            tail = self.parse(ARG_PRIORITY)
        self._expect_punct("]")
        return make_list(elements, tail)

    def _parse_atom_primary(self, token: Token, max_priority: int) -> Tuple[Term, int]:
        name = str(token.value)
        if token.functor:
            self._expect_punct("(")
            args = [self.parse(ARG_PRIORITY)]
            while self._punct_ahead(","):
                self._next()
                args.append(self.parse(ARG_PRIORITY))
            self._expect_punct(")")
            return Struct(name, tuple(args)), 0
        # Negative numeric literals: ``- 1`` with no intervening functor.
        if name == "-" and self._peek().kind in ("int", "float"):
            number = self._next()
            if number.kind == "int":
                return Int(-int(number.value)), 0
            return Float(-float(number.value)), 0
        prefix = self.operators.prefix(name)
        if prefix is not None and prefix.priority <= max_priority:
            if self._starts_term():
                (arg_max,) = prefix.argument_priorities()
                operand = self.parse(arg_max)
                return Struct(name, (operand,)), prefix.priority
        # A bare atom; if it names an operator it still parses as an
        # operand here (e.g. ``X = (-)`` after bracketing, or ``f(-, 1)``).
        priority = 0
        if self.operators.is_operator(name):
            priority = max_priority if max_priority < MAX_PRIORITY else 0
        return Atom(name), priority

    def _starts_term(self) -> bool:
        """Can the upcoming token begin an operand for a prefix operator?"""
        token = self._peek()
        if token.kind in ("int", "float", "var", "string"):
            return True
        if token.kind == "punct":
            return token.value in "([{"
        if token.kind == "atom":
            name = str(token.value)
            if token.functor:
                return True
            # An infix-only operator cannot begin a term (e.g. ``- = x``).
            if (
                self.operators.infix(name) is not None
                and self.operators.prefix(name) is None
            ):
                return False
            return True
        return False

    # ------------------------------------------------------------------
    # Infix folding.

    def _infix_token(self) -> Optional[Tuple[str, int]]:
        """If the next token can act as an infix operator, (name, priority)."""
        token = self._peek()
        if token.kind == "punct" and token.value == ",":
            return (",", 1000)
        if token.kind == "punct" and token.value == "|":
            # DEC-10 style: ``|`` as an alternative to ``;`` in bodies.
            return (";", 1100)
        if token.kind == "atom":
            name = str(token.value)
            definition = self.operators.infix(name)
            if definition is not None:
                return (name, definition.priority)
        return None

    def _parse_infix_loop(
        self, left: Term, left_priority: int, max_priority: int
    ) -> Tuple[Term, int]:
        while True:
            ahead = self._infix_token()
            if ahead is None:
                return left, left_priority
            name, priority = ahead
            if name == ",":
                definition = self.operators.infix(",")
            elif name == ";" and self._peek().kind == "punct":
                definition = self.operators.infix(";")
            else:
                definition = self.operators.infix(name)
            assert definition is not None
            if definition.priority > max_priority:
                return left, left_priority
            left_max, right_max = definition.argument_priorities()
            if left_priority > left_max:
                return left, left_priority
            self._next()
            right = self.parse(right_max)
            left = Struct(name, (left, right))
            left_priority = definition.priority


def parse_term(
    text: str, operators: Optional[OperatorTable] = None
) -> Term:
    """Parse a single term from ``text`` (with or without a trailing dot)."""
    parser = Parser(tokenize(text), operators)
    term = parser.parse(MAX_PRIORITY)
    token = parser._next()
    if token.kind not in ("end", "eof"):
        raise PrologSyntaxError(
            f"trailing input after term: {token}", token.line, token.column
        )
    return term


def parse_term_with_vars(
    text: str, operators: Optional[OperatorTable] = None
) -> Tuple[Term, Dict[str, Var]]:
    """Like :func:`parse_term` but also return the name → variable map."""
    parser = Parser(tokenize(text), operators)
    term = parser.parse(MAX_PRIORITY)
    token = parser._next()
    if token.kind not in ("end", "eof"):
        raise PrologSyntaxError(
            f"trailing input after term: {token}", token.line, token.column
        )
    return term, dict(parser.var_map)


def _apply_directive(term: Term, operators: OperatorTable) -> bool:
    """Apply ``:- op/3`` directives; True if one was applied."""
    if not (isinstance(term, Struct) and term.name == ":-" and term.arity == 1):
        return False
    body = term.args[0]
    if not (isinstance(body, Struct) and body.name == "op" and body.arity == 3):
        return False
    from .terms import is_proper_list, list_elements

    priority, kind, names = body.args
    if not isinstance(priority, Int) or not isinstance(kind, Atom):
        raise PrologSyntaxError("malformed op/3 directive")
    if is_proper_list(names):
        name_terms, _ = list_elements(names)
    else:
        name_terms = [names]
    for name_term in name_terms:
        if not isinstance(name_term, Atom):
            raise PrologSyntaxError("op/3 name must be an atom")
        operators.add(priority.value, kind.name, name_term.name)
    return True


def read_terms(
    text: str, operators: Optional[OperatorTable] = None
) -> List[Term]:
    """Read all clause terms from a program text.

    ``:- op/3`` directives take effect immediately and are *not* returned;
    other directives are returned as ``:-/1`` terms for the caller.
    """
    return [term for term, _ in read_terms_with_positions(text, operators)]


def read_terms_with_positions(
    text: str, operators: Optional[OperatorTable] = None
) -> List[Tuple[Term, Tuple[int, int]]]:
    """Like :func:`read_terms`, pairing each term with its (line, column).

    The position is that of the first token of the clause, which is what
    diagnostics want to point at.
    """
    table = operators if operators is not None else OperatorTable()
    parser = Parser(tokenize(text), table)
    result: List[Tuple[Term, Tuple[int, int]]] = []
    while True:
        term = parser.read_clause_term()
        if term is None:
            return result
        if not _apply_directive(term, table):
            assert parser.clause_position is not None
            result.append((term, parser.clause_position))


def read_terms_with_recovery(
    text: str, operators: Optional[OperatorTable] = None
) -> Tuple[List[Tuple[Term, Tuple[int, int]]], List[PrologSyntaxError]]:
    """Fault-tolerant :func:`read_terms_with_positions`.

    On a syntax error the parser resynchronizes at the next clause
    terminator (``.``) and keeps reading, so *all* malformed clauses are
    diagnosed in one pass instead of stopping at the first.  Returns the
    well-formed ``(term, (line, column))`` pairs plus every collected
    error, in source order.

    Lexical errors (unterminated quotes/comments, bad escapes) abort
    tokenization itself, so they cannot be resynchronized: the single
    error is returned with no terms.
    """
    table = operators if operators is not None else OperatorTable()
    errors: List[PrologSyntaxError] = []
    try:
        tokens = tokenize(text)
    except PrologSyntaxError as exc:
        return [], [exc]
    parser = Parser(tokens, table)
    result: List[Tuple[Term, Tuple[int, int]]] = []
    while True:
        try:
            term = parser.read_clause_term()
            if term is None:
                return result, errors
            if not _apply_directive(term, table):
                assert parser.clause_position is not None
                result.append((term, parser.clause_position))
        except PrologSyntaxError as exc:
            errors.append(exc)
            parser.skip_to_clause_end()
