"""Clause-level program representation shared by the solver, the WAM
compiler and the analyzers.

A :class:`Clause` is a head plus a flat list of body goals (the comma
conjunction is flattened; ``true`` bodies become the empty list).  A
:class:`Program` groups clauses into :class:`Predicate` objects by functor
indicator, preserving clause order.

:func:`normalize_program` rewrites the control constructs that the WAM
compiler does not handle directly — disjunction ``;/2``, if-then-else
``-> ;``, and negation-as-failure ``\\+/1`` — into auxiliary predicates
with cut, which is the classic source-to-source preprocessing used by WAM
compilers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import PrologSyntaxError
from .operators import OperatorTable
from .terms import (
    FAIL,
    TRUE,
    Atom,
    Indicator,
    Struct,
    Term,
    Var,
    format_indicator,
    indicator_of,
    rename_term,
)


def flatten_conjunction(term: Term) -> List[Term]:
    """Flatten nested ``,/2`` into a goal list; ``true`` vanishes."""
    goals: List[Term] = []
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Struct) and current.name == "," and current.arity == 2:
            stack.append(current.args[1])
            stack.append(current.args[0])
        elif current == TRUE:
            continue
        else:
            goals.append(current)
    return goals


@dataclass
class Clause:
    """One program clause ``head :- goal1, ..., goaln``.

    ``position`` is the (line, column) of the clause's first token in the
    source text, or None for clauses built programmatically; diagnostics
    print ``?:?`` in the latter case.
    """

    head: Term
    body: List[Term] = field(default_factory=list)
    position: Optional[Tuple[int, int]] = None

    @property
    def indicator(self) -> Indicator:
        return indicator_of(self.head)

    @property
    def position_text(self) -> str:
        """``line:column`` of the clause, or ``?:?`` when unknown."""
        if self.position is None:
            return "?:?"
        return f"{self.position[0]}:{self.position[1]}"

    def rename(self) -> "Clause":
        """A copy with fresh variables (used at each resolution step)."""
        mapping: Dict[int, Var] = {}
        head = rename_term(self.head, mapping)
        body = [rename_term(goal, mapping) for goal in self.body]
        return Clause(head, body, position=self.position)

    def to_term(self) -> Term:
        """Back to a single ``:-/2`` term (or the bare head for facts)."""
        if not self.body:
            return self.head
        body: Term = self.body[-1]
        for goal in reversed(self.body[:-1]):
            body = Struct(",", (goal, body))
        return Struct(":-", (self.head, body))

    @staticmethod
    def from_term(
        term: Term, position: Optional[Tuple[int, int]] = None
    ) -> "Clause":
        """Build a clause from a parsed ``:-/2`` term or a fact."""
        if isinstance(term, Struct) and term.name == ":-" and term.arity == 2:
            head, body = term.args
        else:
            head, body = term, TRUE
        if not head.is_callable():
            raise PrologSyntaxError(f"clause head is not callable: {head}")
        return Clause(head, flatten_conjunction(body), position=position)

    def __str__(self) -> str:
        from .writer import term_to_text

        return term_to_text(self.to_term()) + "."


@dataclass
class Predicate:
    """All clauses for one functor indicator, in source order."""

    indicator: Indicator
    clauses: List[Clause] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.indicator[0]

    @property
    def arity(self) -> int:
        return self.indicator[1]

    def __str__(self) -> str:
        return format_indicator(self.indicator)


class Program:
    """An ordered collection of predicates plus non-op directives."""

    def __init__(self, operators: Optional[OperatorTable] = None):
        self.predicates: Dict[Indicator, Predicate] = {}
        self.directives: List[Term] = []
        self.operators = operators if operators is not None else OperatorTable()

    # ------------------------------------------------------------------

    def add_clause(self, clause: Clause) -> None:
        indicator = clause.indicator
        predicate = self.predicates.get(indicator)
        if predicate is None:
            predicate = Predicate(indicator)
            self.predicates[indicator] = predicate
        predicate.clauses.append(clause)

    def add_term(
        self, term: Term, position: Optional[Tuple[int, int]] = None
    ) -> None:
        if isinstance(term, Struct) and term.name == ":-" and term.arity == 1:
            self.directives.append(term.args[0])
            return
        if isinstance(term, Struct) and term.indicator == ("-->", 2):
            from .dcg import translate_dcg

            clause = translate_dcg(term)
            clause.position = position
            self.add_clause(clause)
            return
        self.add_clause(Clause.from_term(term, position=position))

    def predicate(self, indicator: Indicator) -> Optional[Predicate]:
        return self.predicates.get(indicator)

    def clauses(self, indicator: Indicator) -> List[Clause]:
        predicate = self.predicates.get(indicator)
        return predicate.clauses if predicate is not None else []

    def indicators(self) -> List[Indicator]:
        return list(self.predicates.keys())

    def clause_count(self) -> int:
        return sum(len(p.clauses) for p in self.predicates.values())

    # ------------------------------------------------------------------

    @staticmethod
    def from_text(text: str) -> "Program":
        """Parse a whole program text (clauses and directives)."""
        from .parser import read_terms_with_positions

        operators = OperatorTable()
        program = Program(operators)
        for term, position in read_terms_with_positions(text, operators):
            program.add_term(term, position=position)
        return program

    @staticmethod
    def from_text_with_recovery(
        text: str,
    ) -> Tuple["Program", List[PrologSyntaxError]]:
        """Fault-tolerant :meth:`from_text`: parse what parses, collect
        every syntax error instead of stopping at the first.

        The parser resynchronizes after each error at the next clause
        terminator (``.``); malformed clause *heads* are likewise
        skipped.  Returns the program built from the well-formed clauses
        plus the errors in source order — callers decide whether a
        non-empty error list is fatal.
        """
        from .parser import read_terms_with_recovery

        program = Program(OperatorTable())
        terms, errors = read_terms_with_recovery(text, program.operators)
        for term, position in terms:
            try:
                program.add_term(term, position=position)
            except PrologSyntaxError as exc:
                if not exc.line and position is not None:
                    exc = PrologSyntaxError(str(exc), *position)
                errors.append(exc)
        errors.sort(key=lambda e: (e.line, e.column))
        return program, errors

    def to_text(self) -> str:
        from .writer import term_to_text

        lines: List[str] = []
        for directive in self.directives:
            lines.append(":- " + term_to_text(directive) + ".")
        for predicate in self.predicates.values():
            for clause in predicate.clauses:
                lines.append(str(clause))
            lines.append("")
        return "\n".join(lines)

    def __str__(self) -> str:
        names = ", ".join(format_indicator(i) for i in self.predicates)
        return f"Program({names})"


# ----------------------------------------------------------------------
# Normalization of control constructs.

_CONTROL_INDICATORS = {(";", 2), ("->", 2), ("\\+", 1)}


def _contains_control(goal: Term) -> bool:
    if isinstance(goal, Struct):
        return goal.indicator in _CONTROL_INDICATORS
    return False


class _Normalizer:
    """Rewrites control constructs into auxiliary predicates."""

    def __init__(self, program: Program):
        self.source = program
        self.result = Program(program.operators)
        self.result.directives = list(program.directives)
        self.counter = 0
        #: position of the clause being rewritten; auxiliary predicates
        #: synthesized from its control constructs inherit it.
        self.position: Optional[Tuple[int, int]] = None

    def run(self) -> Program:
        for predicate in self.source.predicates.values():
            for clause in predicate.clauses:
                self.position = clause.position
                body = [self._normalize_goal(g) for g in clause.body]
                self.result.add_clause(
                    Clause(clause.head, body, position=clause.position)
                )
        return self.result

    def _fresh_name(self, hint: str) -> str:
        self.counter += 1
        return f"${hint}_{self.counter}"

    def _aux_head(self, hint: str, variables: List[Var]) -> Term:
        name = self._fresh_name(hint)
        if not variables:
            return Atom(name)
        return Struct(name, tuple(variables))

    def _normalize_goal(self, goal: Term) -> Term:
        if not _contains_control(goal):
            return goal
        assert isinstance(goal, Struct)
        from .terms import term_vars

        if goal.indicator == ("\\+", 1):
            inner = goal.args[0]
            variables = term_vars(inner)
            head = self._aux_head("not", variables)
            body_goal = self._normalize_goal(inner)
            self.result.add_clause(
                Clause(
                    head,
                    flatten_conjunction(body_goal) + [Atom("!"), FAIL],
                    position=self.position,
                )
            )
            self.result.add_clause(Clause.from_term(head, position=self.position))
            return head
        if goal.indicator == (";", 2):
            left, right = goal.args
            variables = term_vars(goal)
            head = self._aux_head("or", variables)
            if isinstance(left, Struct) and left.indicator == ("->", 2):
                condition, then_part = left.args
                self.result.add_clause(
                    Clause(
                        head,
                        flatten_conjunction(self._normalize_goal(condition))
                        + [Atom("!")]
                        + flatten_conjunction(self._normalize_goal(then_part)),
                        position=self.position,
                    )
                )
                self.result.add_clause(
                    Clause(
                        head,
                        flatten_conjunction(self._normalize_goal(right)),
                        position=self.position,
                    )
                )
            else:
                for branch in (left, right):
                    self.result.add_clause(
                        Clause(
                            head,
                            flatten_conjunction(self._normalize_goal(branch)),
                            position=self.position,
                        )
                    )
            return head
        if goal.indicator == ("->", 2):
            # A bare if-then is (C -> T ; fail).
            return self._normalize_goal(Struct(";", (goal, FAIL)))
        return goal


def normalize_program(program: Program) -> Program:
    """Rewrite ``;``, ``->`` and ``\\+`` into auxiliary predicates with cut.

    The returned program contains only conjunction, cut and plain goals, so
    the WAM compiler and the analyzers need no special control handling.
    """
    return _Normalizer(program).run()
