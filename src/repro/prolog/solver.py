"""An SLD-resolution interpreter over AST terms.

This is the reference Prolog engine of the library.  It serves three
roles: an oracle the concrete WAM is tested against, the execution engine
for the program-transformation baseline analyzer, and a straightforward way
to run small programs in examples.

Execution is top-down, depth-first, with a binding trail for backtracking
and proper cut semantics: each predicate invocation opens a *cut barrier*;
executing ``!`` commits to the bindings and clause choices made since that
barrier.  Cut is implemented by converting ``!`` atoms in a renamed clause
body into barrier tokens and unwinding with a targeted exception.

Builtins are provided by :mod:`repro.prolog.builtins`; extra builtins can
be registered per solver, which the transformation baseline uses to install
its extension-table primitives.
"""

from __future__ import annotations

import itertools
import sys
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: Deep conjunctions build deep generator chains; Python's default limit
#: of 1000 is far too small for meta-level programs (see PrologAnalyzer).
_MIN_RECURSION_LIMIT = 100_000


def _ensure_recursion_limit(minimum: int = _MIN_RECURSION_LIMIT) -> None:
    """Raise the process-wide recursion limit to at least ``minimum``.

    SIDE EFFECT: ``sys.setrecursionlimit`` is process-global and this
    deliberately leaks past the Solver's lifetime — shrinking it back
    could break concurrently-running solvers, and re-raising it is
    idempotent.  The guard only ever *raises* the limit, so constructing
    a Solver after the embedding application chose a higher limit never
    lowers it.
    """
    if sys.getrecursionlimit() < minimum:
        sys.setrecursionlimit(minimum)


from ..errors import PrologError
from .program import Clause, Program
from .terms import (
    Atom,
    Float,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    format_indicator,
    indicator_of,
    rename_term,
    term_vars,
)

CUT_ATOM = Atom("!")

#: Control constructs the solver interprets natively.
_CONTROL = frozenset([(",", 2), (";", 2), ("->", 2), ("\\+", 1)])


class _CutToken:
    """A cut belonging to the predicate frame ``frame``."""

    __slots__ = ("frame",)

    def __init__(self, frame: int):
        self.frame = frame


class _CutSignal(Exception):
    """Raised when backtracking crosses a cut; unwinds to its frame."""

    def __init__(self, frame: int):
        self.frame = frame
        super().__init__(f"cut to frame {frame}")


GoalItem = object  # Term or _CutToken
BuiltinFn = Callable[["Solver", Tuple[Term, ...], int], Iterator[None]]


class Bindings:
    """Variable bindings with a trail for chronological backtracking."""

    def __init__(self) -> None:
        self._map: Dict[Var, Term] = {}
        self._trail: List[Var] = []

    def mark(self) -> int:
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            variable = self._trail.pop()
            del self._map[variable]

    def bind(self, variable: Var, value: Term) -> None:
        self._map[variable] = value
        self._trail.append(variable)

    def walk(self, term: Term) -> Term:
        """Follow variable bindings to the representative term (shallow)."""
        while isinstance(term, Var):
            bound = self._map.get(term)
            if bound is None:
                return term
            term = bound
        return term

    def resolve(self, term: Term) -> Term:
        """Deep copy of ``term`` with all bound variables substituted."""
        term = self.walk(term)
        if isinstance(term, Struct):
            return Struct(term.name, tuple(self.resolve(a) for a in term.args))
        return term

    def __len__(self) -> int:
        return len(self._map)


def unify(left: Term, right: Term, bindings: Bindings) -> bool:
    """Unify two terms, extending ``bindings``; no occurs check."""
    stack: List[Tuple[Term, Term]] = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = bindings.walk(a)
        b = bindings.walk(b)
        if a is b:
            continue
        if isinstance(a, Var):
            bindings.bind(a, b)
            continue
        if isinstance(b, Var):
            bindings.bind(b, a)
            continue
        if isinstance(a, Atom) and isinstance(b, Atom):
            if a.name != b.name:
                return False
            continue
        if isinstance(a, Int) and isinstance(b, Int):
            if a.value != b.value:
                return False
            continue
        if isinstance(a, Float) and isinstance(b, Float):
            if a.value != b.value:
                return False
            continue
        if isinstance(a, Struct) and isinstance(b, Struct):
            if a.name != b.name or len(a.args) != len(b.args):
                return False
            stack.extend(zip(a.args, b.args))
            continue
        return False
    return True


def _term_order_key(term: Term, bindings: Bindings):
    """Key for the standard order of terms: Var < Number < Atom < Struct."""
    term = bindings.walk(term)
    if isinstance(term, Var):
        return (0, term.ordinal)
    if isinstance(term, (Int, Float)):
        return (1, term.value)
    if isinstance(term, Atom):
        return (2, term.name)
    assert isinstance(term, Struct)
    return (3, len(term.args), term.name)


def compare_terms(left: Term, right: Term, bindings: Bindings) -> int:
    """Three-way comparison in the standard order of terms."""
    left = bindings.walk(left)
    right = bindings.walk(right)
    key_left = _term_order_key(left, bindings)
    key_right = _term_order_key(right, bindings)
    if key_left < key_right:
        return -1
    if key_left > key_right:
        return 1
    if isinstance(left, Struct) and isinstance(right, Struct):
        for a, b in zip(left.args, right.args):
            result = compare_terms(a, b, bindings)
            if result != 0:
                return result
    return 0


class Solver:
    """Depth-first SLD resolution over a :class:`Program`."""

    def __init__(
        self,
        program: Program,
        max_steps: int = 10_000_000,
        trace: bool = False,
        budget=None,
        max_depth: Optional[int] = None,
    ):
        from .builtins import STANDARD_BUILTINS

        _ensure_recursion_limit()
        self.program = program
        self.bindings = Bindings()
        self.builtins: Dict[Indicator, BuiltinFn] = dict(STANDARD_BUILTINS)
        self.max_steps = max_steps
        #: Optional cap on predicate-call nesting.  The resolution core
        #: is a chain of generators, so call depth costs C stack on
        #: every resume: past a few thousand levels CPython dies on a
        #: stack overflow *before* RecursionError can fire (the guard
        #: above raises the recursion limit).  Untrusted/fuzzed
        #: programs should set this; it raises the same resource_error
        #: as the step limit.
        self.max_depth = max_depth
        self.steps = 0
        self.trace = trace
        self.output: List[str] = []
        #: Optional repro.robust.Budget whose armed *deadline* the
        #: resolution loop probes every 2048 steps (other dimensions are
        #: analysis-side; the solver keeps its own max_steps).
        self.budget = budget
        self._frame_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Public API.

    def register_builtin(self, indicator: Indicator, function: BuiltinFn) -> None:
        """Install or replace a builtin (used by the transform baseline)."""
        self.builtins[indicator] = function

    def solve(self, goal: Term) -> Iterator[Dict[str, Term]]:
        """Yield solutions of ``goal`` as name → resolved-term maps."""
        variables = [v for v in term_vars(goal) if v.name and v.name != "_"]
        for _ in self._solve([goal], 0):
            yield {v.name: self.bindings.resolve(v) for v in variables}

    def solve_once(self, goal: Term) -> Optional[Dict[str, Term]]:
        """First solution of ``goal``, or None if it fails."""
        for solution in self.solve(goal):
            return solution
        return None

    def count_solutions(self, goal: Term, limit: int = 1_000_000) -> int:
        count = 0
        for _ in self.solve(goal):
            count += 1
            if count >= limit:
                break
        return count

    # ------------------------------------------------------------------
    # The resolution core.

    def _solve(self, goals: Sequence[GoalItem], depth: int) -> Iterator[None]:
        if not goals:
            yield
            return
        self.steps += 1
        if self.steps > self.max_steps:
            raise PrologError("resource_error", "step limit exceeded")
        if self.budget is not None and not (self.steps & 2047):
            self.budget.check_deadline()
        goal, rest = goals[0], goals[1:]
        if isinstance(goal, _CutToken):
            yield from self._solve(rest, depth)
            raise _CutSignal(goal.frame)
        assert isinstance(goal, Term)
        goal = self.bindings.walk(goal)
        if isinstance(goal, Var):
            raise PrologError("instantiation_error", "unbound goal")
        if not goal.is_callable():
            raise PrologError("type_error", f"goal is not callable: {goal}")
        if goal == CUT_ATOM:
            # A cut with no enclosing user predicate (e.g. in a query):
            # behaves as true.
            yield from self._solve(rest, depth)
            return
        indicator = indicator_of(goal)
        if indicator in _CONTROL:
            yield from self._solve_control(goal, indicator, rest, depth)
            return
        builtin = self.builtins.get(indicator)
        if builtin is not None:
            yield from self._call_builtin(builtin, goal, rest, depth)
            return
        yield from self._call_predicate(goal, indicator, rest, depth)

    def _solve_control(
        self,
        goal: Struct,
        indicator: Indicator,
        rest: Sequence[GoalItem],
        depth: int,
    ) -> Iterator[None]:
        """Conjunction, disjunction, if-then-else and negation as failure."""
        if indicator == (",", 2):
            yield from self._solve(
                [goal.args[0], goal.args[1]] + list(rest), depth
            )
            return
        if indicator == ("\\+", 1):
            mark = self.bindings.mark()
            succeeded = False
            for _ in self._solve([goal.args[0]], depth + 1):
                succeeded = True
                break
            self.bindings.undo_to(mark)
            if not succeeded:
                yield from self._solve(rest, depth)
            return
        if indicator == ("->", 2):
            goal = Struct(";", (goal, Atom("fail")))
        left, right = goal.args
        left = self.bindings.walk(left)
        if isinstance(left, Struct) and left.indicator == ("->", 2):
            condition, then_branch = left.args
            mark = self.bindings.mark()
            committed = False
            for _ in self._solve([condition], depth + 1):
                committed = True
                break  # commit to the first condition solution
            if committed:
                yield from self._solve([then_branch] + list(rest), depth)
                return
            self.bindings.undo_to(mark)
            yield from self._solve([right] + list(rest), depth)
            return
        mark = self.bindings.mark()
        yield from self._solve([left] + list(rest), depth)
        self.bindings.undo_to(mark)
        yield from self._solve([right] + list(rest), depth)

    def _call_builtin(
        self,
        builtin: BuiltinFn,
        goal: Term,
        rest: Sequence[GoalItem],
        depth: int,
    ) -> Iterator[None]:
        args = goal.args if isinstance(goal, Struct) else ()
        mark = self.bindings.mark()
        try:
            for _ in builtin(self, args, depth):
                yield from self._solve(rest, depth)
                # Builtins may leave different bindings per solution; undo
                # between alternatives happens inside the builtin itself.
        finally:
            pass
        self.bindings.undo_to(mark)

    def _call_predicate(
        self,
        goal: Term,
        indicator: Indicator,
        rest: Sequence[GoalItem],
        depth: int,
    ) -> Iterator[None]:
        predicate = self.program.predicate(indicator)
        if predicate is None:
            raise PrologError(
                "existence_error",
                f"unknown predicate {format_indicator(indicator)}",
            )
        if self.max_depth is not None and depth >= self.max_depth:
            raise PrologError("resource_error", "depth limit exceeded")
        frame = next(self._frame_counter)
        entry_mark = self.bindings.mark()
        if self.trace:
            printed = self.bindings.resolve(goal)
            self.output.append("  " * depth + f"call {printed}")
        try:
            for clause in predicate.clauses:
                mark = self.bindings.mark()
                renamed = clause.rename()
                if unify(goal, renamed.head, self.bindings):
                    body: List[GoalItem] = [
                        _CutToken(frame) if g == CUT_ATOM else g
                        for g in renamed.body
                    ]
                    yield from self._solve(list(body) + list(rest), depth + 1)
                self.bindings.undo_to(mark)
        except _CutSignal as signal:
            self.bindings.undo_to(entry_mark)
            if signal.frame != frame:
                raise
