"""The Prolog term model.

Terms are immutable AST values (except :class:`Var`, which has identity):

* :class:`Atom` — symbolic constants, including ``[]`` and ``{}``;
* :class:`Int` and :class:`Float` — numbers;
* :class:`Var` — logic variables, compared by identity;
* :class:`Struct` — compound terms ``f(t1, ..., tn)`` with n >= 1.

Lists are ordinary structures with functor ``'.'/2`` terminated by the atom
``[]``, exactly as in the WAM.  Helpers at the bottom of the module build
and take apart lists, enumerate variables, and compute functor indicators.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union


class Term:
    """Base class for all Prolog terms."""

    __slots__ = ()

    def is_callable(self) -> bool:
        """True for atoms and structures (terms usable as goals)."""
        return isinstance(self, (Atom, Struct))


class Atom(Term):
    """A symbolic constant such as ``foo``, ``[]`` or ``'hello world'``."""

    __slots__ = ("name",)

    _interned: Dict[str, "Atom"] = {}

    def __new__(cls, name: str) -> "Atom":
        cached = cls._interned.get(name)
        if cached is not None:
            return cached
        atom = super().__new__(cls)
        object.__setattr__(atom, "name", name)
        if len(cls._interned) < 65536:
            cls._interned[name] = atom
        return atom

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Atom", self.name))


class Int(Term):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        object.__setattr__(self, "value", int(value))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Int is immutable")

    def __repr__(self) -> str:
        return f"Int({self.value})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Int) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Int", self.value))


class Float(Term):
    """A floating point constant."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        object.__setattr__(self, "value", float(value))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Float is immutable")

    def __repr__(self) -> str:
        return f"Float({self.value})"

    def __str__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Float) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Float", self.value))


_var_counter = itertools.count(1)


class Var(Term):
    """A logic variable.

    Variables compare and hash by identity: two ``Var("X")`` objects are
    different variables that happen to share a print name.  ``name`` may be
    None for machine-generated variables; ``str`` then shows ``_G<n>``.
    """

    __slots__ = ("name", "ordinal")

    def __init__(self, name: Optional[str] = None):
        self.name = name
        self.ordinal = next(_var_counter)

    def __repr__(self) -> str:
        return f"Var({str(self)})"

    def __str__(self) -> str:
        if self.name is not None:
            return self.name
        return f"_G{self.ordinal}"


class Struct(Term):
    """A compound term ``name(arg1, ..., argn)`` with at least one argument."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Iterable[Term]):
        arg_tuple = tuple(args)
        if not arg_tuple:
            raise ValueError("Struct needs at least one argument; use Atom")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", arg_tuple)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Struct is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The functor indicator ``(name, arity)``."""
        return (self.name, len(self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"Struct({self.name!r}, [{inner}])"

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Struct)
            and other.name == self.name
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("Struct", self.name, self.args))


# Well-known atoms.
NIL = Atom("[]")
TRUE = Atom("true")
FAIL = Atom("fail")
CURLY = Atom("{}")

#: Functor of list cells.
CONS = "."

Indicator = Tuple[str, int]
Number = Union[Int, Float]


def cons(head: Term, tail: Term) -> Struct:
    """Build one list cell ``'.'(head, tail)``."""
    return Struct(CONS, (head, tail))


def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build the list ``[i1, i2, ... | tail]``."""
    result = tail
    for item in reversed(list(items)):
        result = cons(item, result)
    return result


def is_cons(term: Term) -> bool:
    """True for a list cell ``'.'/2``."""
    return isinstance(term, Struct) and term.name == CONS and len(term.args) == 2


def list_elements(term: Term) -> Tuple[List[Term], Term]:
    """Split a (possibly improper) list into ``(elements, tail)``.

    A proper list yields ``(elements, NIL)``; a partial list yields the
    variable or other term in tail position.
    """
    elements: List[Term] = []
    while is_cons(term):
        assert isinstance(term, Struct)
        elements.append(term.args[0])
        term = term.args[1]
    return elements, term


def is_proper_list(term: Term) -> bool:
    """True if ``term`` is a nil-terminated list at the AST level."""
    _, tail = list_elements(term)
    return tail == NIL


def indicator_of(term: Term) -> Indicator:
    """Functor indicator of a callable term (atom arity 0, struct name/arity)."""
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Struct):
        return term.indicator
    raise TypeError(f"not a callable term: {term!r}")


def format_indicator(indicator: Indicator) -> str:
    """Render ``(name, arity)`` in the traditional ``name/arity`` form."""
    name, arity = indicator
    return f"{name}/{arity}"


def term_vars(term: Term) -> List[Var]:
    """All distinct variables in ``term`` in first-occurrence order."""
    seen: List[Var] = []
    seen_ids = set()
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            if id(current) not in seen_ids:
                seen_ids.add(id(current))
                seen.append(current)
        elif isinstance(current, Struct):
            stack.extend(reversed(current.args))
    return seen


def rename_term(term: Term, mapping: Dict[int, Var]) -> Term:
    """Copy ``term`` replacing variables via ``mapping`` (keyed by ``id``).

    Unmapped variables get fresh replacements which are added to the
    mapping, so repeated calls with one mapping rename consistently.
    """
    if isinstance(term, Var):
        replacement = mapping.get(id(term))
        if replacement is None:
            replacement = Var(term.name)
            mapping[id(term)] = replacement
        return replacement
    if isinstance(term, Struct):
        return Struct(term.name, tuple(rename_term(a, mapping) for a in term.args))
    return term


def term_size(term: Term) -> int:
    """Number of nodes in the term tree (constants and variables count 1)."""
    if isinstance(term, Struct):
        return 1 + sum(term_size(a) for a in term.args)
    return 1


def term_depth(term: Term) -> int:
    """Depth of the term tree; constants and variables have depth 1."""
    if isinstance(term, Struct):
        return 1 + max(term_depth(a) for a in term.args)
    return 1


def iter_subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and every subterm, preorder."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Struct):
            stack.extend(reversed(current.args))


def is_ground(term: Term) -> bool:
    """True if the term contains no variables."""
    return not any(isinstance(sub, Var) for sub in iter_subterms(term))
