"""Tokenizer for Prolog source text.

Produces a stream of :class:`Token` objects for the operator-precedence
parser.  The token classes follow the standard Prolog lexical conventions:

* unquoted atoms (``foo``), quoted atoms (``'hello world'``), and symbolic
  atoms made of the symbol characters ``+-*/\\^<>=~:.?@#&$``;
* variables (``X``, ``_foo``, ``_``);
* integers (decimal, ``0x``/``0o``/``0b`` radix forms, ``0'c`` character
  codes) and floats (``1.5``, ``2.0e3``);
* double-quoted strings (tokenized whole; the parser turns them into code
  lists);
* punctuation ``( ) [ ] { } , |`` and the clause-terminating end token
  ``.`` (a dot followed by layout or end of input);
* ``%`` line comments and ``/* ... */`` block comments, which are skipped.

An atom token directly followed by ``(`` (no layout between) is marked
``functor=True`` — the parser needs that distinction to tell ``f(a)`` from
``f (a)`` per the standard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..errors import PrologSyntaxError

#: Characters that form symbolic atoms such as ``:-`` and ``=..``.
SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")

#: Solo characters: each is an atom on its own.
SOLO_CHARS = set("!;")

PUNCT_CHARS = set("()[]{},|")


@dataclass
class Token:
    """One lexical token.

    ``kind`` is one of ``atom``, ``var``, ``int``, ``float``, ``string``,
    ``punct``, ``end`` and ``eof``; ``value`` holds the text or number.
    """

    kind: str
    value: Union[str, int, float]
    line: int
    column: int
    functor: bool = field(default=False)

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})"


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "`": "`",
    "0": "\0",
}


class Tokenizer:
    """Converts Prolog source text to a list of tokens."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    # Low-level character handling.

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str) -> PrologSyntaxError:
        return PrologSyntaxError(message, self.line, self.column)

    # ------------------------------------------------------------------
    # Layout and comments.

    def _skip_layout(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "%":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while True:
                    if not self._peek():
                        raise self._error("unterminated block comment")
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
            else:
                return

    # ------------------------------------------------------------------
    # Token scanners.

    def tokens(self) -> List[Token]:
        """Tokenize the whole text, ending with a single ``eof`` token."""
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind == "eof":
                return result

    def next_token(self) -> Token:
        self._skip_layout()
        line, column = self.line, self.column
        ch = self._peek()
        if not ch:
            return Token("eof", "", line, column)
        if ch == ".":
            follower = self._peek(1)
            if follower == "" or follower in " \t\r\n%":
                self._advance()
                return Token("end", ".", line, column)
        if ch in PUNCT_CHARS:
            self._advance()
            return Token("punct", ch, line, column)
        if ch.isdigit():
            return self._scan_number(line, column)
        if ch == "_" or ch.isalpha():
            return self._scan_name(line, column)
        if ch == "'":
            return self._scan_quoted_atom(line, column)
        if ch == '"':
            return self._scan_string(line, column)
        if ch in SOLO_CHARS:
            self._advance()
            return self._atom_token(ch, line, column)
        if ch in SYMBOL_CHARS:
            return self._scan_symbol(line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _atom_token(self, name: str, line: int, column: int) -> Token:
        functor = self._peek() == "("
        return Token("atom", name, line, column, functor=functor)

    def _scan_name(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        name = self.text[start:self.pos]
        if name[0] == "_" or name[0].isupper():
            return Token("var", name, line, column)
        return self._atom_token(name, line, column)

    def _scan_symbol(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek() in SYMBOL_CHARS:
            self._advance()
        return self._atom_token(self.text[start:self.pos], line, column)

    def _scan_number(self, line: int, column: int) -> Token:
        if self._peek() == "0" and self._peek(1) == "'":
            self._advance(2)
            return Token("int", ord(self._scan_char("'")), line, column)
        if self._peek() == "0" and self._peek(1) in ("x", "o", "b"):
            base = {"x": 16, "o": 8, "b": 2}[self._peek(1)]
            digits = {16: "0123456789abcdefABCDEF", 8: "01234567", 2: "01"}[base]
            self._advance(2)
            start = self.pos
            while self._peek() and self._peek() in digits:
                self._advance()
            if start == self.pos:
                raise self._error("missing digits after radix prefix")
            return Token("int", int(self.text[start:self.pos], base), line, column)
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE":
            mark = self.pos
            self._advance()
            if self._peek() in "+-":
                self._advance()
            if self._peek().isdigit():
                is_float = True
                while self._peek().isdigit():
                    self._advance()
            else:
                # Not an exponent after all (e.g. ``2e`` in ``X is 2*e``).
                self.pos = mark
        text = self.text[start:self.pos]
        if is_float:
            return Token("float", float(text), line, column)
        return Token("int", int(text), line, column)

    def _scan_char(self, quote: str) -> str:
        """Read one (possibly escaped) character inside a quoted token."""
        ch = self._peek()
        if not ch:
            raise self._error("unterminated quoted token")
        if ch == "\\":
            self._advance()
            esc = self._peek()
            if esc == "x":
                self._advance()
                start = self.pos
                while self._peek() in "0123456789abcdefABCDEF":
                    self._advance()
                code = int(self.text[start:self.pos], 16)
                if self._peek() == "\\":
                    self._advance()
                return chr(code)
            if esc in _ESCAPES:
                self._advance()
                return _ESCAPES[esc]
            raise self._error(f"unknown escape \\{esc}")
        if ch == quote and self._peek(1) == quote:
            self._advance(2)
            return quote
        self._advance()
        return ch

    def _scan_quoted(self, quote: str) -> str:
        assert self._peek() == quote
        self._advance()
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated quoted token")
            if ch == quote:
                if self._peek(1) == quote:
                    chars.append(self._scan_char(quote))
                    continue
                self._advance()
                return "".join(chars)
            chars.append(self._scan_char(quote))

    def _scan_quoted_atom(self, line: int, column: int) -> Token:
        name = self._scan_quoted("'")
        return self._atom_token(name, line, column)

    def _scan_string(self, line: int, column: int) -> Token:
        text = self._scan_quoted('"')
        return Token("string", text, line, column)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list ending with an ``eof`` token."""
    return Tokenizer(text).tokens()
