"""Operator-aware term output (``write``/``writeq`` equivalents).

:func:`term_to_text` renders a term back into Prolog syntax: lists print in
``[a, b | T]`` notation, operator structures use infix/prefix form with the
minimum necessary parentheses, and with ``quoted=True`` atoms that need
quotes get them.  ``parse_term(term_to_text(t, quoted=True))`` round-trips
for tree-equal terms (variables rename).
"""

from __future__ import annotations

from typing import Optional

from .operators import MAX_PRIORITY, OperatorTable
from .terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
    is_cons,
)

_DEFAULT_OPERATORS = OperatorTable()

_UNQUOTED_SYMBOLIC = set("+-*/\\^<>=~:.?@#&$")


def atom_needs_quotes(name: str) -> bool:
    """True if ``name`` must be quoted to read back as the same atom."""
    if name == "":
        return True
    if name in ("[]", "{}", "!", ";", ","):
        return name == ","
    if name[0].islower() and all(ch.isalnum() or ch == "_" for ch in name):
        return False
    if all(ch in _UNQUOTED_SYMBOLIC for ch in name):
        return False
    return True


def _quote_atom(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f"'{escaped}'"


class TermWriter:
    """Stateful writer so recursive helpers share settings."""

    def __init__(
        self,
        quoted: bool = False,
        operators: Optional[OperatorTable] = None,
        max_depth: int = 0,
    ):
        self.quoted = quoted
        self.operators = operators if operators is not None else _DEFAULT_OPERATORS
        self.max_depth = max_depth

    def write(self, term: Term) -> str:
        return self._write(term, MAX_PRIORITY, 0)

    # ------------------------------------------------------------------

    def _atom_text(self, name: str) -> str:
        if self.quoted and atom_needs_quotes(name):
            return _quote_atom(name)
        return name

    def _write(self, term: Term, max_priority: int, depth: int) -> str:
        if self.max_depth and depth > self.max_depth:
            return "..."
        if isinstance(term, Var):
            return str(term)
        if isinstance(term, Int):
            text = str(term.value)
            return self._maybe_negative(text, max_priority)
        if isinstance(term, Float):
            text = repr(term.value)
            return self._maybe_negative(text, max_priority)
        if isinstance(term, Atom):
            return self._atom_text(term.name)
        assert isinstance(term, Struct)
        if is_cons(term):
            return self._write_list(term, depth)
        if term.name == "{}" and term.arity == 1:
            inner = self._write(term.args[0], MAX_PRIORITY, depth + 1)
            return "{" + inner + "}"
        rendered = self._write_operator(term, max_priority, depth)
        if rendered is not None:
            return rendered
        args = ", ".join(
            self._write(arg, 999, depth + 1) for arg in term.args
        )
        return f"{self._atom_text(term.name)}({args})"

    def _maybe_negative(self, text: str, max_priority: int) -> str:
        # ``f(a) - 1`` must not print its right operand as a bare ``-1``
        # operand of priority 0 inside priority-200 context... a negative
        # number is fine anywhere except directly after a symbolic atom;
        # parenthesize when the context allows nothing (priority 0).
        if text.startswith("-") and max_priority == 0:
            return f"({text})"
        return text

    def _write_list(self, term: Struct, depth: int) -> str:
        parts = []
        current: Term = term
        while is_cons(current):
            assert isinstance(current, Struct)
            if self.max_depth and len(parts) >= self.max_depth > 0:
                parts.append("...")
                return "[" + ", ".join(parts) + "]"
            parts.append(self._write(current.args[0], 999, depth + 1))
            current = current.args[1]
        if current == NIL:
            return "[" + ", ".join(parts) + "]"
        tail = self._write(current, 999, depth + 1)
        return "[" + ", ".join(parts) + " | " + tail + "]"

    def _write_operator(
        self, term: Struct, max_priority: int, depth: int
    ) -> Optional[str]:
        if term.arity == 2:
            definition = self.operators.infix(term.name)
            if definition is None:
                return None
            left_max, right_max = definition.argument_priorities()
            left = self._write(term.args[0], left_max, depth + 1)
            right = self._write(term.args[1], right_max, depth + 1)
            name = term.name
            if name == ",":
                text = f"{left}{name} {right}"
            else:
                text = f"{left} {self._atom_text(name)} {right}"
            if definition.priority > max_priority:
                return f"({text})"
            return text
        if term.arity == 1:
            definition = self.operators.prefix(term.name)
            if definition is None:
                return None
            (arg_max,) = definition.argument_priorities()
            operand = self._write(term.args[0], arg_max, depth + 1)
            if term.name in ("-", "+") and operand[:1].isdigit():
                # ``-(1)`` must not read back as the literal ``-1``.
                operand = f"({operand})"
            text = f"{self._atom_text(term.name)} {operand}"
            if definition.priority > max_priority:
                return f"({text})"
            return text
        return None


def term_to_text(
    term: Term,
    quoted: bool = False,
    operators: Optional[OperatorTable] = None,
    max_depth: int = 0,
) -> str:
    """Render ``term`` as Prolog text; see module docstring."""
    return TermWriter(quoted=quoted, operators=operators, max_depth=max_depth).write(term)
