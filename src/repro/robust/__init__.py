"""Resource governance and fault tolerance for the analysis stack.

The paper's pitch is that compiled analysis is fast enough to live inside
a production compiler.  Production also means *bounded*: a pathological
or adversarial program must not be able to spin the fixpoint engine
forever, and a failure in one entry point must not wipe out every other
result.  This module provides the two shared primitives:

* :class:`Budget` — a multi-dimensional resource budget (abstract-machine
  steps, fixpoint iterations, extension-table entries, wall-clock
  deadline) threaded through the abstract WAM, the fixpoint drivers, the
  extension table and the baseline analyzers.  Any dimension left as
  ``None`` is unlimited.  When a dimension trips, the charging call
  raises :class:`~repro.errors.BudgetExceeded`.

* :class:`FaultPlan` — deterministic fault injection: raise
  :class:`~repro.errors.InjectedFault` at exactly the Nth occurrence of
  an instrumented event (abstract step, abstract unification, table
  update, fixpoint iteration).  The test suite uses it to prove that
  every degradation path is exercised and sound.

Degradation contract (``on_budget="degrade"``): when a budget trips or a
fault fires inside the analysis of one entry spec, the driver widens
every extension-table entry that spec touched to ⊤ (success pattern all
``any``, every argument pair may-share) and marks it ``degraded``.  A
widened entry over-approximates every concrete behaviour, so the overall
result stays *sound* — merely less precise — and the remaining entry
specs are analyzed in isolation, unaffected.  :func:`widen_entry_to_top`
and :func:`top_success_pattern` implement the widening.
"""

from __future__ import annotations

import time
from typing import FrozenSet, List, Optional, Tuple

from ..errors import BudgetExceeded, InjectedFault

#: Ordered per-entry / per-spec statuses, least to most damaged.
STATUS_EXACT = "exact"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"
_STATUS_RANK = {STATUS_EXACT: 0, STATUS_DEGRADED: 1, STATUS_FAILED: 2}


def worse_status(left: str, right: str) -> str:
    """The more damaged of two statuses (``failed`` > ``degraded`` > ``exact``)."""
    return left if _STATUS_RANK[left] >= _STATUS_RANK[right] else right


#: How many charged steps pass between wall-clock probes; checking
#: ``time.monotonic`` on every abstract instruction would dominate the
#: dispatch loop.
DEADLINE_STRIDE = 256


class Budget:
    """A resource budget shared by one analysis run.

    Dimensions (each ``None`` = unlimited):

    * ``max_steps`` — abstract-machine instructions (baselines charge one
      step per interpreted goal, the closest equivalent);
    * ``max_iterations`` — fixpoint passes, summed over all entry specs;
    * ``max_table_entries`` — distinct (predicate, calling-pattern)
      extension-table entries;
    * ``deadline`` — wall-clock seconds for the whole run, armed by
      :meth:`start`.

    A Budget is mutable bookkeeping for **one run at a time**: the
    analyzer calls :meth:`start` at the beginning of every run, which
    resets the used counters and (re)arms the deadline.  After the run
    the ``steps_used`` / ``iterations_used`` counters are left readable
    for observability.  Do not share one Budget between concurrent runs.

    **Deadline semantics under retry** (see
    :mod:`repro.serve.supervisor`): the ``deadline`` is **per attempt**,
    not cumulative across retries.  Every worker attempt reconstructs
    its Budget from the wire and calls :meth:`start`, re-arming a fresh
    deadline — so a retry that resumes from a checkpoint gets the full
    deadline window to extend the previous attempt's work instead of
    inheriting an already-spent clock.  The *cumulative* bound on a
    request is the supervisor's ``cumulative_timeout`` (and the
    gateway's admission deadline), which caps the whole retry chain in
    wall-clock terms regardless of how many per-attempt deadlines it
    contains.
    """

    __slots__ = (
        "max_steps",
        "max_iterations",
        "max_table_entries",
        "deadline",
        "steps_used",
        "iterations_used",
        "_deadline_at",
    )

    def __init__(
        self,
        max_steps: Optional[int] = None,
        max_iterations: Optional[int] = None,
        max_table_entries: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        for name, value in (
            ("max_steps", max_steps),
            ("max_iterations", max_iterations),
            ("max_table_entries", max_table_entries),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, not {value!r}")
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, not {deadline!r}")
        self.max_steps = max_steps
        self.max_iterations = max_iterations
        self.max_table_entries = max_table_entries
        self.deadline = deadline
        self.steps_used = 0
        self.iterations_used = 0
        self._deadline_at: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def unlimited(self) -> bool:
        """True when no dimension can ever trip."""
        return (
            self.max_steps is None
            and self.max_iterations is None
            and self.max_table_entries is None
            and self.deadline is None
        )

    @property
    def governs_steps(self) -> bool:
        """Does the per-instruction monitor need to run at all?"""
        return self.max_steps is not None or self.deadline is not None

    def start(self) -> "Budget":
        """Reset counters and arm the deadline clock; returns self."""
        self.steps_used = 0
        self.iterations_used = 0
        self._deadline_at = (
            time.monotonic() + self.deadline if self.deadline is not None else None
        )
        return self

    # ------------------------------------------------------------------
    # Charging.  Each raises BudgetExceeded when its dimension trips.

    def charge_step(self) -> None:
        """Charge one abstract-machine instruction (or baseline goal)."""
        self.steps_used = used = self.steps_used + 1
        limit = self.max_steps
        if limit is not None and used > limit:
            raise BudgetExceeded(
                "steps", f"step budget exceeded ({limit} abstract steps)"
            )
        if self._deadline_at is not None and used % DEADLINE_STRIDE == 0:
            self.check_deadline()

    def charge_iteration(self) -> None:
        """Charge one fixpoint pass; also probes the deadline."""
        self.iterations_used = used = self.iterations_used + 1
        limit = self.max_iterations
        if limit is not None and used > limit:
            raise BudgetExceeded(
                "iterations", f"no fixpoint after {limit} iterations"
            )
        self.check_deadline()

    def charge_table(self, size: int) -> None:
        """Charge the extension table growing to ``size`` entries."""
        limit = self.max_table_entries
        if limit is not None and size > limit:
            raise BudgetExceeded(
                "table", f"extension-table budget exceeded ({limit} entries)"
            )

    def check_deadline(self) -> None:
        """Raise when the armed wall-clock deadline has passed."""
        deadline_at = self._deadline_at
        if deadline_at is not None and time.monotonic() > deadline_at:
            raise BudgetExceeded(
                "deadline", f"deadline exceeded ({self.deadline}s wall clock)"
            )

    def expired(self) -> bool:
        """Non-raising deadline probe (used by cooperative loops)."""
        deadline_at = self._deadline_at
        return deadline_at is not None and time.monotonic() > deadline_at

    def deadline_imminent(self, fraction: float = 0.25) -> bool:
        """Non-raising proximity probe: is less than ``fraction`` of the
        armed deadline window left?

        Used by the checkpoint policy (:mod:`repro.robust.checkpoint`)
        to snapshot the table *before* the deadline trips, so a
        degraded or killed run leaves resumable progress behind.  False
        when no deadline is armed."""
        deadline_at = self._deadline_at
        if deadline_at is None or self.deadline is None:
            return False
        return (deadline_at - time.monotonic()) < fraction * self.deadline

    # ------------------------------------------------------------------
    # Per-request budgets (used by the repro.serve service).

    def copy(self) -> "Budget":
        """A fresh, unstarted budget with the same limits.

        A Budget is single-run bookkeeping; a long-lived service keeps
        one *template* budget and hands each request its own copy, so
        one hot request cannot consume a later request's allowance."""
        return Budget(
            max_steps=self.max_steps,
            max_iterations=self.max_iterations,
            max_table_entries=self.max_table_entries,
            deadline=self.deadline,
        )

    def tightened(self, other: Optional["Budget"]) -> "Budget":
        """A fresh budget taking the *tighter* of each dimension.

        The service combines its server-wide caps with a request's own
        limits this way: a request may ask for less than the server
        allows, never for more."""
        if other is None:
            return self.copy()

        def tight(mine, theirs):
            if mine is None:
                return theirs
            if theirs is None:
                return mine
            return min(mine, theirs)

        return Budget(
            max_steps=tight(self.max_steps, other.max_steps),
            max_iterations=tight(self.max_iterations, other.max_iterations),
            max_table_entries=tight(
                self.max_table_entries, other.max_table_entries
            ),
            deadline=tight(self.deadline, other.deadline),
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        parts = []
        for name in ("max_steps", "max_iterations", "max_table_entries", "deadline"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return f"Budget({', '.join(parts)})"


def _ordinal_set(site: str, spec) -> FrozenSet[int]:
    """Normalize a fault spec (None, int, or iterable of ints) to a set
    of 1-based ordinals; validates positivity."""
    if spec is None:
        return frozenset()
    ordinals = (spec,) if isinstance(spec, int) else tuple(spec)
    for ordinal in ordinals:
        if ordinal < 1:
            raise ValueError(f"fault ordinal for {site!r} must be >= 1")
    return frozenset(ordinals)


class FaultPlan:
    """Deterministic fault injection at instrumented sites.

    Each site counts its events; when a site's counter reaches a
    configured ordinal, the fault fires exactly once per ordinal (the
    counter keeps advancing, so re-running the same plan object does not
    re-fire — build a fresh plan per experiment).

    Two families of sites:

    **Analysis sites** (checked with :meth:`fire`, which raises
    :class:`~repro.errors.InjectedFault`; single ordinal each):

    * ``"step"`` — one abstract-machine instruction dispatched;
    * ``"unify"`` — one abstract set-unification performed by the machine;
    * ``"table"`` — one extension-table ``updateET``;
    * ``"iteration"`` — one fixpoint pass started.

    **Serve chaos sites** (checked with :meth:`probe`, which merely
    returns True — the caller performs the fault; each accepts one
    ordinal or an iterable of ordinals, so a chaos campaign can kill
    at many fixed request indices):

    * ``"request"`` — the supervisor dispatches one request: the worker
      is SIGKILLed on receipt (``kill_worker_at_request``);
    * ``"response"`` — the worker delays its response by
      ``delay_seconds`` wall-clock seconds, typically past the request
      deadline (``delay_response_at_request``);
    * ``"store"`` — one on-disk store write: the entry file is written
      torn/corrupt while the journal keeps the good record
      (``corrupt_store_at_put``).
    """

    SITES = ("step", "unify", "table", "iteration",
             "request", "response", "store")

    def __init__(
        self,
        at_step: Optional[int] = None,
        at_unification: Optional[int] = None,
        at_table_update: Optional[int] = None,
        at_iteration: Optional[int] = None,
        kill_worker_at_request=None,
        delay_response_at_request=None,
        corrupt_store_at_put=None,
        delay_seconds: float = 0.25,
    ):
        self._trip_at = {
            "step": _ordinal_set("step", at_step),
            "unify": _ordinal_set("unify", at_unification),
            "table": _ordinal_set("table", at_table_update),
            "iteration": _ordinal_set("iteration", at_iteration),
            "request": _ordinal_set("request", kill_worker_at_request),
            "response": _ordinal_set(
                "response", delay_response_at_request
            ),
            "store": _ordinal_set("store", corrupt_store_at_put),
        }
        if delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        #: How long a "response" fault delays the worker's answer.
        self.delay_seconds = delay_seconds
        self.counts = {site: 0 for site in self.SITES}
        #: (site, ordinal) pairs that actually fired, in firing order.
        self.fired: List[Tuple[str, int]] = []

    def watches(self, site: str) -> bool:
        """Is any fault armed at this site (monitor worth installing)?"""
        return bool(self._trip_at.get(site))

    def fire(self, site: str) -> None:
        """Record one event at ``site``; raise when an ordinal is reached."""
        if self.probe(site):
            raise InjectedFault(site, self.counts[site])

    def probe(self, site: str) -> bool:
        """Record one event at ``site``; True when an ordinal is reached.

        The non-raising form used by the serve chaos sites, where the
        caller (supervisor, disk store) performs the fault itself."""
        self.counts[site] = count = self.counts[site] + 1
        if count in self._trip_at.get(site, frozenset()):
            self.fired.append((site, count))
            return True
        return False


# ----------------------------------------------------------------------
# Sound widening to ⊤.


def top_success_pattern(arity: int):
    """The ⊤ success pattern for ``arity`` arguments: every position
    ``any``, no structure.  Over-approximates every concrete success."""
    from ..analysis.patterns import Pattern, canonicalize
    from ..domain.sorts import AbsSort

    return canonicalize(
        Pattern(tuple(("i", AbsSort.ANY, index) for index in range(arity)))
    )


def all_share_pairs(arity: int) -> FrozenSet[Tuple[int, int]]:
    """Every argument-position pair: unknown code may alias anything."""
    return frozenset(
        (i, j) for i in range(arity) for j in range(i + 1, arity)
    )


def widen_entry_to_top(indicator, entry, status: str = STATUS_DEGRADED) -> None:
    """Widen one table entry to ⊤ in place and stamp its status.

    Used when an entry's exploration was interrupted: whatever partial
    summary it holds may be an under-approximation, so the only sound
    summary left is "may succeed with anything, aliasing anything".
    """
    arity = indicator[1]
    entry.success = top_success_pattern(arity)
    entry.may_share = all_share_pairs(arity)
    entry.status = worse_status(entry.status, status)


__all__ = [
    "Budget",
    "BudgetExceeded",
    "FaultPlan",
    "InjectedFault",
    "STATUS_DEGRADED",
    "STATUS_EXACT",
    "STATUS_FAILED",
    "all_share_pairs",
    "top_success_pattern",
    "widen_entry_to_top",
    "worse_status",
]
