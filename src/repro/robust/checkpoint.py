"""Crash-consistent extension-table checkpoints (resume-don't-redo).

PR 2 made interrupted analyses *sound* (widen to ⊤, degrade-don't-die)
and PR 4 made crashed workers *survivable* (respawn and retry) — but
both recovery paths discard fixpoint progress: the retry starts from
scratch and a budget trip throws away every pass already run.  This
module turns repeated faults into cumulative forward progress by
snapshotting the extension table mid-fixpoint and re-planting it on the
next attempt.

**Why resuming is sound.**  The tabled fixpoint is a Kleene iteration:
every intermediate table is ⊑ the least fixpoint, and ``updateET`` only
lubs summaries upward.  Re-planting an intermediate table and iterating
therefore converges to the *same* least fixpoint a from-scratch run
reaches — a checkpoint can only shift where the iteration starts, never
where it ends.  On the SCC-scheduled path the thawed verification sweep
(:mod:`repro.serve.scheduler`) independently re-confirms every summary,
so even a checkpoint from the wrong program version is a performance
matter, never a soundness one.  Snapshots capture only ``exact``-status
entries: ⊤-widened (degraded) summaries are sound but *above* the
fixpoint, and resuming from them would pin the imprecision forever.

**Snapshot format** (``repro.checkpoint/1``): a plain-JSON dict —

* ``format`` — version tag, refused when unknown;
* ``config`` / ``key`` — caller-chosen identity fingerprints (the serve
  layer uses its config and request fingerprints); :func:`load` refuses
  a snapshot whose identity does not match;
* ``entries`` — the sorted entry-spec strings of the run;
* ``cursor`` — fixpoint progress: cumulative ``iterations`` (passes,
  summed across resumed attempts), ``steps`` spent and the ``attempts``
  count; the supervisor's crash-loop containment watches this cursor;
* ``table`` — the canonical sorted entry list
  (:func:`repro.analysis.codec.entry_to_json` plus a ``frozen`` flag:
  frozen entries were stabilized bottom-up and are final, unfrozen ones
  were mid-iteration);
* ``sha256`` — checksum over the canonical serialization of everything
  above; a torn or tampered snapshot fails :func:`load`.

Everything serializes through :mod:`repro.analysis.codec`, so snapshots
are ``PYTHONHASHSEED``-independent and byte-deterministic for a given
table state.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.codec import entry_from_json, entry_to_json
from ..analysis.table import ExtensionTable
from . import STATUS_EXACT, Budget

#: The (only) snapshot format this build writes and accepts.
CHECKPOINT_FORMAT = "repro.checkpoint/1"

#: Default cadence: one snapshot every this many fixpoint passes.
DEFAULT_CHECKPOINT_EVERY = 16

#: Default deadline-proximity trigger: snapshot once when less than this
#: fraction of the budget's deadline window remains.
DEFAULT_DEADLINE_FRACTION = 0.25


def _canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def checkpoint_checksum(body: dict) -> str:
    """SHA-256 over the canonical serialization of ``body`` minus its
    own ``sha256`` field."""
    bare = {key: value for key, value in body.items() if key != "sha256"}
    return hashlib.sha256(_canonical(bare).encode("utf-8")).hexdigest()


Tables = Union[ExtensionTable, Sequence[ExtensionTable]]


def snapshot(
    tables: Tables,
    *,
    config: str = "",
    key: str = "",
    entries: Iterable = (),
    iterations: int = 0,
    steps: int = 0,
    attempts: int = 1,
) -> dict:
    """Serialize the exact-status entries of ``tables`` (lub-merged)
    into one checksummed, canonical snapshot dict."""
    if isinstance(tables, ExtensionTable):
        tables = (tables,)
    merged = ExtensionTable()
    frozen_keys = set()
    for table in tables:
        merged.merge(table)
        for indicator, entry in table.all_entries():
            if entry.frozen:
                frozen_keys.add((indicator, entry.calling))
    items: List[dict] = []
    for indicator, entry in merged.all_entries():
        if entry.status != STATUS_EXACT:
            continue  # never resume from a ⊤-widened summary
        item = entry_to_json(indicator, entry)
        item["frozen"] = (indicator, entry.calling) in frozen_keys
        items.append(item)
    items.sort(key=lambda item: (item["predicate"], json.dumps(item["calling"])))
    body = {
        "format": CHECKPOINT_FORMAT,
        "config": config,
        "key": key,
        "entries": sorted(str(entry) for entry in entries),
        "cursor": {
            "iterations": int(iterations),
            "steps": int(steps),
            "attempts": int(attempts),
        },
        "table": items,
    }
    body["sha256"] = checkpoint_checksum(body)
    return body


def load(
    data,
    *,
    config: Optional[str] = None,
    key: Optional[str] = None,
    metrics=None,
) -> Optional[dict]:
    """Validate a snapshot read back from storage or the wire.

    Returns the snapshot dict when its format is known, its checksum
    verifies, and — when ``config``/``key`` are given — its identity
    matches; None otherwise.  Resume is best-effort by design: an
    invalid checkpoint is *ignored* (counted under ``checkpoint.invalid``
    when ``metrics`` is given), never an error, because a from-scratch
    run is always a correct fallback."""
    reason = None
    if not isinstance(data, dict):
        reason = "not-an-object"
    elif data.get("format") != CHECKPOINT_FORMAT:
        reason = "format"
    elif not isinstance(data.get("table"), list) or not isinstance(
        data.get("cursor"), dict
    ):
        reason = "shape"
    elif checkpoint_checksum(data) != data.get("sha256"):
        reason = "checksum"
    elif config is not None and data.get("config") != config:
        reason = "config-mismatch"
    elif key is not None and data.get("key") != key:
        reason = "key-mismatch"
    if reason is not None:
        if metrics is not None:
            metrics.counter("checkpoint.invalid", reason=reason).inc()
        return None
    return data


def cursor_iterations(data) -> int:
    """The cumulative fixpoint-pass count recorded in a snapshot (0 for
    anything malformed) — the forward-progress cursor the supervisor's
    crash-loop containment watches."""
    if isinstance(data, dict):
        cursor = data.get("cursor")
        if isinstance(cursor, dict):
            try:
                return int(cursor.get("iterations", 0))
            except (TypeError, ValueError):
                return 0
    return 0


def frozen_entries(data) -> int:
    """How many table entries a snapshot recorded as frozen (0 for
    anything malformed).  Frozen entries are stabilized components the
    resumed scheduler skips outright, so this is the *durable* progress
    a snapshot banks — unfrozen entries only shorten the value ascent,
    they never remove a key's confirmation pass."""
    if isinstance(data, dict):
        table = data.get("table")
        if isinstance(table, list):
            return sum(
                1
                for item in table
                if isinstance(item, dict) and item.get("frozen")
            )
    return 0


def snapshot_rank(data) -> Tuple[int, int]:
    """Resume preference order for a snapshot: ``(frozen, iterations)``.

    The scheduler's verification phase thaws the whole table, so the
    *latest* snapshot (max cursor) of a run can carry zero frozen
    entries while an earlier stabilization-boundary snapshot carries
    the full frozen frontier.  Resuming from the thawed one would
    re-confirm every component from the bottom; resuming from the
    frontier-rich one skips the stabilized components entirely.  Rank
    snapshots by frozen count first (durable progress), cursor second
    (value-ascent progress as the tie-break) — ``max`` over this rank
    picks the cheapest restart point.
    """
    return (frozen_entries(data), cursor_iterations(data))


def plant(
    data: dict,
    table: ExtensionTable,
    *,
    respect_frozen: bool = True,
    metrics=None,
) -> int:
    """Install a snapshot's entries into ``table`` via ``table.seed``;
    returns the number of entries planted.

    With ``respect_frozen`` (the SCC-scheduled path), entries the prior
    attempt stabilized stay frozen — the scheduler skips re-iterating
    them and the thawed verification sweep still re-confirms everything.
    Without it (the monolithic driver, which has no verification sweep),
    every entry is planted unfrozen — seed *and* thaw in one step — so
    the resumed run is a pure Kleene restart from the recorded iterate
    and converges to the same fixpoint it always would."""
    planted = 0
    for item in data.get("table", ()):
        try:
            indicator, calling, success, may_share = entry_from_json(item)
        except (KeyError, TypeError, ValueError, IndexError):
            continue  # one damaged entry must not void the rest
        table.seed(
            indicator,
            calling,
            success,
            may_share,
            status=STATUS_EXACT,
            frozen=bool(item.get("frozen")) if respect_frozen else False,
        )
        planted += 1
    if planted and metrics is not None:
        metrics.counter("resume.entries_planted").inc(planted)
    return planted


class CheckpointPolicy:
    """When to snapshot, and where snapshots go.

    One policy instance governs one analysis run.  The fixpoint layers
    call :meth:`note_pass` once per charged iteration; the policy emits
    a snapshot every ``every`` passes and — once per run — when the
    budget's deadline window is nearly spent
    (:meth:`Budget.deadline_imminent`), so the work survives the trip
    that is about to happen.  :meth:`flush` emits a final snapshot at a
    degrade boundary (called *before* the table is widened to ⊤).

    ``sink`` receives each snapshot dict (the service writes it to the
    checkpoint store namespace and, in a worker, also ships it up the
    wire).  A sink failure is swallowed: checkpointing must never be
    the thing that breaks an analysis.  ``on_pass`` is an extra
    per-pass hook (the chaos harness arms its kill-at-iteration site
    there, *after* the emit decision, so an injected kill always lands
    on a checkpointed pass boundary).
    """

    def __init__(
        self,
        sink: Optional[Callable[[dict], None]] = None,
        *,
        every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
        budget: Optional[Budget] = None,
        deadline_fraction: float = DEFAULT_DEADLINE_FRACTION,
        config: str = "",
        key: str = "",
        entries: Iterable = (),
        base_iterations: int = 0,
        attempts: int = 1,
        metrics=None,
        on_pass: Optional[Callable[[int], None]] = None,
    ):
        if every is not None and every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, not {every!r}")
        if not (0.0 < deadline_fraction < 1.0):
            raise ValueError("deadline_fraction must be in (0, 1)")
        self.sink = sink
        self.every = every
        self.budget = budget
        self.deadline_fraction = deadline_fraction
        self.config = config
        self.key = key
        self.entries = tuple(str(entry) for entry in entries)
        #: Cursor base: iterations already banked by prior attempts
        #: (from the resumed checkpoint), so emitted cursors are
        #: cumulative across the whole retry chain.
        self.base_iterations = base_iterations
        self.attempts = attempts
        self.metrics = metrics
        self.on_pass = on_pass
        self.passes = 0
        self.emitted = 0
        #: The most recent snapshot emitted (the degrade path persists
        #: this after widening destroyed the live table).
        self.last: Optional[dict] = None
        self._last_emit_pass = -1
        self._proximity_fired = False

    # ------------------------------------------------------------------

    @property
    def cursor(self) -> int:
        """Cumulative iteration cursor: banked base + this run's passes."""
        return self.base_iterations + self.passes

    def note_pass(self, tables: Tables) -> None:
        """One fixpoint pass completed over ``tables``; maybe snapshot."""
        self.passes += 1
        due = self.every is not None and self.passes % self.every == 0
        if not due and not self._proximity_fired and self.budget is not None:
            if self.budget.deadline_imminent(self.deadline_fraction):
                due = True
                self._proximity_fired = True
                if self.metrics is not None:
                    self.metrics.counter("checkpoint.deadline_proximity").inc()
        if due:
            self._emit(tables)
        if self.on_pass is not None:
            self.on_pass(self.passes)

    def flush(self, tables: Tables) -> Optional[dict]:
        """Emit a final snapshot unless this pass is already covered;
        returns the latest snapshot either way."""
        if self.passes and self._last_emit_pass != self.passes:
            self._emit(tables)
        return self.last

    def _emit(self, tables: Tables) -> None:
        budget = self.budget
        snap = snapshot(
            tables,
            config=self.config,
            key=self.key,
            entries=self.entries,
            iterations=self.cursor,
            steps=budget.steps_used if budget is not None else 0,
            attempts=self.attempts,
        )
        self.last = snap
        self._last_emit_pass = self.passes
        self.emitted += 1
        if self.metrics is not None:
            self.metrics.counter("checkpoint.emitted").inc()
        if self.sink is not None:
            try:
                self.sink(snap)
            except (OSError, ValueError):
                pass  # a full disk must never fail the analysis itself


__all__ = [
    "CHECKPOINT_FORMAT",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_DEADLINE_FRACTION",
    "CheckpointPolicy",
    "checkpoint_checksum",
    "cursor_iterations",
    "frozen_entries",
    "snapshot_rank",
    "load",
    "plant",
    "snapshot",
]
