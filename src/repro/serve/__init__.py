"""repro.serve — the analysis service.

Turns the one-shot analyzer into a long-lived, cache-backed service:
content-addressed fingerprints (:mod:`~repro.serve.fingerprint`), a
predicate call graph with Merkle SCC fingerprints
(:mod:`~repro.serve.callgraph`), a bottom-up SCC-scheduled fixpoint
(:mod:`~repro.serve.scheduler`), a self-healing capped result store
(:mod:`~repro.serve.store`), the request loop itself
(:mod:`~repro.serve.service`), crash isolation — a supervised
worker-subprocess pool (:mod:`~repro.serve.pool`) fronted by retry and
kill policy (:mod:`~repro.serve.supervisor`) — and horizontal scale: a
network-facing asyncio gateway (:mod:`~repro.serve.gateway`) routing by
consistent-hashed program fingerprint across bounded-queue shards
(:mod:`~repro.serve.shard`) with admission control and budget-based
load shedding.  See docs/serve.md for
the architecture, the cache-soundness argument, and the operations /
failure-modes contract.

Two invariants hold across every module here.  **Soundness**: a served
response equals what a from-scratch ``analyze()`` of the current text
would produce — caching and crash recovery may change latency, never
answers (degraded results are never stored, frozen summaries are
re-verified after seeding).  **Observation is inert**: the
:mod:`repro.obs` metrics and traces threaded through the service
(``metrics`` op, ``stats``, worker delta shipping) only record; they
are guaranteed not to alter any response, and docs/observability.md
catalogues what they record.
"""

from .callgraph import CallGraph, call_edges
from .fingerprint import (
    clause_fingerprint,
    config_fingerprint,
    entry_fingerprint,
    predicate_fingerprint,
    predicate_fingerprints,
    program_fingerprint,
    request_fingerprint,
)
from .gateway import ConsistentHashRing, Gateway, GatewayConfig, route_key
from .pool import Worker, WorkerCrashed, WorkerPool, WorkerTimeout
from .scheduler import SCCScheduler, ScheduleStats
from .shard import Shard, ShardConfig, ShardSaturated, shed_response
from .service import (
    HIT,
    INCREMENTAL,
    MAX_REQUEST_LINE,
    MISS,
    AnalysisService,
    ServiceConfig,
    run_batch,
    serve_loop,
)
from .store import DiskStore, ResultStore
from .supervisor import Supervisor, SupervisorConfig

__all__ = [
    "HIT",
    "INCREMENTAL",
    "MAX_REQUEST_LINE",
    "MISS",
    "AnalysisService",
    "CallGraph",
    "ConsistentHashRing",
    "DiskStore",
    "Gateway",
    "GatewayConfig",
    "ResultStore",
    "SCCScheduler",
    "ScheduleStats",
    "ServiceConfig",
    "Shard",
    "ShardConfig",
    "ShardSaturated",
    "Supervisor",
    "SupervisorConfig",
    "Worker",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerTimeout",
    "call_edges",
    "clause_fingerprint",
    "config_fingerprint",
    "entry_fingerprint",
    "predicate_fingerprint",
    "predicate_fingerprints",
    "program_fingerprint",
    "request_fingerprint",
    "route_key",
    "run_batch",
    "serve_loop",
    "shed_response",
]
