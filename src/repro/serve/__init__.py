"""repro.serve — the analysis service.

Turns the one-shot analyzer into a long-lived, cache-backed service:
content-addressed fingerprints (:mod:`~repro.serve.fingerprint`), a
predicate call graph with Merkle SCC fingerprints
(:mod:`~repro.serve.callgraph`), a bottom-up SCC-scheduled fixpoint
(:mod:`~repro.serve.scheduler`), a capped result store
(:mod:`~repro.serve.store`) and the request loop itself
(:mod:`~repro.serve.service`).  See docs/serve.md for the architecture
and the cache-soundness argument.
"""

from .callgraph import CallGraph, call_edges
from .fingerprint import (
    clause_fingerprint,
    config_fingerprint,
    entry_fingerprint,
    predicate_fingerprint,
    predicate_fingerprints,
    program_fingerprint,
    request_fingerprint,
)
from .scheduler import SCCScheduler, ScheduleStats
from .service import (
    HIT,
    INCREMENTAL,
    MISS,
    AnalysisService,
    ServiceConfig,
    run_batch,
    serve_loop,
)
from .store import DiskStore, ResultStore

__all__ = [
    "HIT",
    "INCREMENTAL",
    "MISS",
    "AnalysisService",
    "CallGraph",
    "DiskStore",
    "ResultStore",
    "SCCScheduler",
    "ScheduleStats",
    "ServiceConfig",
    "call_edges",
    "clause_fingerprint",
    "config_fingerprint",
    "entry_fingerprint",
    "predicate_fingerprint",
    "predicate_fingerprints",
    "program_fingerprint",
    "request_fingerprint",
    "run_batch",
    "serve_loop",
]
