"""``python -m repro.serve`` — the repro-serve CLI."""

import sys

from ..cli import main_serve

if __name__ == "__main__":
    sys.exit(main_serve())
