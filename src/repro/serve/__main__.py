"""``python -m repro.serve`` — the repro-serve CLI.

Equivalent to the ``repro-serve`` console script: a thin re-export of
:func:`repro.cli.main_serve`, which owns all argument parsing and
service construction.  This module must stay logic-free — anything
added here would run for ``-m`` invocations but not for the installed
script, and the two entry points are supposed to be indistinguishable.
"""

import sys

from ..cli import main_serve

if __name__ == "__main__":
    sys.exit(main_serve())
