"""The predicate call graph of a compiled program, condensed into SCCs.

The graph is read off the *compiled WAM code*, not the source: a
predicate's callees are exactly the targets of its ``call``/``execute``
instructions.  That automatically accounts for the control-construct
normalization (``;``/``->``/``\\+`` become auxiliary ``$or_n``/``$not_n``
predicates with real calls) and ignores builtins, which compile to
``builtin`` instructions and have fixed semantics.

The condensation (Tarjan, iterative) yields the strongly connected
components in **bottom-up order**: every component appears after the
components it calls.  The scheduler analyzes components in that order, so
each component's summaries are complete before any caller needs them.

Each SCC carries a *Merkle fingerprint*: a digest of its member
predicates' content fingerprints plus the fingerprints of the SCCs it
calls.  A one-clause edit therefore changes exactly the fingerprints of
its own SCC and the SCCs that transitively call it — the invalidation
rule of the result store falls out of the hashing scheme.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..prolog.terms import Indicator, format_indicator
from ..wam.compile import CompiledProgram
from .fingerprint import _hash

#: Instructions whose first operand is a callee indicator.
_CALL_OPS = ("call", "execute")


def call_edges(compiled: CompiledProgram) -> Dict[Indicator, List[Indicator]]:
    """Caller → ordered callees, one entry per predicate with code.

    Synthetic ``$query_<n>`` predicates (compiled on demand for concrete
    queries) are excluded; they are not part of the program.
    """
    code = compiled.code
    entries = sorted(
        (address, indicator)
        for indicator, address in code.entry.items()
        if not indicator[0].startswith("$query")
    )
    boundaries = [address for address, _ in entries] + [len(code.instructions)]
    edges: Dict[Indicator, List[Indicator]] = {}
    for position, (start, indicator) in enumerate(entries):
        end = boundaries[position + 1]
        callees: List[Indicator] = []
        seen: Set[Indicator] = set()
        for instruction in code.instructions[start:end]:
            if instruction.op in _CALL_OPS:
                target = instruction.args[0]
                if target not in seen:
                    seen.add(target)
                    callees.append(target)
        edges[indicator] = callees
    return edges


class CallGraph:
    """Predicates, their call edges, and the SCC condensation."""

    def __init__(self, edges: Dict[Indicator, List[Indicator]]):
        self.edges = edges
        #: SCCs in bottom-up (reverse topological) order: callees first.
        self.sccs: List[Tuple[Indicator, ...]] = []
        #: indicator → index into ``sccs``.
        self.scc_of: Dict[Indicator, int] = {}
        self._condense()
        #: SCC index → indices of the SCCs it calls (no self edges).
        self.scc_calls: Dict[int, FrozenSet[int]] = self._scc_edges()

    @staticmethod
    def from_compiled(compiled: CompiledProgram) -> "CallGraph":
        return CallGraph(call_edges(compiled))

    # ------------------------------------------------------------------

    def _condense(self) -> None:
        """Iterative Tarjan; emission order is callees-before-callers."""
        index: Dict[Indicator, int] = {}
        low: Dict[Indicator, int] = {}
        on_stack: Set[Indicator] = set()
        stack: List[Indicator] = []
        counter = 0
        # Callees referenced but never defined (undefined predicates under
        # the top/fail policies) are nodes too — leaves with no edges.
        nodes = list(self.edges)
        for callees in self.edges.values():
            for callee in callees:
                if callee not in self.edges:
                    nodes.append(callee)
        seen_nodes: Set[Indicator] = set()
        ordered_nodes: List[Indicator] = []
        for node in nodes:
            if node not in seen_nodes:
                seen_nodes.add(node)
                ordered_nodes.append(node)
        for root in ordered_nodes:
            if root in index:
                continue
            # Explicit DFS stack: (node, iterator position).
            work: List[Tuple[Indicator, int]] = [(root, 0)]
            while work:
                node, position = work.pop()
                if position == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                callees = self.edges.get(node, [])
                advanced = False
                while position < len(callees):
                    callee = callees[position]
                    position += 1
                    if callee not in index:
                        work.append((node, position))
                        work.append((callee, 0))
                        advanced = True
                        break
                    if callee in on_stack:
                        low[node] = min(low[node], index[callee])
                if advanced:
                    continue
                if low[node] == index[node]:
                    component: List[Indicator] = []
                    while True:
                        member = stack.pop()
                        on_stack.remove(member)
                        component.append(member)
                        if member == node:
                            break
                    scc_index = len(self.sccs)
                    self.sccs.append(tuple(sorted(component)))
                    for member in component:
                        self.scc_of[member] = scc_index
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

    def _scc_edges(self) -> Dict[int, FrozenSet[int]]:
        result: Dict[int, Set[int]] = {i: set() for i in range(len(self.sccs))}
        for caller, callees in self.edges.items():
            source = self.scc_of[caller]
            for callee in callees:
                target = self.scc_of[callee]
                if target != source:
                    result[source].add(target)
        return {i: frozenset(targets) for i, targets in result.items()}

    # ------------------------------------------------------------------

    def members(self, scc_index: int) -> Tuple[Indicator, ...]:
        return self.sccs[scc_index]

    def reachable_sccs(self, roots: Sequence[Indicator]) -> List[int]:
        """SCC indices statically reachable from ``roots``, bottom-up order.

        Roots with no code at all (undefined entry predicates) are
        ignored; the analyzer reports those itself.
        """
        pending = [self.scc_of[root] for root in roots if root in self.scc_of]
        reached: Set[int] = set()
        while pending:
            current = pending.pop()
            if current in reached:
                continue
            reached.add(current)
            pending.extend(self.scc_calls[current])
        return [i for i in range(len(self.sccs)) if i in reached]

    def callers_closure(self, dirty: Set[int]) -> Set[int]:
        """``dirty`` plus every SCC that transitively calls into it."""
        reverse: Dict[int, Set[int]] = {i: set() for i in range(len(self.sccs))}
        for source, targets in self.scc_calls.items():
            for target in targets:
                reverse[target].add(source)
        result: Set[int] = set()
        pending = list(dirty)
        while pending:
            current = pending.pop()
            if current in result:
                continue
            result.add(current)
            pending.extend(reverse[current])
        return result

    # ------------------------------------------------------------------

    def merkle_fingerprints(
        self, predicate_fps: Dict[Indicator, str]
    ) -> List[str]:
        """One fingerprint per SCC covering the component *and everything
        below it*: members' content digests plus callee SCC fingerprints.

        Because ``sccs`` is bottom-up, one forward sweep suffices.
        Predicates absent from ``predicate_fps`` (undefined callees) hash
        as :data:`~repro.serve.fingerprint.UNDEFINED_PREDICATE`.
        """
        from .fingerprint import UNDEFINED_PREDICATE

        fingerprints: List[str] = []
        for scc_index, component in enumerate(self.sccs):
            parts = ["scc"]
            for member in component:
                parts.append(format_indicator(member))
                parts.append(
                    predicate_fps.get(member, UNDEFINED_PREDICATE)
                )
            for callee in sorted(self.scc_calls[scc_index]):
                parts.append(fingerprints[callee])
            fingerprints.append(_hash(parts))
        return fingerprints

    def to_dict(self) -> dict:
        """A JSON view (for diagnostics and tests)."""
        return {
            "sccs": [
                [format_indicator(member) for member in component]
                for component in self.sccs
            ],
            "calls": {
                str(i): sorted(self.scc_calls[i])
                for i in range(len(self.sccs))
            },
        }


__all__ = ["CallGraph", "call_edges"]
