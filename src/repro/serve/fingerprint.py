"""Content-addressed fingerprints of programs, predicates and requests.

Everything the analysis service caches is keyed by a SHA-256 digest of a
*canonical serialization* — never by Python hashes (which vary with
``PYTHONHASHSEED``) and never by object identity.  The canonical form is
chosen so that fingerprints are stable across processes and invariant
under the edits that cannot change analysis results:

* variables are numbered in first-occurrence order (α-equivalent clauses
  fingerprint identically, whatever the variables were called);
* comments, whitespace and clause positions are invisible (they are gone
  by parse time and excluded from the serialization);
* atom/functor names are length-prefixed, so no crafted name can collide
  with the serializer's own punctuation.

Granularities, coarse to fine:

* :func:`clause_fingerprint` — one clause, α-invariant;
* :func:`predicate_fingerprint` — a predicate's clauses *in order*
  (clause order is visible: it can matter to cut-carrying code);
* :func:`program_fingerprint` — every predicate plus the directives;
* :func:`config_fingerprint` — the analysis parameters that change
  results (depth, list-awareness, subsumption, undefined-predicate
  policy, environment trimming);
* :func:`entry_fingerprint` — one entry calling pattern;
* :func:`request_fingerprint` — a whole analyze request: config +
  entries + the fingerprints of the SCCs the entries can reach (see
  :mod:`repro.serve.callgraph` for the Merkle construction).  Editing
  statically unreachable code therefore does not miss the cache.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..prolog.program import Clause, Program
from ..prolog.terms import (
    Atom,
    Float,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
)

#: Fingerprint of a predicate that has no clauses (an undefined callee
#: under the ``top``/``fail`` policies).  When code for it appears later,
#: its fingerprint changes, dirtying every caller — exactly right.
UNDEFINED_PREDICATE = "undefined"


def _hash(parts: Iterable[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Canonical term serialization.


def canonical_term(term: Term, var_ids: Optional[Dict[int, int]] = None) -> str:
    """A canonical, α-invariant, injective rendering of ``term``.

    ``var_ids`` carries the variable numbering across the terms of one
    clause, so aliasing between head and body is part of the form.
    Names are length-prefixed (``4:name``) to keep the encoding
    injective whatever characters they contain.
    """
    if var_ids is None:
        var_ids = {}
    out: List[str] = []
    _serialize(term, var_ids, out)
    return "".join(out)


def _serialize(term: Term, var_ids: Dict[int, int], out: List[str]) -> None:
    if isinstance(term, Var):
        ident = var_ids.get(id(term))
        if ident is None:
            ident = len(var_ids)
            var_ids[id(term)] = ident
        out.append(f"v{ident};")
        return
    if isinstance(term, Atom):
        out.append(f"a{len(term.name)}:{term.name};")
        return
    if isinstance(term, Int):
        out.append(f"i{term.value};")
        return
    if isinstance(term, Float):
        out.append(f"f{term.value!r};")
        return
    assert isinstance(term, Struct)
    out.append(f"s{len(term.name)}:{term.name}/{term.arity}(")
    for argument in term.args:
        _serialize(argument, var_ids, out)
    out.append(")")


def clause_fingerprint(clause: Clause) -> str:
    """SHA-256 of the clause's canonical form (α-invariant, position-free)."""
    var_ids: Dict[int, int] = {}
    parts = [canonical_term(clause.head, var_ids)]
    for goal in clause.body:
        parts.append(canonical_term(goal, var_ids))
    return _hash(["clause", str(len(parts))] + parts)


def predicate_fingerprint(clauses: Sequence[Clause]) -> str:
    """SHA-256 over a predicate's clause fingerprints, in source order."""
    if not clauses:
        return UNDEFINED_PREDICATE
    return _hash(
        ["predicate"] + [clause_fingerprint(clause) for clause in clauses]
    )


def predicate_fingerprints(program: Program) -> Dict[Indicator, str]:
    """Fingerprint every predicate of ``program``."""
    return {
        indicator: predicate_fingerprint(predicate.clauses)
        for indicator, predicate in program.predicates.items()
    }


def program_fingerprint(program: Program) -> str:
    """SHA-256 of the whole program: predicates (sorted) plus directives."""
    parts = ["program"]
    for indicator in sorted(program.predicates):
        parts.append(f"{indicator[0]}/{indicator[1]}")
        parts.append(predicate_fingerprint(program.predicates[indicator].clauses))
    for directive in program.directives:
        parts.append(canonical_term(directive, {}))
    return _hash(parts)


# ----------------------------------------------------------------------
# Analysis configuration and entry specs.


def config_fingerprint(
    depth: int,
    list_aware: bool = True,
    subsumption: bool = False,
    on_undefined: str = "error",
    environment_trimming: bool = True,
) -> str:
    """Digest of every analyzer knob that can change analysis results."""
    return _hash(
        [
            "config",
            f"depth={depth}",
            f"list_aware={list_aware}",
            f"subsumption={subsumption}",
            f"on_undefined={on_undefined}",
            f"environment_trimming={environment_trimming}",
        ]
    )


def entry_fingerprint(spec) -> str:
    """Digest of one :class:`~repro.analysis.driver.EntrySpec`.

    ``str(spec)`` renders the canonicalized pattern (instance ids in
    first-occurrence order), so equivalent specs — however they were
    written — fingerprint identically.
    """
    return _hash(["entry", str(spec)])


def request_fingerprint(
    config: str,
    entries: Sequence[str],
    reachable_sccs: Sequence[str],
) -> str:
    """Digest of a whole analyze request.

    ``reachable_sccs`` are the Merkle fingerprints of the SCCs statically
    reachable from the entry predicates; sorting makes the key
    independent of traversal order.
    """
    return _hash(
        ["request", config]
        + list(entries)
        + sorted(reachable_sccs)
    )


def text_fingerprint(text: str) -> str:
    """Digest of raw program text (used only as a parse-cache key)."""
    return _hash(["text", text])


__all__ = [
    "UNDEFINED_PREDICATE",
    "canonical_term",
    "clause_fingerprint",
    "config_fingerprint",
    "entry_fingerprint",
    "predicate_fingerprint",
    "predicate_fingerprints",
    "program_fingerprint",
    "request_fingerprint",
    "text_fingerprint",
]
