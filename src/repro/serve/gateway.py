"""The network-facing sharded gateway: asyncio TCP, JSON lines, N shards.

``repro-serve --listen PORT --shards N`` runs a :class:`Gateway`: an
asyncio TCP server speaking the same JSON-lines request protocol as the
stdin loop, fronting ``N`` :class:`~repro.serve.shard.Shard` backends.
Each shard owns its own :class:`~repro.serve.supervisor.Supervisor`
(worker pool + journaled store partition) or in-process service, and
every request is routed to exactly one shard by **consistent hashing of
its program fingerprint** — the same program always lands on the same
shard, so per-shard tables and stores stay warm and partitioned instead
of every shard cold-missing on every program.

Overload behaviour is the design center — *degrade, don't die*:

1. **Admission control.**  A request routed to a shard whose bounded
   queue is full, or whose estimated wait (queue depth × smoothed
   latency) already exceeds the request's deadline, is refused
   *immediately* with a structured shed response
   (``{"ok": false, "error_kind": "shed", "reason": ...}``) — the
   event loop never queues unboundedly and never blocks.
2. **Budget-based load shedding.**  Between the soft and hard depth
   thresholds the gateway still admits the request but tightens its
   budget (:meth:`repro.robust.Budget.tightened` with the configured
   degrade budget), so the analysis completes as a sound ⊤-widened
   ``degraded`` response instead of stalling the queue — PR-2's
   degradation contract applied as a load-shedding valve.
3. **Shard self-healing.**  A shard whose backend breaks respawns with
   exponential backoff and is warmed up by replaying the gateway's hot
   request set (see :mod:`repro.serve.shard`); while it rebuilds, its
   requests shed instead of erroring unstructured.
4. **Graceful drain.**  Shutdown stops accepting connections, lets
   every admitted request finish (up to ``drain`` policy), then closes
   the shards.

Protocol notes: responses on one connection come back **in completion
order**, not submission order (requests pipeline across shards) — use
``"id"`` for correlation.  ``stats`` / ``metrics`` / ``invalidate``
fan out to every shard and aggregate; ``shutdown`` drains the whole
gateway.  Oversized request lines are drained in bounded chunks and
answered with a structured error, counted in the metrics registry.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from threading import Lock
from typing import Dict, List, Optional, Sequence, Tuple

from ..robust import Budget
from .service import MAX_REQUEST_LINE, ServiceConfig
from .shard import Shard, ShardConfig, ShardSaturated, shed_response

_BUDGET_FIELDS = ("max_steps", "max_iterations", "max_table_entries", "deadline")


# ----------------------------------------------------------------------
# Consistent hashing.


class ConsistentHashRing:
    """A classic consistent-hash ring over shard ids.

    Each shard contributes ``replicas`` virtual points placed by
    SHA-256 (stable across processes and ``PYTHONHASHSEED``); a key is
    owned by the first point clockwise from its own hash.  With one
    shard added or removed only ~1/N of the keyspace moves — the
    property that keeps per-shard stores warm across topology changes.
    """

    def __init__(self, shard_ids: Sequence[int], replicas: int = 64):
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        points: List[Tuple[int, int]] = []
        for shard_id in shard_ids:
            for replica in range(replicas):
                points.append(
                    (self._hash(f"shard:{shard_id}:{replica}"), shard_id)
                )
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int(
            hashlib.sha256(key.encode("utf-8")).hexdigest()[:16], 16
        )

    def route(self, key: str) -> int:
        """The shard id owning ``key``."""
        index = bisect.bisect_right(self._hashes, self._hash(key))
        return self._owners[index % len(self._owners)]


def route_key(request: dict) -> str:
    """The routing key of one request: its program content when inline,
    else the file path (the per-shard service fingerprints the actual
    text, so routing only needs to be *stable*, not content-perfect)."""
    if "text" in request:
        return "text:" + str(request["text"])
    if "file" in request:
        return "file:" + str(request["file"])
    return "op:" + str(request.get("op", "analyze"))


# ----------------------------------------------------------------------
# Trace plumbing.


class _LockedTraceSink:
    """A lock-protected writer over one shared trace file.

    The gateway tracer writes on the event loop, each shard tracer on
    its dispatch thread, and each supervisor re-emits worker spans on
    that same thread — per-*tracer* single-threadedness keeps span
    stacks LIFO, but the shared file handle needs serialized writes.
    """

    __slots__ = ("_handle", "_lock")

    def __init__(self, handle):
        self._handle = handle
        self._lock = Lock()

    def write(self, line: str) -> None:
        with self._lock:
            self._handle.write(line)

    def flush(self) -> None:
        with self._lock:
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.flush()
            except (OSError, ValueError):
                pass
            self._handle.close()


# ----------------------------------------------------------------------
# Configuration.


@dataclass
class GatewayConfig:
    """Network, sharding, and overload-policy knobs."""

    host: str = "127.0.0.1"
    #: Port to bind (0 = ephemeral; read :attr:`Gateway.address` after
    #: :meth:`Gateway.start`).
    port: int = 0
    shards: int = 2
    #: Worker subprocesses per shard (0 = in-process backend).
    workers: int = 1
    #: Hard per-shard admission cap (queue depth beyond which requests
    #: are shed with ``reason: "queue-full"``).
    queue_depth: int = 64
    #: Soft threshold: at this queued depth and above, admitted
    #: requests get the degrade budget (None = queue_depth // 2).
    degrade_depth: Optional[int] = None
    #: Budget forced onto requests admitted above ``degrade_depth`` —
    #: tight enough that an overloaded shard answers with a sound
    #: ⊤-widened degraded result instead of queueing real work.
    degrade_max_steps: int = 2048
    degrade_max_iterations: int = 4
    degrade_deadline: float = 1.0
    #: Per-request wall-clock cap used for queue-lapse shedding when
    #: the request carries no deadline of its own (None = no default).
    request_deadline: Optional[float] = None
    #: Longest accepted request line; longer lines are drained and
    #: answered with a structured error.
    max_line_bytes: int = MAX_REQUEST_LINE
    #: Virtual points per shard on the hash ring.
    hash_replicas: int = 64
    #: Hot analyze requests remembered for shard warm-up.
    warm_set_size: int = 32
    #: Wall-clock bound for fan-out ops (stats/metrics/invalidate).
    fanout_timeout: float = 30.0
    #: Per-request timeout forwarded to each shard's supervisor.
    request_timeout: Optional[float] = None
    max_retries: int = 2


class Gateway:
    """The asyncio front end over consistent-hashed shards."""

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        shard_config: Optional[ShardConfig] = None,
        fault_plans: Optional[Dict[int, object]] = None,
        backend_factory=None,
        tracer=None,
        trace_path: Optional[str] = None,
    ):
        from ..obs.metrics import MetricsRegistry

        self.config = config if config is not None else GatewayConfig()
        if self.config.shards < 1:
            raise ValueError("gateway needs at least one shard")
        self.service_config = (
            service_config if service_config is not None else ServiceConfig()
        )
        self._shard_config = shard_config
        self._fault_plans = fault_plans or {}
        self._backend_factory = backend_factory or self._default_backend
        self.metrics = MetricsRegistry()
        self.tracer = tracer
        #: Cross-process trace plumbing (docs/tracing.md): with
        #: ``trace_path`` set, every layer — gateway event loop, each
        #: shard's dispatch thread, each shard's supervisor — gets its
        #: own process-named Tracer over one locked shared sink, and
        #: workers' spans arrive via the ``_spans`` wire block.  One
        #: request then yields one stitched tree in one file.
        self._trace_sink: Optional[_LockedTraceSink] = None
        self._trace_id: Optional[str] = None
        self._shard_tracers: List = []
        #: Backend generation per shard: a respawned supervisor gets a
        #: fresh process name ("supervisor-<shard>g<gen>"), so its span
        #: ids never collide with its predecessor's in the stitched
        #: trace.
        self._backend_generation: Dict[int, int] = {}
        if trace_path is not None:
            from ..obs.trace import Tracer, new_trace_id

            self._trace_sink = _LockedTraceSink(
                open(trace_path, "w", encoding="utf-8")
            )
            self._trace_id = new_trace_id()
            self.tracer = Tracer(
                self._trace_sink, process="gateway",
                trace_id=self._trace_id,
            )
            self._shard_tracers = [
                Tracer(
                    self._trace_sink, process=f"shard-{shard_id}",
                    trace_id=self._trace_id,
                )
                for shard_id in range(self.config.shards)
            ]
        self.requests_served = 0
        self.connections = 0
        self._server = None
        self._stopping = False
        #: Created lazily inside the running loop (asyncio primitives
        #: bind their loop at construction on Python 3.9).
        self._stopped: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        #: LRU of hot exact analyze requests (route key → payload),
        #: replayed into respawned shards; guarded by a lock because
        #: dispatch threads read it during warm-up.
        self._hot: "OrderedDict[str, dict]" = OrderedDict()
        self._hot_lock = Lock()
        self.ring = ConsistentHashRing(
            range(self.config.shards), replicas=self.config.hash_replicas
        )
        self.shards = [
            Shard(
                shard_id,
                self._backend_factory,
                config=self._shard_config_for(),
                warm_requests=self._hot_requests_for,
                metrics=self.metrics,
                tracer=(
                    self._shard_tracers[shard_id]
                    if self._shard_tracers else None
                ),
            )
            for shard_id in range(self.config.shards)
        ]

    # ------------------------------------------------------------------
    # Shard construction.

    def _shard_config_for(self) -> ShardConfig:
        if self._shard_config is not None:
            return self._shard_config
        return ShardConfig(queue_depth=self.config.queue_depth)

    def _default_backend(self, shard_id: int):
        """One backend per shard: a Supervisor with its own worker pool
        and store partition, or an in-process service when workers=0."""
        service_config = self.service_config
        if service_config.store_dir:
            # Partition the store by shard: consistent hashing sends a
            # program to one shard, so shards never contend on entries
            # and a respawn only re-reads its own partition.
            service_config = replace(
                service_config,
                store_dir=os.path.join(
                    service_config.store_dir, f"shard-{shard_id}"
                ),
            )
        tracer = None
        if self._trace_sink is not None:
            from ..obs.trace import Tracer

            generation = self._backend_generation.get(shard_id, 0) + 1
            self._backend_generation[shard_id] = generation
            tracer = Tracer(
                self._trace_sink,
                process=f"supervisor-{shard_id}g{generation}",
                trace_id=self._trace_id,
            )
        if self.config.workers > 0:
            from .supervisor import Supervisor, SupervisorConfig

            return Supervisor(
                service_config,
                SupervisorConfig(
                    workers=self.config.workers,
                    request_timeout=self.config.request_timeout,
                    max_retries=self.config.max_retries,
                ),
                fault_plan=self._fault_plans.get(shard_id),
                tracer=tracer,
            )
        from .service import AnalysisService

        return AnalysisService(service_config, tracer=tracer)

    def _hot_requests_for(self, shard_id: int) -> List[dict]:
        with self._hot_lock:
            items = list(self._hot.items())
        return [
            dict(payload) for key, payload in items
            if self.ring.route(key) == shard_id
        ]

    def _remember_hot(self, key: str, request: dict) -> None:
        if "text" not in request:
            return  # file contents may change under us; don't replay
        payload = {
            "op": "analyze",
            "text": request["text"],
            "entries": list(request.get("entries") or []),
        }
        with self._hot_lock:
            self._hot[key] = payload
            self._hot.move_to_end(key)
            while len(self._hot) > self.config.warm_set_size:
                self._hot.popitem(last=False)

    # ------------------------------------------------------------------
    # Lifecycle.

    def _stopped_event(self) -> asyncio.Event:
        if self._stopped is None:
            self._stopped = asyncio.Event()
        return self._stopped

    async def start(self) -> Tuple[str, int]:
        """Bind the socket; returns ``(host, port)`` actually bound."""
        self._stopped_event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes + 2,
        )
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None, "gateway not started"
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    async def serve_until_stopped(self) -> None:
        await self._stopped_event().wait()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, drain (or shed) the shards, close backends."""
        stopped = self._stopped_event()
        if self._stopping:
            await stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await asyncio.gather(*(
            loop.run_in_executor(None, shard.close, drain)
            for shard in self.shards
        ))
        # The shards have answered (or shed) everything they admitted;
        # let the in-flight answer tasks flush those responses to their
        # connections before anything is cancelled.  stop() may itself
        # run inside an answer task (a routed shutdown op), which must
        # not await or cancel itself.
        current = asyncio.current_task()
        tasks = [task for task in self._conn_tasks if task is not current]
        if drain and tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*tasks, return_exceptions=True),
                    self.config.fanout_timeout,
                )
            except asyncio.TimeoutError:
                pass
        for task in tasks:
            task.cancel()
        # Supervisor tracers close with their backends (Shard.close →
        # Supervisor.close); the gateway owns the rest of the family
        # and the shared handle.
        for tracer in [self.tracer, *self._shard_tracers]:
            if tracer is not None:
                tracer.close()
        if self._trace_sink is not None:
            self._trace_sink.close()
        stopped.set()

    # ------------------------------------------------------------------
    # Connections.

    async def _on_connection(self, reader, writer) -> None:
        self.connections += 1
        self.metrics.counter("gateway.connections").inc()
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while not self._stopping:
                line = await self._read_line(reader)
                if line is None:
                    break  # EOF (including mid-line: drop the partial)
                if line is OVERSIZED:
                    self.metrics.counter("gateway.shed", reason="oversized").inc()
                    self.metrics.counter("serve.input.oversized").inc()
                    await self._write(writer, write_lock, {
                        "ok": False,
                        "error": (
                            "request line exceeds "
                            f"{self.config.max_line_bytes} bytes"
                        ),
                        "error_kind": "shed",
                        "shed": True,
                        "reason": "oversized",
                        "retriable": False,
                    })
                    continue
                if not line.strip():
                    continue
                try:
                    request = json.loads(line)
                except ValueError as error:
                    self.metrics.counter("serve.input.malformed").inc()
                    await self._write(writer, write_lock, {
                        "ok": False, "error": f"bad JSON: {error}",
                    })
                    continue
                if not isinstance(request, dict):
                    self.metrics.counter("serve.input.malformed").inc()
                    await self._write(writer, write_lock, {
                        "ok": False, "error": "request must be an object",
                    })
                    continue
                if request.get("op") == "shutdown":
                    await self._write(writer, write_lock, {
                        "ok": True, "shutdown": True, "op": "shutdown",
                        **({"id": request["id"]} if "id" in request else {}),
                    })
                    asyncio.ensure_future(self.stop(drain=True))
                    break
                # Pipelining: each request runs concurrently; responses
                # are written in completion order under the lock.
                task = asyncio.ensure_future(
                    self._answer(request, writer, write_lock)
                )
                pending.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(pending.discard)
                task.add_done_callback(self._conn_tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client vanished mid-line/mid-write: their loss only
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_line(self, reader):
        """One request line, ``None`` on EOF, ``OVERSIZED`` after an
        overlong line has been drained in bounded chunks.

        The drain discards exactly the separator-free prefix the reader
        reported (``LimitOverrunError.consumed``), so the terminating
        newline — and the next, well-behaved request after it — is
        never swallowed along with the oversized line.
        """
        oversized = False
        while True:
            try:
                line = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError:
                return None  # EOF; a torn partial line is dropped
            except asyncio.LimitOverrunError as error:
                oversized = True
                try:
                    await reader.readexactly(max(1, error.consumed))
                except (asyncio.IncompleteReadError, ConnectionError):
                    return None
                continue
            except ConnectionError:
                return None
            return OVERSIZED if oversized else line

    async def _write(self, writer, lock: asyncio.Lock, response: dict) -> None:
        data = (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
        async with lock:
            writer.write(data)
            await writer.drain()

    async def _answer(self, request: dict, writer, lock) -> None:
        try:
            response = await self.handle_request(request)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — must answer something
            response = {
                "ok": False,
                "error": f"gateway failure: {error!r}",
                "op": request.get("op", "analyze"),
            }
            if "id" in request:
                response["id"] = request["id"]
        try:
            await self._write(writer, lock, response)
        except (ConnectionError, OSError):
            # Connection dropped mid-request: the work completed, the
            # client just is not there to read it.
            self.metrics.counter("gateway.responses_dropped").inc()

    # ------------------------------------------------------------------
    # Request handling (also usable without a socket, e.g. in tests).

    async def handle_request(self, request: dict) -> dict:
        started = time.perf_counter()
        op = str(request.get("op", "analyze"))
        self.metrics.counter("gateway.requests", op=op).inc()
        try:
            if op == "stats":
                response = await self._stats(request)
            elif op == "metrics":
                response = await self._merged_metrics(request)
            elif op == "invalidate":
                response = await self._broadcast(request)
            elif op == "shutdown":
                asyncio.ensure_future(self.stop(drain=True))
                response = {"ok": True, "shutdown": True, "op": "shutdown"}
                if "id" in request:
                    response["id"] = request["id"]
            else:
                response = await self._routed(request)
        except asyncio.CancelledError:
            raise
        except (ValueError, KeyError, TypeError) as error:
            response = {"ok": False, "error": f"bad request: {error}"}
            if "id" in request:
                response["id"] = request["id"]
            response["op"] = op
        self.requests_served += 1
        elapsed = time.perf_counter() - started
        self.metrics.histogram("gateway.request.seconds").observe(elapsed)
        if not response.get("ok", True) and not response.get("shed"):
            self.metrics.counter("gateway.errors").inc()
        response.setdefault(
            "gateway_ms", round(elapsed * 1000.0, 3)
        )
        return response

    def _deadline_of(self, request: dict) -> Optional[float]:
        spec = request.get("budget")
        if isinstance(spec, dict) and spec.get("deadline") is not None:
            try:
                return float(spec["deadline"])
            except (TypeError, ValueError):
                return self.config.request_deadline
        return self.config.request_deadline

    def _degrade_depth(self) -> int:
        if self.config.degrade_depth is not None:
            return self.config.degrade_depth
        return max(1, self.config.queue_depth // 2)

    def _degrade_budget(self) -> Budget:
        return Budget(
            max_steps=self.config.degrade_max_steps,
            max_iterations=self.config.degrade_max_iterations,
            deadline=self.config.degrade_deadline,
        )

    def _tighten_for_shedding(self, request: dict) -> dict:
        """The request with its budget tightened to the degrade budget
        (per-dimension minimum — a request can only get *stricter*)."""
        payload = dict(request)
        spec = payload.get("budget")
        requested = None
        if isinstance(spec, dict):
            requested = Budget(**{
                name: spec.get(name) for name in _BUDGET_FIELDS
            })
        effective = self._degrade_budget().tightened(requested)
        payload["budget"] = {
            name: getattr(effective, name) for name in _BUDGET_FIELDS
            if getattr(effective, name) is not None
        }
        payload.setdefault("on_budget", "degrade")
        return payload

    def _shed(
        self, request: dict, reason: str, shard=None, retry_after_ms=None
    ) -> dict:
        self.metrics.counter("gateway.shed", reason=reason).inc()
        return shed_response(
            request, reason, shard=shard, retry_after_ms=retry_after_ms
        )

    async def _routed(self, request: dict) -> dict:
        """Admission control, budget shedding, and the shard round-trip
        for one analyze/lint (or unknown — the service answers those
        with its own structured error) request."""
        key = route_key(request)
        shard_id = self.ring.route(key)
        shard = self.shards[shard_id]
        if self.tracer is not None:
            # The admission decision is synchronous (no awaits), so the
            # span stays strictly nested even under pipelining.
            self.tracer.begin("gateway.admit", op=str(
                request.get("op", "analyze")), shard=shard_id)
        try:
            depth = shard.depth()
            if depth >= self.config.queue_depth:
                # Hint how long the backlog ahead is expected to take:
                # a client that honors it retries once the queue has
                # plausibly drained instead of hammering a full shard.
                return self._shed(
                    request, "queue-full", shard=shard_id,
                    retry_after_ms=shard.estimated_wait(depth) * 1000.0,
                )
            deadline = self._deadline_of(request)
            if deadline is not None and shard.estimated_wait(depth) > deadline:
                # The queue ahead of this request is already expected
                # to outlast its deadline: refuse now, cheaply, instead
                # of shedding at dequeue after the wait.
                return self._shed(
                    request, "deadline-unreachable", shard=shard_id
                )
            payload = dict(request)
            if self.tracer is not None:
                payload["_trace"] = self.tracer.current_context()
                self.metrics.counter("trace.contexts_issued").inc()
            degraded_by_gateway = False
            if depth >= self._degrade_depth():
                payload = self._tighten_for_shedding(payload)
                degraded_by_gateway = True
                self.metrics.counter("gateway.degrade_applied").inc()
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            deadline_at = (
                time.monotonic() + deadline if deadline is not None else None
            )
            try:
                shard.submit(payload, future, loop, deadline_at)
            except ShardSaturated:
                return self._shed(
                    request, "queue-full", shard=shard_id,
                    retry_after_ms=shard.estimated_wait() * 1000.0,
                )
        finally:
            if self.tracer is not None:
                self.tracer.end()
        response = await future
        if degraded_by_gateway:
            response["degraded_by_gateway"] = True
        if (
            response.get("ok")
            and response.get("status") == "exact"
            and str(request.get("op", "analyze")) == "analyze"
        ):
            self._remember_hot(key, request)
        return response

    # ------------------------------------------------------------------
    # Fan-out ops.

    async def _ask_shard(self, shard: Shard, request: dict):
        """One fan-out request to one shard, bounded by the fan-out
        timeout; ``None`` when the shard cannot answer in time."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        timeout = self.config.fanout_timeout
        try:
            shard.submit(
                dict(request), future, loop, time.monotonic() + timeout
            )
        except Exception:  # noqa: BLE001 — saturated or draining
            return None
        try:
            return await asyncio.wait_for(future, timeout + 1.0)
        except asyncio.TimeoutError:
            return None

    async def _stats(self, request: dict) -> dict:
        answers = await asyncio.gather(*(
            self._ask_shard(shard, {"op": "stats"})
            for shard in self.shards
        ))
        shards = []
        for shard, answer in zip(self.shards, answers):
            block = shard.stats()
            if isinstance(answer, dict) and answer.get("ok"):
                block["backend"] = {
                    key: answer[key]
                    for key in ("stats", "supervisor")
                    if key in answer
                }
            shards.append(block)
        response = {
            "ok": True,
            "op": "stats",
            "stats": {
                "gateway": self.stats(),
                "shards": shards,
            },
        }
        if "id" in request:
            response["id"] = request["id"]
        return response

    async def _merged_metrics(self, request: dict) -> dict:
        from ..obs.metrics import MetricsRegistry

        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        answers = await asyncio.gather(*(
            self._ask_shard(shard, {"op": "metrics"})
            for shard in self.shards
        ))
        for answer in answers:
            if isinstance(answer, dict) and isinstance(
                answer.get("metrics"), dict
            ):
                try:
                    merged.merge(answer["metrics"])
                except (ValueError, KeyError, TypeError):
                    pass  # one shard's bad delta must not hide the rest
        response = {"ok": True, "op": "metrics", "metrics": merged.snapshot()}
        if "id" in request:
            response["id"] = request["id"]
        return response

    async def _broadcast(self, request: dict) -> dict:
        answers = await asyncio.gather(*(
            self._ask_shard(shard, dict(request)) for shard in self.shards
        ))
        with self._hot_lock:
            self._hot.clear()
        reached = sum(
            1 for answer in answers
            if isinstance(answer, dict) and answer.get("ok")
        )
        response = {
            "ok": reached == len(self.shards),
            "op": request.get("op"),
            "invalidated": True,
            "shards_reached": reached,
        }
        if reached < len(self.shards):
            # A saturated or respawning shard could not take the
            # broadcast: structured and retriable, like any other
            # overload refusal (the hot set is already cleared, so a
            # retry only has to reach the shards, not redo work).
            response["error"] = (
                f"invalidate reached {reached}/{len(self.shards)} shards"
            )
            response["error_kind"] = "partial-fanout"
            response["retriable"] = True
            # The unreached shards were saturated or respawning; hint
            # the longest expected drain among them as the backoff.
            response["retry_after_ms"] = round(max(
                (shard.estimated_wait() for shard in self.shards),
                default=0.0,
            ) * 1000.0, 3)
        if "id" in request:
            response["id"] = request["id"]
        return response

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "shards": self.config.shards,
            "workers_per_shard": self.config.workers,
            "requests_served": self.requests_served,
            "connections": self.connections,
            "queue_depth": self.config.queue_depth,
            "degrade_depth": self._degrade_depth(),
            "hot_set": len(self._hot),
            "metrics": self.metrics.snapshot(),
        }


#: Marker returned by :meth:`Gateway._read_line` for drained overlong
#: lines (distinct from both data and EOF).
OVERSIZED = object()


async def serve_gateway(gateway: Gateway) -> None:
    """Start and run ``gateway`` until a shutdown request stops it."""
    await gateway.start()
    try:
        await gateway.serve_until_stopped()
    finally:
        await gateway.stop()


__all__ = [
    "ConsistentHashRing",
    "Gateway",
    "GatewayConfig",
    "route_key",
    "serve_gateway",
]
