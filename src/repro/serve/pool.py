"""Crash-isolated worker subprocesses: spawn, talk, time out, kill.

This module is the *mechanics* layer of the supervised pool — process
lifecycle and the JSON-lines pipe protocol; the *policy* layer (retry,
backoff, error classification, chaos injection) lives in
:mod:`repro.serve.supervisor`.

A :class:`Worker` wraps one ``python -m repro.serve.worker`` subprocess:
the service config goes down the pipe first, then one request line per
:meth:`Worker.request` call, which blocks for the matching response
line up to a wall-clock timeout.  A background reader thread owns the
subprocess's stdout, so a timeout costs nothing but a queue wait and
the caller can SIGKILL the worker at any moment without deadlocking on
a half-written pipe.

A :class:`WorkerPool` keeps ``size`` slots, hands out live workers
round-robin, respawns crashed slots lazily with per-slot exponential
backoff (a slot that keeps dying waits longer and longer before it
burns another fork), and reaps everything on :meth:`WorkerPool.close`.

Failure surface, as exceptions (both :class:`~repro.errors.ReproError`
subclasses so CLI guards already catch them):

* :class:`WorkerCrashed` — the subprocess died (signal, OOM kill,
  interpreter abort) before responding.  Retriable: the request never
  completed, analysis is a pure function, running it again is safe.
* :class:`WorkerTimeout` — no response within the limit.  The caller
  must assume the worker is wedged and kill it; retrying the same
  request would wedge the replacement too.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
import time
from typing import List, Optional, Tuple

from ..errors import ReproError


class WorkerCrashed(ReproError):
    """The worker subprocess died before answering (retriable)."""


class WorkerTimeout(ReproError):
    """The worker did not answer within the wall-clock limit
    (non-retriable; the worker must be killed)."""


def _worker_environment() -> dict:
    """The subprocess environment, with this repro package importable
    even when the parent was launched via PYTHONPATH rather than an
    installed distribution."""
    environment = dict(os.environ)
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return environment


class Worker:
    """One supervised subprocess speaking the JSON-lines protocol."""

    def __init__(self, config_wire: dict, slot: int = 0):
        self.slot = slot
        self.requests_handled = 0
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            encoding="utf-8",
            env=_worker_environment(),
        )
        self._lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self._reader = threading.Thread(
            target=self._drain_stdout, daemon=True
        )
        self._reader.start()
        self._send_line(json.dumps(config_wire, sort_keys=True))

    # ------------------------------------------------------------------

    def _drain_stdout(self) -> None:
        try:
            for line in self.process.stdout:
                self._lines.put(line)
        except (OSError, ValueError):
            pass
        self._lines.put(None)  # EOF marker: the worker is gone

    def _send_line(self, text: str) -> None:
        try:
            self.process.stdin.write(text + "\n")
            self.process.stdin.flush()
        except (OSError, ValueError) as error:
            raise WorkerCrashed(
                f"worker {self.slot} pipe closed: {error}"
            ) from error

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    @property
    def pid(self) -> int:
        return self.process.pid

    # ------------------------------------------------------------------

    def request(
        self,
        payload: dict,
        timeout: Optional[float] = None,
        on_interim=None,
    ) -> dict:
        """Send one request, block for its response line.

        The worker may write **interim lines** (objects carrying an
        ``"_interim"`` key — currently checkpoint snapshots) before the
        response proper; each is handed to ``on_interim`` (ignored when
        None) and the wait continues against the *same* wall-clock
        deadline, so a wedged worker cannot stay alive by trickling
        checkpoints.

        Raises :class:`WorkerTimeout` when no response arrives in
        ``timeout`` seconds (the worker is *not* killed here — that is
        the caller's policy decision) and :class:`WorkerCrashed` when
        the pipe breaks or EOF arrives instead of a response."""
        self._send_line(json.dumps(payload, sort_keys=True))
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                line = self._lines.get(timeout=remaining)
            except queue.Empty:
                raise WorkerTimeout(
                    f"worker {self.slot} gave no response within {timeout}s"
                ) from None
            if line is None:
                status = self.process.poll()
                raise WorkerCrashed(
                    f"worker {self.slot} died (exit status {status}) "
                    "before responding"
                )
            try:
                response = json.loads(line)
            except ValueError as error:
                raise WorkerCrashed(
                    f"worker {self.slot} wrote a garbled response: {error}"
                ) from error
            if not isinstance(response, dict):
                raise WorkerCrashed(
                    f"worker {self.slot} wrote a non-object response"
                )
            if "_interim" in response:
                if on_interim is not None:
                    try:
                        on_interim(response)
                    except Exception:
                        pass  # a bad observer must not break the protocol
                continue
            self.requests_handled += 1
            return response

    def kill(self) -> None:
        """SIGKILL the subprocess and reap it; safe to call twice."""
        try:
            self.process.kill()
        except OSError:
            pass
        try:
            self.process.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            pass
        for stream in (self.process.stdin, self.process.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass


class WorkerPool:
    """``size`` worker slots with lazy spawn and per-slot backoff."""

    def __init__(
        self,
        config_wire: dict,
        size: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.config_wire = config_wire
        self.size = size
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._workers: List[Optional[Worker]] = [None] * size
        #: Consecutive crashes per slot; reset on any success.
        self._strikes = [0] * size
        self._next_slot = 0
        self.spawned = 0
        self.crashes = 0
        self.kills = 0
        self.closed = False

    # ------------------------------------------------------------------

    def _spawn(self, slot: int) -> Worker:
        strikes = self._strikes[slot]
        if strikes:
            # Exponential backoff before burning another fork on a slot
            # that keeps dying: base * 2^(strikes-1), capped.
            time.sleep(min(
                self.backoff_cap, self.backoff_base * (2 ** (strikes - 1))
            ))
        worker = Worker(self.config_wire, slot=slot)
        self._workers[slot] = worker
        self.spawned += 1
        return worker

    def checkout(self) -> Tuple[int, Worker]:
        """The next slot's live worker (round-robin), spawning or
        respawning as needed."""
        if self.closed:
            raise ReproError("worker pool is closed")
        slot = self._next_slot
        self._next_slot = (slot + 1) % self.size
        worker = self._workers[slot]
        if worker is None or not worker.alive:
            if worker is not None:
                worker.kill()  # reap the corpse
            worker = self._spawn(slot)
        return slot, worker

    def workers(self) -> List[Tuple[int, Worker]]:
        """Every currently-spawned live worker (for broadcasts)."""
        return [
            (slot, worker)
            for slot, worker in enumerate(self._workers)
            if worker is not None and worker.alive
        ]

    # ------------------------------------------------------------------
    # Outcome reporting (drives the backoff).

    def report_crash(self, slot: int) -> None:
        self.crashes += 1
        self._strikes[slot] += 1
        worker = self._workers[slot]
        if worker is not None:
            worker.kill()
            self._workers[slot] = None

    def report_kill(self, slot: int) -> None:
        """The supervisor killed this worker deliberately (timeout);
        no backoff strike — the *request* was bad, not the slot."""
        self.kills += 1
        worker = self._workers[slot]
        if worker is not None:
            worker.kill()
            self._workers[slot] = None

    def report_success(self, slot: int) -> None:
        self._strikes[slot] = 0

    # ------------------------------------------------------------------

    def close(self) -> None:
        self.closed = True
        for worker in self._workers:
            if worker is not None:
                worker.kill()
        self._workers = [None] * self.size

    def stats(self) -> dict:
        return {
            "size": self.size,
            "alive": len(self.workers()),
            "spawned": self.spawned,
            "crashes": self.crashes,
            "kills": self.kills,
        }


__all__ = ["Worker", "WorkerCrashed", "WorkerPool", "WorkerTimeout"]
