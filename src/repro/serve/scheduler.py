"""Bottom-up, SCC-scheduled fixpoint runs with cache seeding.

The monolithic driver (:meth:`repro.analysis.driver.Analyzer.analyze`)
re-runs each entry goal over the whole program until the extension table
stops changing: every pass re-executes every reachable predicate.  The
scheduler replaces that with a component-structured run:

1. **Seed** — summaries cached for *clean* SCCs (Merkle fingerprint
   unchanged, see :mod:`repro.serve.callgraph`) are installed as frozen
   table entries.  The abstract machine returns frozen summaries without
   re-running any clause, in every pass.

2. **Discover** — one pass from the entry pattern records which calling
   patterns actually arise.  Frozen components are crossed in O(1);
   dirty components are explored and get provisional entries.

3. **Stabilize bottom-up** — unfrozen calling patterns are grouped by
   SCC and iterated to a local fixpoint in callees-first order (via
   :meth:`~repro.analysis.driver.Analyzer.pattern_fixpoint`).  When a
   component stabilizes, its entries are frozen, so callers above it
   never re-iterate it — each component's summary is computed once.

4. **Verify & restrict** — the table is thawed and the entry pattern is
   re-run until unchanged, recording every (predicate, pattern) key it
   touches.  Entries not touched (stale seeds the edited program no
   longer reaches) are dropped.  This final sweep is what makes the
   served result independent of cache state: even a wrong seed would be
   re-explored and corrected here, so cache validity is a performance
   matter, never a soundness one.

Entry specs are processed deepest-SCC-first and each exact spec's final
entries seed the later specs of the same request, so shared components
are analyzed once per request, not once per entry.  Per-spec isolation
and the degradation contract of :mod:`repro.robust` are preserved: a
budget trip while analyzing one spec widens only what that spec touched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.driver import Analyzer, EntryReport, EntrySpec
from ..analysis.patterns import Pattern
from ..analysis.results import AnalysisResult
from ..analysis.table import ExtensionTable
from ..errors import BudgetExceeded, InjectedFault, ReproError
from ..prolog.terms import Indicator
from ..robust import (
    STATUS_DEGRADED,
    STATUS_EXACT,
    STATUS_FAILED,
    Budget,
)
from .callgraph import CallGraph

#: A seedable summary: (indicator, calling, success, may_share).
Seed = Tuple[Indicator, Pattern, Optional[Pattern], frozenset]


@dataclass
class ScheduleStats:
    """What the scheduler did for one request (observability)."""

    sccs_total: int = 0
    seeds_planted: int = 0
    seeds_dropped: int = 0
    sccs_stabilized: int = 0
    discovery_passes: int = 0
    stabilization_passes: int = 0
    verification_passes: int = 0
    #: Entries planted from a resumed checkpoint (0 = fresh run).
    resume_planted: int = 0

    def to_dict(self) -> dict:
        return {
            "sccs_total": self.sccs_total,
            "seeds_planted": self.seeds_planted,
            "seeds_dropped": self.seeds_dropped,
            "sccs_stabilized": self.sccs_stabilized,
            "discovery_passes": self.discovery_passes,
            "stabilization_passes": self.stabilization_passes,
            "verification_passes": self.verification_passes,
            "resume_planted": self.resume_planted,
        }


class SCCScheduler:
    """Runs analyses over one compiled program, component by component."""

    def __init__(self, analyzer: Analyzer, graph: Optional[CallGraph] = None):
        self.analyzer = analyzer
        self.graph = graph if graph is not None else CallGraph.from_compiled(
            analyzer.compiled
        )

    # ------------------------------------------------------------------

    def analyze(
        self,
        specs: Sequence[EntrySpec],
        seeds: Sequence[Seed] = (),
        budget: Optional[Budget] = None,
        fault_plan=None,
        on_budget: str = "degrade",
        checkpoint=None,
        resume: Optional[dict] = None,
    ) -> Tuple[AnalysisResult, ScheduleStats]:
        """Analyze ``specs``, reusing ``seeds`` where the program reaches
        them.  Returns the result plus scheduling statistics.

        ``checkpoint`` is an optional
        :class:`~repro.robust.checkpoint.CheckpointPolicy` notified
        after every charged fixpoint pass and flushed (pre-widening)
        when a spec degrades.  ``resume`` is a validated checkpoint
        snapshot: its entries are planted *before* the cache seeds (so
        known-final cache data wins ties), frozen entries staying
        frozen — a stabilized component from the previous attempt is
        never re-iterated — while mid-iteration entries continue
        stabilizing from where they stopped.  The thawed verification
        sweep re-confirms everything either way, so the served result
        is identical to a from-scratch run."""
        if budget is None:
            budget = Budget(max_iterations=self.analyzer.max_iterations)
        budget.start()
        stats = ScheduleStats(sccs_total=len(self.graph.sccs))
        merged = ExtensionTable()
        reports: Dict[int, EntryReport] = {}
        iterations = 0
        instructions = 0
        started = time.perf_counter()
        #: request-local pool: summaries finalized by earlier specs.
        pool: Dict[Tuple[Indicator, Pattern], Seed] = {
            (indicator, calling): (indicator, calling, success, share)
            for indicator, calling, success, share in seeds
        }
        # Deepest components first, so shared summaries are finalized
        # before the specs that merely call into them.
        order = sorted(
            range(len(specs)),
            key=lambda position: (
                self.graph.scc_of.get(specs[position].indicator, -1),
                position,
            ),
        )
        metrics = self.analyzer.metrics
        tracer = self.analyzer.tracer
        self.analyzer.reset_state_dumps()
        for position in order:
            spec = specs[position]
            spec_table = ExtensionTable(
                budget=budget, fault_plan=fault_plan, metrics=metrics
            )
            if resume is not None:
                from ..robust.checkpoint import plant

                stats.resume_planted += plant(
                    resume, spec_table, respect_frozen=True, metrics=metrics
                )
            planted = 0
            for indicator, calling, success, share in pool.values():
                spec_table.seed(indicator, calling, success, share)
                planted += 1
            stats.seeds_planted += planted
            machine = self.analyzer.machine_for(spec_table, budget, fault_plan)
            report = EntryReport(spec)
            touched_all = spec_table.begin_touch_trace()
            spec_started = time.perf_counter()
            if tracer is not None:
                tracer.begin("entry_spec", spec=str(spec), seeds=planted)
            try:
                self._run_spec(spec, spec_table, machine, report, stats,
                               budget, fault_plan, checkpoint)
            except (BudgetExceeded, InjectedFault) as exc:
                if on_budget == "raise":
                    if tracer is not None:
                        tracer.end(error=repr(exc))
                    raise
                # Snapshot the pre-widening iterate: the widening below
                # erases this spec's partial work, and a follow-up
                # request should resume it rather than re-derive ⊤.
                if checkpoint is not None:
                    checkpoint.flush(spec_table)
                report.status = STATUS_DEGRADED
                report.reason = str(exc)
            except ReproError as exc:
                if on_budget == "raise":
                    if tracer is not None:
                        tracer.end(error=repr(exc))
                    raise
                report.status = STATUS_FAILED
                report.reason = str(exc)
            if tracer is not None:
                tracer.end(status=report.status)
            if metrics is not None:
                metrics.histogram("analysis.entry.seconds").observe(
                    time.perf_counter() - spec_started
                )
                metrics.counter("analysis.specs", status=report.status).inc()
            spec_table.end_touch_trace()
            if report.status != STATUS_EXACT:
                # Sound degradation, scoped to what this spec touched:
                # drop unconsulted seeds first, then widen the rest to ⊤
                # (the driver's contract, see repro.robust).
                spec_table.disarm()
                spec_table.restrict_to(touched_all)
                spec_table.entry(spec.indicator, spec.pattern)
                spec_table.widen_to_top(report.status)
            else:
                for indicator, entry in spec_table.all_entries():
                    pool[(indicator, entry.calling)] = (
                        indicator, entry.calling, entry.success, entry.may_share
                    )
            merged.merge(spec_table)
            iterations += report.iterations
            instructions += machine.instruction_count
            reports[position] = report
        if metrics is not None:
            for name, value in stats.to_dict().items():
                if value:
                    metrics.counter(f"serve.scheduler.{name}").inc(value)
        elapsed = time.perf_counter() - started
        result = AnalysisResult(
            table=merged,
            compiled=self.analyzer.compiled,
            entries=list(specs),
            iterations=iterations,
            instructions_executed=instructions,
            seconds=elapsed,
            depth=self.analyzer.depth,
            entry_reports=[reports[i] for i in range(len(specs))],
        )
        return result, stats

    # ------------------------------------------------------------------

    def _run_spec(
        self,
        spec: EntrySpec,
        table: ExtensionTable,
        machine,
        report: EntryReport,
        stats: ScheduleStats,
        budget: Budget,
        fault_plan,
        checkpoint=None,
    ) -> None:
        graph = self.graph
        tracer = self.analyzer.tracer
        # --- 2. discovery ---------------------------------------------
        self._charge(budget, fault_plan)
        report.iterations += 1
        stats.discovery_passes += 1
        if tracer is not None:
            tracer.event("discovery_pass")
        machine.run_pattern(spec.indicator, spec.pattern)
        if checkpoint is not None:
            checkpoint.note_pass(table)
        # --- 3. bottom-up stabilization -------------------------------
        # Components are visited callees-first; when one stabilizes,
        # every entry at or below it is final and gets frozen, so the
        # components above never iterate it again.
        for scc_index in range(len(graph.sccs)):
            while True:
                keys = self._unfrozen_keys(table, graph, scc_index)
                if not keys:
                    break
                stats.sccs_stabilized += 1
                if tracer is not None:
                    tracer.begin(
                        "scc", index=scc_index, patterns=len(keys)
                    )
                try:
                    stable = False
                    while not stable:
                        before = table.changes
                        for indicator, calling in keys:
                            passes = self.analyzer.pattern_fixpoint(
                                machine, indicator, calling,
                                budget=budget, fault_plan=fault_plan,
                                on_pass=(
                                    None if checkpoint is None
                                    else lambda: checkpoint.note_pass(table)
                                ),
                            )
                            report.iterations += passes
                            stats.stabilization_passes += passes
                        stable = table.changes == before
                        keys = self._unfrozen_keys(table, graph, scc_index)
                finally:
                    if tracer is not None:
                        tracer.end()
                self._freeze_upto(table, graph, scc_index)
        # --- 4. verification & restriction ----------------------------
        # Thaw everything and re-run the entry to a confirmed fixpoint,
        # tracing reachability.  With correct seeds this is one pass; if
        # a seed were ever wrong, this loop would redo the work and
        # converge to the true fixpoint anyway.
        table.thaw()
        while True:
            reachable = table.begin_touch_trace()
            self._charge(budget, fault_plan)
            report.iterations += 1
            stats.verification_passes += 1
            if tracer is not None:
                tracer.event("verification_pass")
            before = table.changes
            machine.run_pattern(spec.indicator, spec.pattern)
            if checkpoint is not None:
                checkpoint.note_pass(table)
            if table.changes == before:
                break
        stats.seeds_dropped += table.restrict_to(reachable)

    @staticmethod
    def _charge(budget: Budget, fault_plan) -> None:
        if fault_plan is not None and fault_plan.watches("iteration"):
            fault_plan.fire("iteration")
        budget.charge_iteration()

    @staticmethod
    def _unfrozen_keys(
        table: ExtensionTable, graph: CallGraph, scc_index: int
    ) -> List[Tuple[Indicator, Pattern]]:
        keys: List[Tuple[Indicator, Pattern]] = []
        for indicator in graph.members(scc_index):
            for entry in table.entries_for(indicator):
                if not entry.frozen:
                    keys.append((indicator, entry.calling))
        return keys

    @staticmethod
    def _freeze_upto(
        table: ExtensionTable, graph: CallGraph, scc_index: int
    ) -> None:
        """Freeze every entry in components at or below ``scc_index``.

        Exploration only descends the condensation, so at the moment
        component ``scc_index`` stabilizes, every unfrozen entry at or
        below it was iterated to its fixpoint by the sweeps just run."""
        for indicator, entry in table.all_entries():
            if entry.frozen:
                continue
            owner = graph.scc_of.get(indicator)
            if owner is not None and owner <= scc_index:
                table.freeze(entry)


__all__ = ["SCCScheduler", "ScheduleStats", "Seed"]
