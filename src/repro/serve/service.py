"""The analysis service: requests in, cached or freshly computed facts out.

:class:`AnalysisService` is the long-lived object behind the
``repro-serve`` CLI.  One request names a program (inline text or a
file), entry calling patterns, and optionally analysis knobs and a
budget; the response carries the analysis (or lint) facts plus cache
and degradation status.  The serving invariant:

    **Served results are the results a from-scratch ``analyze()`` of the
    current program text would produce.**  The cache can only make
    answers faster, never different: full-result hits are keyed by
    fingerprints covering everything the analysis depends on, and
    partially-seeded runs end with a thawed verification sweep that
    recomputes anything a stale summary could have influenced (see
    :mod:`repro.serve.scheduler`).

Request protocol (JSON object per line on stdin, response per line on
stdout; see docs/serve.md):

``{"op": "analyze", "file": "p.pl", "entries": ["main(g, var)"]}``
``{"op": "analyze", "text": "...", "entries": [...], "budget": {"max_steps": 10000}}``
``{"op": "lint", "file": "p.pl", "entries": [...]}``
``{"op": "stats"}`` / ``{"op": "invalidate"}`` / ``{"op": "shutdown"}``

Degraded results (budget trips, injected faults) are reported with
``"status": "degraded"`` and are **never stored**: a later request with
a healthier budget must recompute, not inherit imprecision.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.driver import Analyzer, parse_entry_spec
from ..errors import ReproError
from ..prolog.library import with_library
from ..prolog.program import Program
from ..robust import Budget
from ..wam.compile import CompilerOptions
from .callgraph import CallGraph
from .fingerprint import (
    config_fingerprint,
    entry_fingerprint,
    predicate_fingerprints,
    request_fingerprint,
)
from .scheduler import SCCScheduler, Seed
from .store import (
    DiskStore,
    ResultStore,
    entry_from_json,
    table_to_json,
)

#: Cache outcome of one analyze request.
HIT = "hit"           # full-result fingerprint match; no fixpoint ran
INCREMENTAL = "incremental"  # some SCC summaries reused, rest recomputed
MISS = "miss"         # nothing reusable


@dataclass
class ServiceConfig:
    """Server-wide settings; per-request knobs may tighten, not loosen."""

    depth: int = 4
    list_aware: bool = True
    subsumption: bool = False
    on_undefined: str = "error"
    environment_trimming: bool = True
    library: bool = False
    #: Server-wide per-request resource caps (None = unlimited).
    budget: Optional[Budget] = None
    #: In-memory store caps.
    max_entries: Optional[int] = 1024
    max_bytes: Optional[int] = 64 * 1024 * 1024
    #: Optional on-disk store directory.
    store_dir: Optional[str] = None
    #: Write-ahead journal for the disk store (replayed on startup).
    journal: bool = False
    #: Checkpoint cadence: snapshot the extension table every this many
    #: fixpoint passes (plus once on budget-deadline proximity), so a
    #: crashed or budget-tripped request resumes instead of restarting.
    #: None disables checkpointing entirely.
    checkpoint_every: Optional[int] = 16


class AnalysisService:
    """A long-lived analyzer with content-addressed result reuse."""

    def __init__(self, config: Optional[ServiceConfig] = None, tracer=None):
        self.config = config if config is not None else ServiceConfig()
        #: repro.obs: the service always carries a registry — per-request
        #: accounting costs a few counter bumps, and the ``metrics`` op /
        #: ``stats`` snapshot need something to report.  It is threaded
        #: into every analyzer, table and machine the service creates, so
        #: the per-instruction and table counters aggregate here too.
        from ..obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        #: Optional repro.obs.Tracer for request → entry spec → SCC spans
        #: (the ``--trace-out`` flag of repro-serve).
        self.tracer = tracer
        self.store = ResultStore(
            max_entries=self.config.max_entries,
            max_bytes=self.config.max_bytes,
            disk=(
                DiskStore(
                    self.config.store_dir,
                    journal=self.config.journal,
                    metrics=self.metrics,
                )
                if self.config.store_dir
                else None
            ),
            metrics=self.metrics,
        )
        self.requests_served = 0
        #: (program_fp, config knobs) → (Analyzer, CallGraph, merkle fps,
        #: predicate fps); compiling is itself worth caching.
        self._compiled: Dict[str, Tuple] = {}
        #: Extra checkpoint sink: the worker loop points this at stdout
        #: so every snapshot also reaches the supervisor as an interim
        #: wire line (resume-on-retry survives the worker's death even
        #: without a shared disk store).
        self.checkpoint_wire_sink = None
        #: Chaos hook (set per request by the worker loop from a
        #: ``_chaos {"kill_at_iteration": m}`` directive): SIGKILL this
        #: process at the m-th fixpoint pass of the request, *after*
        #: the pass's checkpoint decision — the deterministic stand-in
        #: for a crash mid-fixpoint.
        self.kill_at_iteration: Optional[int] = None

    # ------------------------------------------------------------------
    # Request handling.

    def handle(self, request: dict) -> dict:
        """Process one request dict; never raises for request-level
        failures — errors come back as ``{"ok": false, ...}``."""
        started = time.perf_counter()
        op = request.get("op", "analyze")
        # Trace context (docs/tracing.md): stripped like _chaos, and —
        # when this service traces — turned into a cross-process parent
        # edge on the request's root span.
        trace_context = request.pop("_trace", None)
        if self.tracer is not None:
            self.tracer.begin(
                "request",
                _parent_ref=(
                    trace_context.get("parent")
                    if isinstance(trace_context, dict) else None
                ),
                op=op,
            )
        try:
            response = self._dispatch(request)
        except ReproError as error:
            response = {"ok": False, "error": str(error)}
        except (OSError, ValueError, KeyError, TypeError) as error:
            response = {"ok": False, "error": f"bad request: {error}"}
        finally:
            if self.tracer is not None:
                self.tracer.end()
        if "id" in request:
            response["id"] = request["id"]
        response.setdefault("op", request.get("op"))
        elapsed = time.perf_counter() - started
        response["elapsed_ms"] = round(elapsed * 1000.0, 3)
        self.requests_served += 1
        metrics = self.metrics
        metrics.counter("serve.requests", op=str(op)).inc()
        metrics.histogram("serve.request.seconds").observe(elapsed)
        if not response.get("ok", True):
            metrics.counter("serve.errors").inc()
        return response

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op", "analyze")
        if op == "analyze":
            return self._analyze(request)
        if op == "lint":
            return self._lint(request)
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            return {"ok": True, "metrics": self.metrics.snapshot()}
        if op == "invalidate":
            self.store.clear()
            self._compiled.clear()
            return {"ok": True, "invalidated": True}
        if op == "shutdown":
            return {"ok": True, "shutdown": True}
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------

    def _load_text(self, request: dict) -> str:
        if "text" in request:
            return request["text"]
        if "file" in request:
            with open(request["file"], "r", encoding="utf-8") as handle:
                return handle.read()
        raise ValueError("request needs 'text' or 'file'")

    def _budget_for(self, request: dict) -> Optional[Budget]:
        """The request's effective budget: server caps tightened by the
        request's own limits; a fresh object every time."""
        spec = request.get("budget")
        requested = None
        if spec:
            requested = Budget(
                max_steps=spec.get("max_steps"),
                max_iterations=spec.get("max_iterations"),
                max_table_entries=spec.get("max_table_entries"),
                deadline=spec.get("deadline"),
            )
        base = self.config.budget
        if base is not None:
            return base.tightened(requested)
        if requested is not None:
            return requested.copy()
        return None

    def _prepare(self, text: str):
        """Parse, compile and fingerprint; memoized per program text
        fingerprint (the parse) and program fingerprint (the rest)."""
        config = self.config
        program = (
            with_library(text) if config.library else Program.from_text(text)
        )
        fps = predicate_fingerprints(program)
        from .fingerprint import _hash

        program_key = _hash(
            ["prepared"]
            + sorted(f"{i[0]}/{i[1]}:{fp}" for i, fp in fps.items())
        )
        cached = self._compiled.get(program_key)
        if cached is not None:
            # The tracer can change between requests (workers swap in a
            # per-request tracer); keep the memoized analyzer in sync so
            # cached programs still emit entry_spec/scc spans.
            cached[1].tracer = self.tracer
            return cached
        analyzer = Analyzer(
            program,
            options=CompilerOptions(
                environment_trimming=config.environment_trimming
            ),
            depth=config.depth,
            list_aware=config.list_aware,
            subsumption=config.subsumption,
            on_undefined=config.on_undefined,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        graph = CallGraph.from_compiled(analyzer.compiled)
        merkle = graph.merkle_fingerprints(fps)
        prepared = (program, analyzer, graph, merkle)
        if len(self._compiled) > 64:  # a small bounded memo, LRU-ish
            self._compiled.pop(next(iter(self._compiled)))
        self._compiled[program_key] = prepared
        return prepared

    def _config_fp(self) -> str:
        config = self.config
        return config_fingerprint(
            depth=config.depth,
            list_aware=config.list_aware,
            subsumption=config.subsumption,
            on_undefined=config.on_undefined,
            environment_trimming=config.environment_trimming,
        )

    # ------------------------------------------------------------------

    def _analyze(self, request: dict) -> dict:
        response, _ = self._analyze_core(request, need_live=False)
        return response

    def _analyze_core(self, request: dict, need_live: bool):
        """The shared analyze path.

        Returns ``(response, live_result)``; ``live_result`` is the
        in-process :class:`AnalysisResult` when the fixpoint actually ran
        (or when ``need_live`` forces a seeded run on a full-result hit —
        seeded means zero re-iteration of clean components), else None.
        """
        text = self._load_text(request)
        entries = request.get("entries")
        if not entries:
            raise ValueError("request needs non-empty 'entries'")
        program, analyzer, graph, merkle = self._prepare(text)
        specs = [parse_entry_spec(entry) for entry in entries]
        config_fp = self._config_fp()
        entry_fps = [entry_fingerprint(spec) for spec in specs]
        reachable = graph.reachable_sccs([spec.indicator for spec in specs])
        request_fp = request_fingerprint(
            config_fp, entry_fps, [merkle[i] for i in reachable]
        )
        # ---- gather seeds from clean SCC summaries --------------------
        seeds: List[Seed] = []
        seeded_sccs = 0
        for scc_index in reachable:
            stored = self.store.get(f"scc:{merkle[scc_index]}:{config_fp}")
            if stored is None:
                continue
            seeded_sccs += 1
            for item in stored["entries"]:
                seeds.append(entry_from_json(item))
        # ---- full-result hit: no fixpoint at all ----------------------
        cached = None if need_live else self.store.get(f"result:{request_fp}")
        if cached is not None:
            self.metrics.counter("serve.cache", outcome=HIT).inc()
            return (
                {
                    "ok": True,
                    "status": cached["status"],
                    "result": cached,
                    "cache": {
                        "outcome": HIT,
                        "sccs_total": len(reachable),
                        "sccs_seeded": seeded_sccs,
                    },
                },
                None,
            )
        # ---- resume from the best valid checkpoint --------------------
        # Two sources, best snapshot_rank wins: one attached to the
        # request (the supervisor replays the best snapshot a crashed
        # worker shipped up the wire) and one in the durable store
        # (survives every worker in the pool dying).  Rank is
        # (frozen, cursor), not cursor alone: the verification phase
        # thaws the table, so the newest snapshot can carry less durable
        # progress than an earlier stabilization-boundary one.  Both
        # sources are best-effort: an invalid snapshot is ignored and
        # counted, never an error.
        from ..robust import checkpoint as ckpt

        checkpoint_key = f"{self.store.CHECKPOINT_PREFIX}{request_fp}"
        resume = None
        for candidate in (
            request.get("resume"),
            self.store.get_checkpoint(checkpoint_key),
        ):
            if candidate is None:
                continue
            loaded = ckpt.load(
                candidate, config=config_fp, key=request_fp,
                metrics=self.metrics,
            )
            if loaded is not None and (
                resume is None
                or ckpt.snapshot_rank(loaded) > ckpt.snapshot_rank(resume)
            ):
                resume = loaded
        resume_base = ckpt.cursor_iterations(resume) if resume else 0
        if resume is not None:
            self.metrics.counter("resume.attempts").inc()
        # ---- checkpoint policy ----------------------------------------
        budget = self._budget_for(request)
        policy = None
        if self.config.checkpoint_every is not None or self.kill_at_iteration:
            kill_at = self.kill_at_iteration

            def checkpoint_sink(snap: dict) -> None:
                # Overwrite the durable snapshot only when the new one
                # ranks at least as high — a thawed verification-phase
                # snapshot must not clobber the frozen frontier an
                # earlier stabilization-boundary snapshot banked.
                held = self.store.get_checkpoint(checkpoint_key)
                if held is None or (
                    ckpt.snapshot_rank(snap) >= ckpt.snapshot_rank(held)
                ):
                    self.store.put_checkpoint(checkpoint_key, snap)
                if self.checkpoint_wire_sink is not None:
                    self.checkpoint_wire_sink(snap)

            def on_pass(pass_number: int) -> None:
                if kill_at is not None and pass_number >= kill_at:
                    import os
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)

            policy = ckpt.CheckpointPolicy(
                checkpoint_sink,
                every=self.config.checkpoint_every,
                budget=budget,
                config=config_fp,
                key=request_fp,
                entries=specs,
                base_iterations=resume_base,
                attempts=(
                    resume["cursor"].get("attempts", 0) + 1 if resume else 1
                ),
                metrics=self.metrics,
                on_pass=on_pass if kill_at is not None else None,
            )
        # ---- run the SCC-scheduled fixpoint ---------------------------
        scheduler = SCCScheduler(analyzer, graph)
        result, stats = scheduler.analyze(
            specs,
            seeds=seeds,
            budget=budget,
            on_budget=request.get("on_budget", "degrade"),
            checkpoint=policy,
            resume=resume,
        )
        if result.status == "exact":
            # Forward progress complete: the checkpoint is garbage now.
            self.store.drop_checkpoint(checkpoint_key)
        stable = result.stable_dict()
        full_hit = need_live and f"result:{request_fp}" in self.store
        outcome = HIT if full_hit else (INCREMENTAL if seeds else MISS)
        self.metrics.counter("serve.cache", outcome=outcome).inc()
        # ---- store (exact results only) -------------------------------
        if result.status == "exact":
            self.store.put(f"result:{request_fp}", stable)
            dirty_sccs = {
                owner
                for indicator, _ in result.table.all_entries()
                if (owner := graph.scc_of.get(indicator)) is not None
            }
            for scc_index in dirty_sccs:
                self.store.put(
                    f"scc:{merkle[scc_index]}:{config_fp}",
                    {"entries": table_to_json(
                        result.table, graph.members(scc_index)
                    )},
                )
        response = {
            "ok": True,
            "status": result.status,
            "result": stable,
            "timing": {
                "seconds": result.seconds,
                "iterations": result.iterations,
                "instructions": result.instructions_executed,
            },
            "cache": {
                "outcome": outcome,
                "sccs_total": len(reachable),
                "sccs_seeded": seeded_sccs,
                "schedule": stats.to_dict(),
            },
        }
        return response, result

    # ------------------------------------------------------------------

    def _lint(self, request: dict) -> dict:
        """Lint = the (cached) analysis plus the bytecode verifier and
        the source rules, which are cheap and run fresh every time.

        The rule engine needs a live :class:`AnalysisResult`, so a
        full-result cache hit still runs one fully-seeded pass — no
        clean component is re-iterated."""
        from ..lint import lint_source, verify_compiled
        from ..lint.diagnostics import LintReport

        analysis, result = self._analyze_core(request, need_live=True)
        if not analysis.get("ok") or result is None:
            return analysis
        text = self._load_text(request)
        program, analyzer, graph, merkle = self._prepare(text)
        report = LintReport()
        file_name = request.get("file", "?")
        report.extend(verify_compiled(analyzer.compiled, file=file_name))
        report.extend(lint_source(program, result, file=file_name))
        report.sort()
        return {
            "ok": True,
            "status": result.status,
            "cache": analysis["cache"],
            "lint": report.to_dict(),
        }

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "store": self.store.stats(),
            "programs_prepared": len(self._compiled),
            "metrics": self.metrics.snapshot(),
        }


# ----------------------------------------------------------------------
# The request loop and batch mode (used by the repro-serve CLI).


#: Longest request line serve_loop accepts; beyond it the line is
#: drained and answered with an error instead of being buffered whole.
MAX_REQUEST_LINE = 10 * 1024 * 1024


def serve_loop(
    service, stdin, stdout, max_line_bytes: int = MAX_REQUEST_LINE
) -> int:
    """JSON-lines request/response loop; returns the exit status.

    Hardened against hostile or broken clients: malformed JSON, a
    non-object request, or a line longer than ``max_line_bytes``
    (drained without ever holding it in memory) each produce a
    structured ``{"ok": false, ...}`` response and the loop keeps
    serving; a ``shutdown`` request, EOF, or EOF mid-line ends the loop
    cleanly with status 0.  ``service`` is anything with
    ``handle(request) -> response`` — the in-process
    :class:`AnalysisService` or a :class:`~repro.serve.supervisor.Supervisor`.

    Shed input — oversized and malformed lines — is counted in the
    service's metrics registry (``serve.input.oversized`` /
    ``serve.input.malformed``), not only answered with a structured
    error, so operators can see protocol abuse in the ``metrics`` op.
    """
    metrics = getattr(service, "metrics", None)
    while True:
        line = stdin.readline(max_line_bytes + 1)
        if not line:
            break  # EOF
        if len(line) > max_line_bytes and not line.endswith("\n"):
            # Oversized: throw away the rest of the line in bounded
            # chunks, answer with an error, keep serving.
            while True:
                chunk = stdin.readline(max_line_bytes)
                if not chunk or chunk.endswith("\n"):
                    break
            if metrics is not None:
                metrics.counter("serve.input.oversized").inc()
            response = {
                "ok": False,
                "error": (
                    f"request line exceeds {max_line_bytes} bytes"
                ),
            }
        else:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as error:
                if metrics is not None:
                    metrics.counter("serve.input.malformed").inc()
                response = {"ok": False, "error": f"bad JSON: {error}"}
            else:
                if not isinstance(request, dict):
                    if metrics is not None:
                        metrics.counter("serve.input.malformed").inc()
                    response = {
                        "ok": False, "error": "request must be an object"
                    }
                else:
                    response = service.handle(request)
        stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        if response.get("shutdown"):
            break
    return 0


def run_batch(
    service,
    files: Sequence[str],
    entries: Sequence[str],
    passes: int = 2,
    stdout=None,
) -> dict:
    """Analyze every file ``passes`` times through the service.

    The per-file responses of each pass are written as JSON lines; the
    returned summary counts cache outcomes per pass — the second pass
    over unchanged files should be all hits."""
    summary: dict = {"passes": [], "files": list(files)}
    for pass_index in range(passes):
        counts = {HIT: 0, INCREMENTAL: 0, MISS: 0, "error": 0, "degraded": 0}
        for path in files:
            response = service.handle(
                {"op": "analyze", "file": path, "entries": list(entries)}
            )
            if stdout is not None:
                stdout.write(json.dumps(response, sort_keys=True) + "\n")
            if not response.get("ok"):
                counts["error"] += 1
                continue
            counts[response["cache"]["outcome"]] += 1
            if response["status"] != "exact":
                counts["degraded"] += 1
        summary["passes"].append(counts)
    # A Supervisor fronts workers and has no store of its own; its
    # stats() block stands in.
    summary["store"] = (
        service.store.stats()
        if hasattr(service, "store")
        else service.stats()
    )
    return summary


__all__ = [
    "HIT",
    "INCREMENTAL",
    "MAX_REQUEST_LINE",
    "MISS",
    "AnalysisService",
    "ServiceConfig",
    "run_batch",
    "serve_loop",
]
