"""One gateway shard: a bounded queue in front of an owned backend.

A :class:`Shard` is the unit of horizontal partitioning behind
:class:`~repro.serve.gateway.Gateway`.  It owns exactly one *backend* —
a :class:`~repro.serve.supervisor.Supervisor` with its own worker pool
and journaled store, or an in-process
:class:`~repro.serve.service.AnalysisService` — and a single dispatch
thread that feeds the backend from a **bounded** queue.  The asyncio
event loop never talks to the backend directly: it enqueues
``(request, future)`` pairs and the dispatch thread resolves each
future via ``loop.call_soon_threadsafe``, so a slow or wedged backend
can never stall the gateway's event loop.

Robustness contract:

* **Bounded admission.**  :meth:`Shard.submit` refuses work beyond
  ``queue_depth`` with :class:`ShardSaturated` — the gateway turns that
  into a structured shed response instead of queueing unboundedly.
* **Deadline shedding at dequeue.**  A request whose deadline lapsed
  while it sat in the queue is answered with a shed response without
  ever running — late work is refused, not amplified.
* **Self-healing backend.**  A backend that *raises* out of ``handle``
  (a closed pool, an interpreter-level fault — request-level failures
  come back as ``{"ok": false}`` and don't count) marks the shard
  unhealthy; the dispatch thread rebuilds the backend before the next
  request with per-shard exponential backoff (the same
  ``base * 2^(strikes-1)`` discipline as
  :class:`~repro.serve.pool.WorkerPool`), replays the gateway's hot
  requests through the fresh backend so hot fingerprints are served
  warm again, and keeps going.  Strikes reset on the next healthy
  response.
* **Graceful drain.**  :meth:`Shard.close` with ``drain=True`` lets
  every already-admitted request finish before the backend is closed;
  ``drain=False`` sheds the queue instead.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ReproError


class ShardSaturated(ReproError):
    """The shard's bounded queue is full (admission refused)."""


#: Sentinel that tells the dispatch thread to exit once reached.
_CLOSE = object()


def shed_response(
    request: dict,
    reason: str,
    shard: Optional[int] = None,
    retry_after_ms: Optional[float] = None,
) -> dict:
    """The structured load-shedding refusal for one request.

    ``retriable`` is always true: shedding is a statement about the
    service's load right now, never about the request itself.
    ``retry_after_ms``, when the shedder can estimate one (queue-full
    sheds use the shard's smoothed wait estimate), tells a well-behaved
    client how long to back off before resubmitting — blind immediate
    retries against a saturated shard only deepen the overload.
    """
    response = {
        "ok": False,
        "error": f"request shed: {reason}",
        "error_kind": "shed",
        "shed": True,
        "reason": reason,
        "retriable": True,
        "op": request.get("op", "analyze"),
    }
    if retry_after_ms is not None:
        response["retry_after_ms"] = round(float(retry_after_ms), 3)
    if shard is not None:
        response["shard"] = shard
    if "id" in request:
        response["id"] = request["id"]
    return response


@dataclass
class ShardConfig:
    """Per-shard queue and respawn policy."""

    #: Hard admission cap: requests beyond this depth are shed.
    queue_depth: int = 64
    #: Exponential-backoff respawn discipline (matches WorkerPool).
    respawn_backoff_base: float = 0.05
    respawn_backoff_cap: float = 2.0
    #: Seconds to wait for the dispatch thread on close.
    close_timeout: float = 30.0
    #: EWMA smoothing for per-request latency (deadline estimation).
    latency_alpha: float = 0.2


class Shard:
    """A bounded-queue, self-healing front for one backend."""

    def __init__(
        self,
        shard_id: int,
        backend_factory: Callable[[int], object],
        config: Optional[ShardConfig] = None,
        warm_requests: Optional[Callable[[int], List[dict]]] = None,
        metrics=None,
        tracer=None,
    ):
        self.shard_id = shard_id
        self.config = config if config is not None else ShardConfig()
        self._backend_factory = backend_factory
        #: Gateway-provided provider of hot requests to replay through a
        #: freshly respawned backend (store warm-up).
        self.warm_requests = warm_requests
        #: Optional shared MetricsRegistry (owned by the gateway; the
        #: dispatch thread only increments counters, which is safe).
        self.metrics = metrics
        #: Optional process-named repro.obs.Tracer, used only on the
        #: dispatch thread (single-threaded, so its span stack stays
        #: LIFO).  A ``shard.dispatch`` span brackets each *traced*
        #: request — one that carries a ``_trace`` context from the
        #: gateway — and the context is re-pointed at that span before
        #: the backend sees it (docs/tracing.md).
        self.tracer = tracer
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=self.config.queue_depth
        )
        self._backend = None
        self._healthy = False
        self._strikes = 0
        self._draining = False
        self._shed_on_close = False
        # Counters (dispatch-thread writes, event-loop reads; plain ints
        # are fine under the GIL and they are only observability).
        self.served = 0
        self.shed_lapsed = 0
        self.shed_closing = 0
        self.failures = 0
        self.respawns = 0
        self.spawned = 0
        self.warmed = 0
        self.ewma_seconds = 0.0
        self._thread = threading.Thread(
            target=self._dispatch, daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # The event-loop side.

    def depth(self) -> int:
        """Queued (not yet started) requests."""
        return self._queue.qsize()

    @property
    def healthy(self) -> bool:
        return self._healthy or self._backend is None  # lazy first spawn

    def estimated_wait(self, depth: Optional[int] = None) -> float:
        """Pessimistic seconds until a newly admitted request starts:
        queue depth times the smoothed per-request latency."""
        if depth is None:
            depth = self.depth()
        return depth * self.ewma_seconds

    def submit(self, request: dict, future, loop, deadline_at=None) -> None:
        """Enqueue one request; the dispatch thread will resolve
        ``future`` on ``loop``.  Raises :class:`ShardSaturated` when the
        bounded queue is full and :class:`ReproError` after close."""
        if self._draining:
            raise ReproError(f"shard {self.shard_id} is draining")
        try:
            self._queue.put_nowait((request, future, loop, deadline_at))
        except queue.Full:
            raise ShardSaturated(
                f"shard {self.shard_id} queue is full "
                f"({self.config.queue_depth} deep)"
            ) from None

    def close(self, drain: bool = True) -> None:
        """Stop the dispatch thread and the backend.

        ``drain=True`` serves everything already queued first;
        ``drain=False`` answers queued requests with shed responses.
        Blocking — call it off the event loop (``run_in_executor``)."""
        if self._draining:
            return
        self._draining = True
        self._shed_on_close = not drain
        self._queue.put(_CLOSE)
        self._thread.join(timeout=self.config.close_timeout)
        self._close_backend()

    # ------------------------------------------------------------------
    # The dispatch thread.

    def _dispatch(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                break
            request, future, loop, deadline_at = item
            if self._shed_on_close:
                self.shed_closing += 1
                self._resolve(future, loop, shed_response(
                    request, "shutting-down", shard=self.shard_id
                ))
                continue
            if deadline_at is not None and time.monotonic() > deadline_at:
                # The deadline lapsed while the request sat in the
                # queue; running it now could only waste capacity.
                self.shed_lapsed += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "gateway.shard.shed_lapsed"
                    ).inc()
                self._resolve(future, loop, shed_response(
                    request, "deadline-lapsed", shard=self.shard_id
                ))
                continue
            if not self._ensure_backend():
                self._resolve(future, loop, shed_response(
                    request, "shard-respawning", shard=self.shard_id
                ))
                continue
            context = request.get("_trace")
            traced = self.tracer is not None and isinstance(context, dict)
            if traced:
                self.tracer.begin(
                    "shard.dispatch",
                    _parent_ref=context.get("parent"),
                    shard=self.shard_id,
                    op=str(request.get("op", "analyze")),
                )
                request = dict(request)
                request["_trace"] = self.tracer.current_context()
            started = time.perf_counter()
            try:
                response = self._backend.handle(request)
            except Exception as error:  # noqa: BLE001 — survival boundary
                # Request-level failures come back as {"ok": false};
                # an *exception* means the backend itself is broken.
                if traced:
                    self.tracer.end(aborted=True, error_kind="shard-failure")
                self.failures += 1
                self._strikes += 1
                self._healthy = False
                if self.metrics is not None:
                    self.metrics.counter("gateway.shard.failures").inc()
                self._resolve(future, loop, {
                    "ok": False,
                    "error": f"shard {self.shard_id} backend failed: "
                             f"{error!r}",
                    "error_kind": "shard-failure",
                    "retriable": True,
                    "shard": self.shard_id,
                    "op": request.get("op", "analyze"),
                    **({"id": request["id"]} if "id" in request else {}),
                })
                continue
            if traced:
                self.tracer.end()
                # A supervisor backend already absorbed its workers'
                # ``_spans`` blocks; pop defensively so the wire block
                # never reaches a client whatever the backend was.
                if isinstance(response, dict):
                    response.pop("_spans", None)
            elapsed = time.perf_counter() - started
            alpha = self.config.latency_alpha
            self.ewma_seconds = (
                elapsed if self.served == 0
                else (1.0 - alpha) * self.ewma_seconds + alpha * elapsed
            )
            self.served += 1
            self._strikes = 0
            if not isinstance(response, dict):
                response = {
                    "ok": False,
                    "error": "backend returned a non-object response",
                    "op": request.get("op", "analyze"),
                }
            response.setdefault("shard", self.shard_id)
            if "id" in request:
                response.setdefault("id", request["id"])
            self._resolve(future, loop, response)

    def _resolve(self, future, loop, response: dict) -> None:
        if future is None or loop is None:
            return  # internal (warm-up) submission: nobody is waiting
        def _set() -> None:
            if not future.cancelled():
                future.set_result(response)
        try:
            loop.call_soon_threadsafe(_set)
        except RuntimeError:
            pass  # the loop is gone (shutdown race); nothing to tell

    # ------------------------------------------------------------------
    # Backend lifecycle (dispatch thread only).

    def _ensure_backend(self) -> bool:
        if self._healthy and self._backend is not None:
            return True
        respawning = self._backend is not None or self.spawned > 0
        if self._strikes:
            # The pool.py backoff discipline: a shard that keeps dying
            # waits base * 2^(strikes-1) (capped) before it burns
            # another backend build.
            time.sleep(min(
                self.config.respawn_backoff_cap,
                self.config.respawn_backoff_base
                * (2 ** (self._strikes - 1)),
            ))
        self._close_backend()
        try:
            self._backend = self._backend_factory(self.shard_id)
        except Exception:  # noqa: BLE001 — keep the thread alive
            self._strikes += 1
            return False
        self._healthy = True
        self.spawned += 1
        if respawning:
            self.respawns += 1
            if self.metrics is not None:
                self.metrics.counter("gateway.shard.respawns").inc()
            self._warm_up()
        return True

    def _warm_up(self) -> None:
        """Replay the gateway's hot requests through the fresh backend
        so a respawned shard re-serves hot fingerprints without cold
        re-analysis (the journaled disk store already survives; this
        re-primes the in-memory layers and full-result keys)."""
        if self.warm_requests is None:
            return
        try:
            hot = self.warm_requests(self.shard_id)
        except Exception:  # noqa: BLE001
            return
        for payload in hot:
            try:
                self._backend.handle(dict(payload))
                self.warmed += 1
                if self.metrics is not None:
                    self.metrics.counter("gateway.shard.warmed").inc()
            except Exception:  # noqa: BLE001 — warm-up is best-effort
                return

    def _close_backend(self) -> None:
        backend, self._backend = self._backend, None
        self._healthy = False
        if backend is None:
            return
        close = getattr(backend, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # noqa: BLE001
                pass

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "shard": self.shard_id,
            "depth": self.depth(),
            "healthy": self._healthy,
            "served": self.served,
            "shed_lapsed": self.shed_lapsed,
            "shed_closing": self.shed_closing,
            "failures": self.failures,
            "spawned": self.spawned,
            "respawns": self.respawns,
            "warmed": self.warmed,
            "strikes": self._strikes,
            "ewma_ms": round(self.ewma_seconds * 1000.0, 3),
        }


__all__ = ["Shard", "ShardConfig", "ShardSaturated", "shed_response"]
