"""The analysis result store: content-addressed, capped, optionally on disk.

Two granularities are stored, both keyed by fingerprints from
:mod:`repro.serve.fingerprint`:

* **SCC summaries** — key ``scc:<merkle>:<config>``, value: every
  extension-table entry (calling pattern → success pattern, may-share,
  status) of the component's predicates from a previous *exact* run.
  Because the Merkle fingerprint covers the component and everything it
  calls, a clean key proves the cached summaries are still the exact
  fixpoint values; editing one clause changes the fingerprints of its
  SCC and its transitive callers, and only those keys go dark.

* **Full results** — key ``result:<request>``, value: the serialized
  response of a whole analyze request.  A hit answers without running
  any fixpoint at all.

Only ``exact`` results are ever stored: degraded (budget-tripped)
entries are sound but not final, so serving them from cache could leak
imprecision into runs that had budget to spare.  The service enforces
this; :meth:`ResultStore.put` double-checks it.

The in-memory layer is an LRU with entry- and byte-caps; the optional
disk layer is one JSON file per key (human-inspectable, safe to delete
at any time).  Serialization of patterns round-trips through plain JSON
— no pickling, nothing process-specific.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..analysis.patterns import Pattern, canonicalize
from ..analysis.table import ExtensionTable, TableEntry
from ..domain.sorts import AbsSort
from ..errors import AnalysisError
from ..prolog.terms import Indicator, format_indicator

# ----------------------------------------------------------------------
# JSON round-trip of trees, nodes and patterns.


def tree_to_json(tree) -> list:
    kind = tree[0]
    if kind == "s":
        return ["s", AbsSort(tree[1]).name]
    if kind == "l":
        return ["l", tree_to_json(tree[1])]
    assert kind == "f"
    return ["f", tree[1], tree[2], [tree_to_json(arg) for arg in tree[3]]]


def tree_from_json(data) -> tuple:
    kind = data[0]
    if kind == "s":
        return ("s", AbsSort[data[1]])
    if kind == "l":
        return ("l", tree_from_json(data[1]))
    if kind != "f":
        raise AnalysisError(f"corrupt stored tree node kind {kind!r}")
    return ("f", data[1], data[2], tuple(tree_from_json(arg) for arg in data[3]))


def node_to_json(node) -> list:
    kind = node[0]
    if kind == "i":
        return ["i", AbsSort(node[1]).name, node[2]]
    if kind == "li":
        return ["li", tree_to_json(node[1]), node[2]]
    assert kind == "f"
    return ["f", node[1], node[2], [node_to_json(child) for child in node[3]]]


def node_from_json(data) -> tuple:
    kind = data[0]
    if kind == "i":
        return ("i", AbsSort[data[1]], data[2])
    if kind == "li":
        return ("li", tree_from_json(data[1]), data[2])
    if kind != "f":
        raise AnalysisError(f"corrupt stored pattern node kind {kind!r}")
    return ("f", data[1], data[2], tuple(node_from_json(child) for child in data[3]))


def pattern_to_json(pattern: Pattern) -> list:
    return [node_to_json(node) for node in pattern.args]


def pattern_from_json(data) -> Pattern:
    return canonicalize(Pattern(tuple(node_from_json(node) for node in data)))


def entry_to_json(indicator: Indicator, entry: TableEntry) -> dict:
    return {
        "predicate": format_indicator(indicator),
        "calling": pattern_to_json(entry.calling),
        "success": (
            pattern_to_json(entry.success)
            if entry.success is not None
            else None
        ),
        "may_share": sorted(list(pair) for pair in entry.may_share),
        "status": entry.status,
    }


def entry_from_json(data) -> Tuple[Indicator, Pattern, Optional[Pattern], FrozenSet]:
    name, _, arity = data["predicate"].rpartition("/")
    indicator = (name, int(arity))
    calling = pattern_from_json(data["calling"])
    success = (
        pattern_from_json(data["success"])
        if data["success"] is not None
        else None
    )
    may_share = frozenset(tuple(pair) for pair in data["may_share"])
    return indicator, calling, success, may_share


def table_to_json(table: ExtensionTable, indicators=None) -> List[dict]:
    """Serialize a table (or the entries of ``indicators`` only), sorted
    for deterministic output."""
    wanted = set(indicators) if indicators is not None else None
    entries = [
        entry_to_json(indicator, entry)
        for indicator, entry in table.all_entries()
        if wanted is None or indicator in wanted
    ]
    entries.sort(key=lambda item: (item["predicate"], json.dumps(item["calling"])))
    return entries


# ----------------------------------------------------------------------
# The capped in-memory store.


class ResultStore:
    """A byte- and entry-capped LRU over JSON-serializable values.

    Values are stored as their compact-JSON text (the serialization *is*
    the size accounting), so whatever comes back out is guaranteed to be
    process-independent.  An optional :class:`DiskStore` acts as a
    second level: misses fall through to it, hits are promoted.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 1024,
        max_bytes: Optional[int] = 64 * 1024 * 1024,
        disk: Optional["DiskStore"] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.disk = disk
        self._data: "OrderedDict[str, str]" = OrderedDict()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected_degraded = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data or (
            self.disk is not None and self.disk.contains(key)
        )

    # ------------------------------------------------------------------

    def get(self, key: str):
        text = self._data.get(key)
        if text is not None:
            self._data.move_to_end(key)
            self.hits += 1
            return json.loads(text)
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not None:
                self.hits += 1
                self._install(key, json.dumps(value, sort_keys=True))
                return value
        self.misses += 1
        return None

    def put(self, key: str, value, status: str = "exact") -> bool:
        """Store ``value`` under ``key``; refused for non-exact results.

        Returns True when stored.  A value bigger than the whole byte
        cap is refused too (it would evict everything for nothing).
        """
        if status != "exact":
            self.rejected_degraded += 1
            return False
        text = json.dumps(value, sort_keys=True)
        if self.max_bytes is not None and len(text) > self.max_bytes:
            return False
        self._install(key, text)
        if self.disk is not None:
            self.disk.put(key, text)
        return True

    def _install(self, key: str, text: str) -> None:
        old = self._data.pop(key, None)
        if old is not None:
            self.bytes_used -= len(old)
        self._data[key] = text
        self.bytes_used += len(text)
        while self._over_cap():
            evicted_key, evicted = self._data.popitem(last=False)
            self.bytes_used -= len(evicted)
            self.evictions += 1

    def _over_cap(self) -> bool:
        if self.max_entries is not None and len(self._data) > self.max_entries:
            return True
        if self.max_bytes is not None and self.bytes_used > self.max_bytes:
            return True
        return False

    # ------------------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop one key (memory and disk); True if anything was dropped."""
        dropped = False
        text = self._data.pop(key, None)
        if text is not None:
            self.bytes_used -= len(text)
            dropped = True
        if self.disk is not None and self.disk.invalidate(key):
            dropped = True
        return dropped

    def clear(self) -> None:
        self._data.clear()
        self.bytes_used = 0
        if self.disk is not None:
            self.disk.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._data),
            "bytes": self.bytes_used,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected_degraded": self.rejected_degraded,
        }


class DiskStore:
    """One JSON file per key under a directory (a level-2 store).

    Keys are fingerprint-built (hex digests and fixed prefixes), but they
    are sanitized anyway so a corrupt key cannot escape the directory.
    Corrupt or unreadable files behave as misses.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in key
        )
        return os.path.join(self.directory, safe + ".json")

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str):
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key: str, text: str) -> None:
        path = self._path(key)
        temporary = path + ".tmp"
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temporary, path)
        except OSError:
            # A read-only or full disk must never take the service down;
            # the in-memory layer still has the value.
            try:
                os.unlink(temporary)
            except OSError:
                pass

    def invalidate(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
            return True
        except OSError:
            return False

    def clear(self) -> None:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass


__all__ = [
    "DiskStore",
    "ResultStore",
    "entry_from_json",
    "entry_to_json",
    "node_from_json",
    "node_to_json",
    "pattern_from_json",
    "pattern_to_json",
    "table_to_json",
    "tree_from_json",
    "tree_to_json",
]
