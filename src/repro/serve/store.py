"""The analysis result store: content-addressed, capped, optionally on disk.

Two granularities are stored, both keyed by fingerprints from
:mod:`repro.serve.fingerprint`:

* **SCC summaries** — key ``scc:<merkle>:<config>``, value: every
  extension-table entry (calling pattern → success pattern, may-share,
  status) of the component's predicates from a previous *exact* run.
  Because the Merkle fingerprint covers the component and everything it
  calls, a clean key proves the cached summaries are still the exact
  fixpoint values; editing one clause changes the fingerprints of its
  SCC and its transitive callers, and only those keys go dark.

* **Full results** — key ``result:<request>``, value: the serialized
  response of a whole analyze request.  A hit answers without running
  any fixpoint at all.

Only ``exact`` results are ever stored: degraded (budget-tripped)
entries are sound but not final, so serving them from cache could leak
imprecision into runs that had budget to spare.  The service enforces
this; :meth:`ResultStore.put` double-checks it.

The in-memory layer is an LRU with entry- and byte-caps; the optional
disk layer is one JSON file per key (human-inspectable, safe to delete
at any time).  Serialization of patterns round-trips through plain JSON
— no pickling, nothing process-specific.

The disk layer is **self-healing**: every entry file carries a SHA-256
checksum of its canonical value text, verified on load; corrupt, torn
or unreadable files are moved to a ``quarantine/`` subdirectory (never
propagated to the caller — a quarantined entry is a cache miss, and
soundness rests on the scheduler's verification sweep anyway, so the
cost is only performance).  With ``journal=True`` a write-ahead journal
(``journal.jsonl``) records each put before the entry file is written;
on startup the journal is replayed — entries whose files are missing or
fail their checksum are rewritten from the journal — then truncated.  A
torn journal tail (crash mid-append) is detected and discarded, so a
recovered store is always either valid or absent.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Optional

# The JSON codecs moved to repro.analysis.codec (the checkpoint layer
# needs them without importing the serve package); re-exported here so
# existing importers keep working.
from ..analysis.codec import (  # noqa: F401  (re-exports)
    entry_from_json,
    entry_to_json,
    node_from_json,
    node_to_json,
    pattern_from_json,
    pattern_to_json,
    table_to_json,
    tree_from_json,
    tree_to_json,
)


# ----------------------------------------------------------------------
# The capped in-memory store.


class ResultStore:
    """A byte- and entry-capped LRU over JSON-serializable values.

    Values are stored as their compact-JSON text (the serialization *is*
    the size accounting), so whatever comes back out is guaranteed to be
    process-independent.  An optional :class:`DiskStore` acts as a
    second level: misses fall through to it, hits are promoted.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 1024,
        max_bytes: Optional[int] = 64 * 1024 * 1024,
        disk: Optional["DiskStore"] = None,
        metrics=None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.disk = disk
        self._data: "OrderedDict[str, str]" = OrderedDict()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected_degraded = 0
        #: repro.obs: optional MetricsRegistry mirroring the counters
        #: above under serve.store.* (see docs/observability.md).
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data or (
            self.disk is not None and self.disk.contains(key)
        )

    # ------------------------------------------------------------------

    def get(self, key: str):
        text = self._data.get(key)
        if text is not None:
            self._data.move_to_end(key)
            self.hits += 1
            if self.metrics is not None:
                self.metrics.counter("serve.store.hits").inc()
            return json.loads(text)
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not None:
                self.hits += 1
                if self.metrics is not None:
                    self.metrics.counter("serve.store.hits").inc()
                self._install(key, json.dumps(value, sort_keys=True))
                return value
        self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("serve.store.misses").inc()
        return None

    def put(self, key: str, value, status: str = "exact") -> bool:
        """Store ``value`` under ``key``; refused for non-exact results.

        Returns True when stored.  A value bigger than the whole byte
        cap is refused too (it would evict everything for nothing).
        """
        if status != "exact":
            self.rejected_degraded += 1
            if self.metrics is not None:
                self.metrics.counter("serve.store.rejected_degraded").inc()
            return False
        text = json.dumps(value, sort_keys=True)
        if self.max_bytes is not None and len(text) > self.max_bytes:
            return False
        self._install(key, text)
        if self.disk is not None:
            self.disk.put(key, text)
        return True

    # ------------------------------------------------------------------
    # The checkpoint namespace (see repro.robust.checkpoint).
    #
    # Checkpoints are *partial* fixpoint state by definition, so they
    # bypass the exact-only gate of :meth:`put` — but only under the
    # reserved ``checkpoint:`` prefix, so an ordinary result key can
    # never smuggle a non-exact value past the gate.  Durability,
    # checksums, quarantine and journal replay are all inherited from
    # the disk layer unchanged: a torn checkpoint is quarantined and
    # reads as a miss, which merely costs re-derivation.

    CHECKPOINT_PREFIX = "checkpoint:"

    def put_checkpoint(self, key: str, value) -> bool:
        """Store an intermediate fixpoint snapshot; returns True when
        stored (an oversized snapshot is refused like any value)."""
        if not key.startswith(self.CHECKPOINT_PREFIX):
            raise ValueError(
                f"checkpoint keys must start with {self.CHECKPOINT_PREFIX!r}"
            )
        text = json.dumps(value, sort_keys=True)
        if self.max_bytes is not None and len(text) > self.max_bytes:
            return False
        self._install(key, text)
        if self.disk is not None:
            self.disk.put(key, text)
        if self.metrics is not None:
            self.metrics.counter("checkpoint.stored").inc()
        return True

    def get_checkpoint(self, key: str):
        """The stored snapshot under ``key`` or None (same read path as
        :meth:`get`; the caller verifies the embedded checksum)."""
        if not key.startswith(self.CHECKPOINT_PREFIX):
            raise ValueError(
                f"checkpoint keys must start with {self.CHECKPOINT_PREFIX!r}"
            )
        return self.get(key)

    def drop_checkpoint(self, key: str) -> bool:
        """GC one checkpoint (memory and disk) after its request
        completed exactly; True when anything was dropped."""
        dropped = self.invalidate(key)
        if dropped and self.metrics is not None:
            self.metrics.counter("checkpoint.gc").inc()
        return dropped

    def _install(self, key: str, text: str) -> None:
        old = self._data.pop(key, None)
        if old is not None:
            self.bytes_used -= len(old)
        self._data[key] = text
        self.bytes_used += len(text)
        while self._over_cap():
            evicted_key, evicted = self._data.popitem(last=False)
            self.bytes_used -= len(evicted)
            self.evictions += 1
            if self.metrics is not None:
                self.metrics.counter("serve.store.evictions").inc()

    def _over_cap(self) -> bool:
        if self.max_entries is not None and len(self._data) > self.max_entries:
            return True
        if self.max_bytes is not None and self.bytes_used > self.max_bytes:
            return True
        return False

    # ------------------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop one key (memory and disk); True if anything was dropped."""
        dropped = False
        text = self._data.pop(key, None)
        if text is not None:
            self.bytes_used -= len(text)
            dropped = True
        if self.disk is not None and self.disk.invalidate(key):
            dropped = True
        return dropped

    def clear(self) -> None:
        self._data.clear()
        self.bytes_used = 0
        if self.disk is not None:
            self.disk.clear()

    def stats(self) -> dict:
        counts = {
            "entries": len(self._data),
            "bytes": self.bytes_used,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected_degraded": self.rejected_degraded,
        }
        if self.disk is not None:
            counts["disk"] = self.disk.stats()
        return counts


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DiskStore:
    """One checksummed JSON file per key under a directory (a level-2
    store), with an optional write-ahead journal.

    Keys are fingerprint-built (hex digests and fixed prefixes), but they
    are sanitized anyway so a corrupt key cannot escape the directory.
    Every entry file is a record ``{"key", "sha256", "value"}`` where the
    digest covers the canonical (sorted-keys) serialization of the value;
    a file that is unreadable, torn, or fails its checksum is moved to
    ``quarantine/`` and behaves as a miss.  Pre-checksum (unwrapped)
    payload files from older stores are still readable.

    With ``journal=True``, each put appends the full record to
    ``journal.jsonl`` (flushed) *before* the entry file is written, so a
    write torn by a crash or power loss is repaired by :meth:`replay` on
    the next startup.  The journal is truncated after a successful
    replay and rotated when it outgrows ``JOURNAL_CAP`` — safe, because
    every journaled record was also written to its entry file.

    ``fault_plan`` arms the ``"store"`` chaos site (see
    :class:`repro.robust.FaultPlan`): at the configured put ordinals the
    entry file is deliberately written torn while the journal keeps the
    good record, exercising both the quarantine and the replay paths.
    """

    JOURNAL_NAME = "journal.jsonl"
    QUARANTINE_NAME = "quarantine"
    JOURNAL_CAP = 8 * 1024 * 1024

    def __init__(
        self,
        directory: str,
        journal: bool = False,
        fault_plan=None,
        metrics=None,
    ):
        self.directory = directory
        self.journal_enabled = journal
        self.fault_plan = fault_plan
        self.quarantined = 0
        self.checksum_failures = 0
        self.journal_replayed = 0
        self.journal_rotations = 0
        #: repro.obs: optional MetricsRegistry mirroring the self-healing
        #: counters under serve.store.* (quarantines, checksum failures,
        #: journal replays).
        self.metrics = metrics
        self._journal_handle = None
        os.makedirs(directory, exist_ok=True)
        if journal:
            self.replay()
            try:
                self._journal_handle = open(
                    self._journal_path(), "a", encoding="utf-8"
                )
            except OSError:
                self._journal_handle = None  # read-only dir: degrade

    # ------------------------------------------------------------------
    # Paths.

    def _path(self, key: str) -> str:
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in key
        )
        return os.path.join(self.directory, safe + ".json")

    def _journal_path(self) -> str:
        return os.path.join(self.directory, self.JOURNAL_NAME)

    def _quarantine_dir(self) -> str:
        return os.path.join(self.directory, self.QUARANTINE_NAME)

    # ------------------------------------------------------------------
    # Records.

    @staticmethod
    def _record_text(key: str, text: str) -> str:
        # The value text is already canonical (compact sorted-keys JSON
        # from ResultStore), so splice it in verbatim: re-serializing
        # record["value"] with sort_keys reproduces it for verification.
        return (
            '{"key": ' + json.dumps(key)
            + ', "sha256": "' + _checksum(text)
            + '", "value": ' + text + "}"
        )

    def _verify(self, data):
        """The value inside a parsed record, or None when the checksum
        fails; unwrapped legacy payloads pass through unchecked."""
        if (
            isinstance(data, dict)
            and "sha256" in data
            and "value" in data
            and "key" in data
        ):
            text = json.dumps(data["value"], sort_keys=True)
            if _checksum(text) != data["sha256"]:
                self.checksum_failures += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "serve.store.checksum_failures"
                    ).inc()
                return None
            return data["value"]
        return data  # pre-checksum store format

    def _quarantine(self, path: str) -> None:
        """Move a damaged file out of the way instead of crashing or
        re-reading it forever; quarantined files are kept for forensics
        and are invisible to the store."""
        destination_dir = self._quarantine_dir()
        base = os.path.basename(path)
        try:
            os.makedirs(destination_dir, exist_ok=True)
            destination = os.path.join(destination_dir, base)
            suffix = 0
            while os.path.exists(destination):
                suffix += 1
                destination = os.path.join(
                    destination_dir, f"{base}.{suffix}"
                )
            os.replace(path, destination)
            self.quarantined += 1
            if self.metrics is not None:
                self.metrics.counter("serve.store.quarantined").inc()
        except OSError:
            try:
                os.unlink(path)
                self.quarantined += 1
                if self.metrics is not None:
                    self.metrics.counter("serve.store.quarantined").inc()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # The journal.

    def replay(self) -> int:
        """Replay the write-ahead journal: rewrite any entry whose file
        is missing, torn, or checksum-broken from its journaled record;
        a torn journal tail is discarded.  Returns the repair count and
        truncates the journal (every surviving record is now safely in
        its entry file)."""
        journal_path = self._journal_path()
        repaired = 0
        try:
            with open(journal_path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return 0
        # Newest-valid-record-per-key wins: a key written several times
        # (checkpoints overwrite in place as the fixpoint advances) must
        # be repaired from its *latest* journaled state, not its first.
        latest: "OrderedDict[str, str]" = OrderedDict()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail: a crash mid-append; nothing after it
            if not (
                isinstance(record, dict)
                and isinstance(record.get("key"), str)
                and "sha256" in record
                and "value" in record
            ):
                break
            value_text = json.dumps(record["value"], sort_keys=True)
            if _checksum(value_text) != record["sha256"]:
                continue  # a corrupted journal record repairs nothing
            latest[record["key"]] = value_text
        for key, value_text in latest.items():
            path = self._path(key)
            current = None
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    current = self._verify(json.load(handle))
            except (OSError, ValueError):
                current = None
            # Repair when the file is damaged OR holds an older state
            # than the journal: each put journals *before* writing the
            # entry file, so a verified file that still differs from the
            # newest journaled record means the crash landed between the
            # append and the overwrite.
            if current is None or (
                json.dumps(current, sort_keys=True) != value_text
            ):
                self._write_file(path, self._record_text(key, value_text))
                repaired += 1
        self.journal_replayed += repaired
        if repaired and self.metrics is not None:
            self.metrics.counter("serve.store.journal.replayed").inc(repaired)
        try:
            with open(journal_path, "w", encoding="utf-8"):
                pass  # truncate: all records are applied and verified
        except OSError:
            pass
        return repaired

    def _journal_append(self, record_text: str) -> None:
        handle = self._journal_handle
        if handle is None:
            return
        try:
            if handle.tell() > self.JOURNAL_CAP:
                # Rotate by truncation: every earlier record's entry
                # file was already written atomically, so only the
                # record *about to be appended* needs journal cover.
                handle.seek(0)
                handle.truncate()
                # Rotation used to heal silently; operators watching
                # journal growth need to see the resets (stats op +
                # serve.store.* metrics).
                self.journal_rotations += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "serve.store.journal.rotated"
                    ).inc()
            handle.write(record_text + "\n")
            handle.flush()
        except (OSError, ValueError):
            pass  # full or closed: journaling degrades, puts continue

    # ------------------------------------------------------------------
    # The store protocol used by ResultStore.

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str):
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path)  # torn write or bit rot: not JSON
            return None
        value = self._verify(data)
        if value is None:
            self._quarantine(path)
        return value

    def put(self, key: str, text: str) -> None:
        record_text = self._record_text(key, text)
        self._journal_append(record_text)
        if self.fault_plan is not None and self.fault_plan.probe("store"):
            # Injected torn write: the entry file gets half a record,
            # the journal (above) kept the good one.
            record_text = record_text[: max(1, len(record_text) // 2)]
        self._write_file(self._path(key), record_text)

    def _write_file(self, path: str, text: str) -> None:
        temporary = path + ".tmp"
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temporary, path)
        except OSError:
            # A read-only or full disk must never take the service down;
            # the in-memory layer still has the value.
            try:
                os.unlink(temporary)
            except OSError:
                pass

    def invalidate(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
            return True
        except OSError:
            return False

    def clear(self) -> None:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
        if self._journal_handle is not None:
            try:
                self._journal_handle.seek(0)
                self._journal_handle.truncate()
            except (OSError, ValueError):
                pass

    def close(self) -> None:
        if self._journal_handle is not None:
            try:
                self._journal_handle.close()
            except OSError:
                pass
            self._journal_handle = None

    def stats(self) -> dict:
        return {
            "journal": self.journal_enabled,
            "quarantined": self.quarantined,
            "checksum_failures": self.checksum_failures,
            "journal_replayed": self.journal_replayed,
            "journal_rotations": self.journal_rotations,
        }


__all__ = [
    "DiskStore",
    "ResultStore",
    "entry_from_json",
    "entry_to_json",
    "node_from_json",
    "node_to_json",
    "pattern_from_json",
    "pattern_to_json",
    "table_to_json",
    "tree_from_json",
    "tree_to_json",
]
